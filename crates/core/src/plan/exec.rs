//! The one executor every front-end shares.
//!
//! A [`PlannedQuery`] names, per grouping set, a *target* cuboid and an
//! ordered candidate list of materialized sources. The executor walks that
//! list (later candidates are the degraded-fallback chain), derives the
//! target by merging source cells upward, optionally probes/feeds a cache
//! through the [`PlanSource`] hooks, and finally runs the mandatory
//! privacy pass over the whole answer. Per-set work is traced as the
//! `cube.answer` span (and `cube.cache` around a live probe), so profiles
//! look the same no matter which front-end built the plan.

use std::collections::HashMap;

use crate::error::{Error, Result};
use crate::measure::AggState;
use crate::object::StatisticalObject;
use crate::plan::enforce::{self, EnforcementStats};
use crate::plan::planner::PlannedQuery;
use crate::schema::Schema;
use crate::trace;

/// One derived cell: per-measure aggregation states plus the privacy
/// verdict. A suppressed cell stays in the map (complementary suppression
/// and row rendering need to see it) but publishes no values.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanCell {
    /// Aggregation state per measure slot.
    pub states: Vec<AggState>,
    /// Withheld by the privacy pass.
    pub suppressed: bool,
}

/// Cells of one cuboid, keyed by kept coordinates (schema-dimension
/// order).
pub type PlanCells = HashMap<Box<[u32]>, PlanCell>;

/// A loaded source cuboid and what reading it cost.
#[derive(Debug, Clone)]
pub struct SourceCells {
    /// The source's cells at its own granularity.
    pub cells: PlanCells,
    /// Cells scanned to produce them (the degradation cost basis).
    pub scanned: u64,
}

/// What the executor needs from a physical backend: load source cuboids,
/// and optionally front a cache.
pub trait PlanSource {
    /// Loads the materialized cuboid `source` (verified I/O; an `Err` here
    /// sends the executor down the fallback chain).
    fn load(&self, source: u32) -> Result<SourceCells>;

    /// Whether [`probe`](PlanSource::probe)/[`admit`](PlanSource::admit)
    /// are live. Probing is skipped for plans with pushed-down scan
    /// filters — filtered derivations must never be admitted under (or
    /// served from) an unfiltered cuboid's key.
    fn probes(&self) -> bool {
        false
    }

    /// Cache lookup: a fully derived target and its original source mask.
    fn probe(&self, _target: u32) -> Option<(PlanCells, u32)> {
        None
    }

    /// Offers a freshly derived, *pre-enforcement* result for admission.
    fn admit(
        &self,
        _target: u32,
        _source: u32,
        _cells_scanned: u64,
        _cells: &PlanCells,
        _degraded: bool,
    ) {
    }
}

/// Why an answer is degraded: the preferred source(s) failed and a larger
/// ancestor served the set.
#[derive(Debug, Clone)]
pub struct PlanDegradation {
    /// The requested target mask.
    pub requested: u32,
    /// The source that finally served it.
    pub served_from: u32,
    /// The failed candidates, in attempt order.
    pub failed: Vec<(u32, Error)>,
    /// Extra cells scanned versus the first-choice source.
    pub extra_cells: u64,
}

/// One answered grouping set.
#[derive(Debug, Clone)]
pub struct SetAnswer {
    /// Keep-mask over the plan's group columns.
    pub keep: Vec<bool>,
    /// Target cuboid mask.
    pub target: u32,
    /// Source mask that served it.
    pub source: u32,
    /// The derived (and privacy-enforced) cells.
    pub cells: PlanCells,
    /// Cells scanned in the source (0 on a cache hit).
    pub cells_scanned: u64,
    /// Served straight from the cache.
    pub cache_hit: bool,
    /// Present when the preferred source(s) failed.
    pub degraded: Option<PlanDegradation>,
}

/// A fully executed plan.
#[derive(Debug, Clone)]
pub struct PlanExecution {
    /// Per-set answers, in plan order.
    pub sets: Vec<SetAnswer>,
    /// What the privacy pass did.
    pub enforcement: EnforcementStats,
}

impl PlanExecution {
    /// Total cells scanned across all sets.
    pub fn cells_scanned(&self) -> u64 {
        self.sets.iter().map(|s| s.cells_scanned).sum()
    }

    /// How many sets were served from the cache.
    pub fn cache_hits(&self) -> usize {
        self.sets.iter().filter(|s| s.cache_hit).count()
    }

    /// How many sets were served degraded.
    pub fn degraded_answers(&self) -> usize {
        self.sets.iter().filter(|s| s.degraded.is_some()).count()
    }
}

/// Executes a planned query against a physical source. This is the only
/// evaluation loop in the workspace: SQL (algebraic and physical), the
/// view store, and the navigator all end up here.
pub fn execute<S: PlanSource>(q: &PlannedQuery, src: &S) -> Result<PlanExecution> {
    let mut sets_out: Vec<SetAnswer> = Vec::with_capacity(q.sets.len());
    for set in &q.sets {
        let probing = src.probes() && q.scan_filters.is_empty();
        let mut cache_span = if probing {
            let mut sp = trace::span("cube.cache");
            sp.record("mask", u64::from(set.target));
            Some(sp)
        } else {
            None
        };
        if probing {
            if let Some((cells, source)) = src.probe(set.target) {
                if let Some(sp) = cache_span.as_mut() {
                    sp.record("hit", 1);
                }
                sets_out.push(SetAnswer {
                    keep: set.keep.clone(),
                    target: set.target,
                    source,
                    cells,
                    cells_scanned: 0,
                    cache_hit: true,
                    degraded: None,
                });
                continue;
            }
            if let Some(sp) = cache_span.as_mut() {
                sp.record("hit", 0);
            }
        }
        let mut sp = trace::span("cube.answer");
        sp.record("mask", u64::from(set.target));
        let first_choice_cost = set.candidates.first().map(|&(_, c)| c).unwrap_or(0);
        let mut failed: Vec<(u32, Error)> = Vec::new();
        let mut found: Option<SetAnswer> = None;
        for &(source, _) in &set.candidates {
            match src.load(source) {
                Ok(sc) => {
                    let cells_scanned = sc.scanned;
                    let cells = derive(sc.cells, source, set.target, &q.scan_filters);
                    let degraded = if failed.is_empty() {
                        None
                    } else {
                        Some(PlanDegradation {
                            requested: set.target,
                            served_from: source,
                            failed: std::mem::take(&mut failed),
                            extra_cells: cells_scanned.saturating_sub(first_choice_cost),
                        })
                    };
                    found = Some(SetAnswer {
                        keep: set.keep.clone(),
                        target: set.target,
                        source,
                        cells,
                        cells_scanned,
                        cache_hit: false,
                        degraded,
                    });
                    break;
                }
                Err(e) => failed.push((source, e)),
            }
        }
        trace::counter("cube.answers", 1);
        let Some(ans) = found else {
            if set.candidates.is_empty() {
                return Err(Error::InvalidSchema("no ancestor materialized".into()));
            }
            return Err(Error::NoHealthySource { requested: set.target, tried: failed.len() });
        };
        if sp.is_recording() {
            sp.record("source", u64::from(ans.source));
            sp.record("cells_scanned", ans.cells_scanned);
            sp.record("cells", ans.cells.len() as u64);
            if let Some(d) = &ans.degraded {
                if let Some(first) = d.failed.first() {
                    sp.note(format!(
                        "fallback: served from {:#b} after {} failed source(s), first {:#b}",
                        d.served_from,
                        d.failed.len(),
                        first.0
                    ));
                }
                trace::counter("cube.fallbacks", 1);
            }
        }
        drop(sp);
        // Admission mirrors probing: a filtered derivation must never be
        // cached under (or later served from) an unfiltered cuboid's key.
        if probing {
            src.admit(
                ans.target,
                ans.source,
                ans.cells_scanned,
                &ans.cells,
                ans.degraded.is_some(),
            );
        }
        drop(cache_span);
        sets_out.push(ans);
    }

    // Mandatory privacy pass: every answer — cached or derived — crosses
    // this barrier before anything renders it.
    let mut esp = trace::span("privacy.enforce");
    let enforcement = enforce::enforce(&q.policy, &mut sets_out);
    if esp.is_recording() {
        esp.record("suppressed", enforcement.suppressed);
        esp.record("complementary", enforcement.complementary);
        esp.record("perturbed", enforcement.perturbed);
        esp.note(q.policy.describe());
    }
    drop(esp);
    Ok(PlanExecution { sets: sets_out, enforcement })
}

/// Derives `target` cells from a loaded `source` cuboid, applying
/// pushed-down scan filters on the way. `target ⊆ source` by construction;
/// unknown coordinates are skipped rather than panicking (the source may
/// come from storage).
fn derive(src: PlanCells, source: u32, target: u32, filters: &[(usize, Vec<u32>)]) -> PlanCells {
    if source == target && filters.is_empty() {
        return src;
    }
    let tpos = bit_positions(source, target);
    let fpos: Vec<(usize, &[u32])> = filters
        .iter()
        .filter_map(|(d, allowed)| {
            bit_positions(source, 1u32 << d).first().map(|&p| (p, allowed.as_slice()))
        })
        .collect();
    let mut out = PlanCells::with_capacity(src.len());
    'cells: for (key, cell) in src {
        for (p, allowed) in &fpos {
            match key.get(*p) {
                Some(c) if allowed.binary_search(c).is_ok() => {}
                _ => continue 'cells,
            }
        }
        let mut tkey: Vec<u32> = Vec::with_capacity(tpos.len());
        for &p in &tpos {
            let Some(&c) = key.get(p) else { continue 'cells };
            tkey.push(c);
        }
        match out.entry(tkey.into_boxed_slice()) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                let slot = e.get_mut();
                for (dst, s) in slot.states.iter_mut().zip(&cell.states) {
                    dst.merge(s);
                }
            }
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert(cell);
            }
        }
    }
    out
}

/// Positions of `of`'s bits within the kept-coordinate order of `within`.
fn bit_positions(within: u32, of: u32) -> Vec<usize> {
    let mut out = Vec::new();
    let mut pos = 0usize;
    for b in 0..32 {
        if within >> b & 1 == 1 {
            if of >> b & 1 == 1 {
                out.push(pos);
            }
            pos += 1;
        }
    }
    out
}

/// A [`PlanSource`] over one statistical object, pre-projected to the
/// plan's base mask: the object's dimensions must be exactly the bits of
/// `mask`, in schema order. Loading clones the converted cells — the same
/// per-set cost shape the historical interpreter had.
pub struct ObjectSource {
    mask: u32,
    scanned: u64,
    cells: PlanCells,
}

impl ObjectSource {
    /// Converts `obj` (already reduced to the dimensions of `mask`) into a
    /// loadable source.
    pub fn new(obj: &StatisticalObject, mask: u32) -> Result<Self> {
        let dims = mask.count_ones() as usize;
        if obj.schema().dim_count() != dims {
            return Err(Error::InvalidSchema(format!(
                "object has {} dimensions but base mask {mask:#b} needs {dims}",
                obj.schema().dim_count()
            )));
        }
        let mut cells = PlanCells::with_capacity(obj.cell_count());
        for (coords, states) in obj.cells() {
            cells.insert(coords.into(), PlanCell { states: states.to_vec(), suppressed: false });
        }
        Ok(Self { mask, scanned: obj.cell_count() as u64, cells })
    }
}

impl PlanSource for ObjectSource {
    fn load(&self, source: u32) -> Result<SourceCells> {
        if source != self.mask {
            return Err(Error::InvalidSchema(format!(
                "object source holds mask {:#b}, not {source:#b}",
                self.mask
            )));
        }
        Ok(SourceCells { cells: self.cells.clone(), scanned: self.scanned })
    }
}

/// One output row of a plan: grouping values in GROUP BY order (`None` =
/// `ALL`), aggregate values in SELECT order (`None` = undefined or
/// suppressed), and the privacy verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanRow {
    /// Group column values (`None` = `ALL`).
    pub group: Vec<Option<String>>,
    /// Aggregate values (`None` = undefined or suppressed).
    pub values: Vec<Option<f64>>,
    /// The whole row was withheld by the privacy pass.
    pub suppressed: bool,
}

/// Renders an execution as labeled rows: per set, cells sort by
/// coordinates; group labels resolve through `schema`'s member
/// dictionaries (which must still describe the planned dimension indices —
/// pass the post-roll-up, pre-projection schema).
pub fn result_rows(
    q: &PlannedQuery,
    exec: &PlanExecution,
    schema: &Schema,
) -> Result<Vec<PlanRow>> {
    let mut rows = Vec::new();
    for sa in &exec.sets {
        let mut kept: Vec<usize> =
            q.dim_bits.iter().zip(&sa.keep).filter(|(_, k)| **k).map(|(&d, _)| d).collect();
        kept.sort_unstable();
        kept.dedup();
        let mut cells: Vec<(&Box<[u32]>, &PlanCell)> = sa.cells.iter().collect();
        cells.sort_unstable_by(|a, b| a.0.cmp(b.0));
        for (key, cell) in cells {
            let mut group = Vec::with_capacity(sa.keep.len());
            for (j, keep) in sa.keep.iter().enumerate() {
                if !keep {
                    group.push(None);
                    continue;
                }
                let d = q.dim_bits.get(j).copied().ok_or_else(|| {
                    Error::InvalidSchema("grouping position without a dimension".into())
                })?;
                let coord = kept
                    .binary_search(&d)
                    .ok()
                    .and_then(|slot| key.get(slot))
                    .copied()
                    .ok_or_else(|| {
                        Error::InvalidSchema(format!(
                            "no coordinate for dimension `{}`",
                            q.group_display.get(j).map(String::as_str).unwrap_or("?")
                        ))
                    })?;
                let member = schema
                    .dimensions()
                    .get(d)
                    .and_then(|dim| dim.members().value_of(coord))
                    .ok_or_else(|| {
                        Error::InvalidSchema(format!(
                            "no member {coord} in dimension `{}`",
                            q.group_display.get(j).map(String::as_str).unwrap_or("?")
                        ))
                    })?;
                group.push(Some(member.to_owned()));
            }
            let values: Vec<Option<f64>> = q
                .aggs
                .iter()
                .map(|a| {
                    if cell.suppressed {
                        None
                    } else {
                        cell.states.get(a.measure).and_then(|s| s.value(a.func))
                    }
                })
                .collect();
            rows.push(PlanRow { group, values, suppressed: cell.suppressed });
        }
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dimension::Dimension;
    use crate::measure::{MeasureKind, SummaryAttribute, SummaryFunction};
    use crate::plan::planner::Planner;
    use crate::plan::policy::PrivacyPolicy;
    use crate::plan::{AggRequest, GroupingSpec, Plan};

    fn sales() -> StatisticalObject {
        let schema = Schema::builder("sales")
            .dimension(Dimension::categorical("product", ["apple", "pear"]))
            .dimension(Dimension::categorical("store", ["s1", "s2"]))
            .measure(SummaryAttribute::new("amount", MeasureKind::Flow))
            .build()
            .unwrap();
        let mut o = StatisticalObject::empty(schema);
        o.insert(&["apple", "s1"], 10.0).unwrap();
        o.insert(&["apple", "s2"], 4.0).unwrap();
        o.insert(&["pear", "s2"], 5.0).unwrap();
        o
    }

    fn sum_amount() -> AggRequest {
        AggRequest {
            func: SummaryFunction::Sum,
            measure: Some("amount".into()),
            label: "SUM(\"amount\")".into(),
        }
    }

    #[test]
    fn executes_a_cube_plan_end_to_end_over_an_object() {
        let obj = sales();
        let plan = Plan::scan("sales").grouping_sets(
            vec!["product".into(), "store".into()],
            GroupingSpec::Cube,
            vec![sum_amount()],
        );
        let q = Planner::for_object(obj.schema()).plan(&plan).unwrap();
        let src = ObjectSource::new(&obj, q.base_mask()).unwrap();
        let out = execute(&q, &src).unwrap();
        assert_eq!(out.sets.len(), 4);
        let rows = result_rows(&q, &out, obj.schema()).unwrap();
        assert_eq!(rows.len(), 3 + 2 + 2 + 1);
        let apex = rows.last().unwrap();
        assert_eq!(apex.group, vec![None, None]);
        assert_eq!(apex.values, vec![Some(19.0)]);
        let by_store: Vec<&PlanRow> =
            rows.iter().filter(|r| r.group[0].is_none() && r.group[1].is_some()).collect();
        assert_eq!(by_store.len(), 2);
        assert_eq!(by_store[0].values, vec![Some(10.0)]);
        assert_eq!(by_store[1].values, vec![Some(9.0)]);
    }

    #[test]
    fn suppression_crosses_the_executor_barrier() {
        let obj = sales();
        let plan = Plan::scan("sales").grouping_sets(
            vec!["product".into()],
            GroupingSpec::Single,
            vec![sum_amount()],
        );
        let q = Planner::for_object(obj.schema())
            .with_policy(PrivacyPolicy::suppress(2))
            .plan(&plan)
            .unwrap();
        let base = crate::ops::s_project_unchecked(&obj, "store").unwrap();
        let src = ObjectSource::new(&base, q.base_mask()).unwrap();
        let out = execute(&q, &src).unwrap();
        assert_eq!(out.enforcement.suppressed, 1, "pear has a single micro unit");
        let rows = result_rows(&q, &out, obj.schema()).unwrap();
        let pear = rows.iter().find(|r| r.group[0].as_deref() == Some("pear")).unwrap();
        assert!(pear.suppressed);
        assert_eq!(pear.values, vec![None]);
        let apple = rows.iter().find(|r| r.group[0].as_deref() == Some("apple")).unwrap();
        assert_eq!(apple.values, vec![Some(14.0)]);
    }

    #[test]
    fn derive_applies_scan_filters_before_merging() {
        let mut cells = PlanCells::new();
        for (k, v) in [([0u32, 0u32], 10.0), ([0, 1], 4.0), ([1, 1], 5.0)] {
            cells.insert(
                k.to_vec().into_boxed_slice(),
                PlanCell { states: vec![AggState::from_value(v)], suppressed: false },
            );
        }
        // Source holds dims {0, 1}; filter dim 1 to member 1; target dim 0.
        let out = derive(cells, 0b11, 0b01, &[(1, vec![1])]);
        assert_eq!(out.len(), 2);
        assert_eq!(out[&vec![0u32].into_boxed_slice()].states[0].sum, 4.0);
        assert_eq!(out[&vec![1u32].into_boxed_slice()].states[0].sum, 5.0);
    }

    #[test]
    fn empty_candidate_list_is_the_unmaterialized_error() {
        let obj = sales();
        let plan = Plan::scan("sales").grouping_sets(
            vec!["product".into()],
            GroupingSpec::Single,
            vec![sum_amount()],
        );
        let mut q = Planner::for_object(obj.schema()).plan(&plan).unwrap();
        q.sets[0].candidates.clear();
        let base = crate::ops::s_project_unchecked(&obj, "store").unwrap();
        let src = ObjectSource::new(&base, 0b01).unwrap();
        let err = execute(&q, &src).unwrap_err();
        assert_eq!(err, Error::InvalidSchema("no ancestor materialized".into()));
    }
}
