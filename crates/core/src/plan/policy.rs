//! Privacy policies carried by every plan (paper §6, inference control).
//!
//! A [`PrivacyPolicy`] is *data*, not behavior: the planner attaches it to
//! the plan as a `Restrict` operator and the executor runs the matching
//! enforcement pass (see [`crate::plan::enforce`]) over every grouping set
//! before any row is returned. The policy also exposes a stable
//! [`fingerprint`](PrivacyPolicy::fingerprint) so caches can key enforced
//! answers per policy — a cell suppressed under `k = 5` must never be
//! served from an entry admitted under `k = 3` (or under no policy at all).

/// Deterministic additive noise for published sums (§6: "perturbation of
/// the output data").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Perturbation {
    /// Maximum absolute noise added to a published sum.
    pub magnitude: f64,
    /// Seed of the per-cell noise hash; same seed, same noise, so repeated
    /// queries cannot average the noise away (§6's "same statistic gets the
    /// same perturbation" requirement).
    pub seed: u64,
}

/// What disclosure control applies to the answers of one plan.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PrivacyPolicy {
    /// Cell suppression threshold: cells built from fewer than `k` micro
    /// units are withheld (§6 small-count suppression). Complementary
    /// suppression keeps the withheld value non-recoverable from published
    /// marginals.
    pub suppress_k: Option<u64>,
    /// Guard against the tracker attack (§6): additionally withhold cells
    /// within `k` of a set's total, since `total − cell` would otherwise
    /// disclose a small complement count.
    pub tracker_guard: bool,
    /// Deterministic output perturbation of published sums.
    pub perturb: Option<Perturbation>,
}

impl PrivacyPolicy {
    /// The permissive policy: nothing suppressed, nothing perturbed.
    pub fn none() -> Self {
        Self::default()
    }

    /// Small-count suppression at threshold `k`.
    pub fn suppress(k: u64) -> Self {
        Self { suppress_k: Some(k), ..Self::default() }
    }

    /// Enables the tracker-attack guard.
    #[must_use]
    pub fn with_tracker_guard(mut self) -> Self {
        self.tracker_guard = true;
        self
    }

    /// Adds deterministic perturbation of published sums.
    #[must_use]
    pub fn with_perturbation(mut self, magnitude: f64, seed: u64) -> Self {
        self.perturb = Some(Perturbation { magnitude, seed });
        self
    }

    /// True when enforcement would change nothing.
    pub fn is_none(&self) -> bool {
        self.suppress_k.is_none() && !self.tracker_guard && self.perturb.is_none()
    }

    /// A stable cache-key component. The permissive policy is always `0`;
    /// every restrictive policy maps to a non-zero FNV-1a digest of its
    /// parameters, so answers enforced under different policies can never
    /// collide in a cache.
    pub fn fingerprint(&self) -> u64 {
        if self.is_none() {
            return 0;
        }
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        h = fnv_mix(h, 1);
        h = fnv_mix(h, self.suppress_k.map_or(u64::MAX, |k| k));
        h = fnv_mix(h, u64::from(self.tracker_guard));
        match &self.perturb {
            Some(p) => {
                h = fnv_mix(h, p.magnitude.to_bits());
                h = fnv_mix(h, p.seed);
            }
            None => h = fnv_mix(h, u64::MAX),
        }
        h.max(1)
    }

    /// One-line rendering for EXPLAIN output and span notes.
    pub fn describe(&self) -> String {
        if self.is_none() {
            return "none".to_owned();
        }
        let mut parts = Vec::new();
        if let Some(k) = self.suppress_k {
            parts.push(format!("suppress(k={k})"));
        }
        if self.tracker_guard {
            parts.push("tracker-guard".to_owned());
        }
        if let Some(p) = &self.perturb {
            parts.push(format!("perturb(±{}, seed={})", p.magnitude, p.seed));
        }
        parts.join(", ")
    }
}

fn fnv_mix(mut h: u64, v: u64) -> u64 {
    for b in v.to_le_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn permissive_policy_fingerprint_is_zero() {
        assert!(PrivacyPolicy::none().is_none());
        assert_eq!(PrivacyPolicy::none().fingerprint(), 0);
        assert_eq!(PrivacyPolicy::default().describe(), "none");
    }

    #[test]
    fn distinct_policies_get_distinct_nonzero_fingerprints() {
        let policies = [
            PrivacyPolicy::suppress(2),
            PrivacyPolicy::suppress(3),
            PrivacyPolicy::suppress(3).with_tracker_guard(),
            PrivacyPolicy::suppress(3).with_perturbation(1.5, 7),
            PrivacyPolicy::suppress(3).with_perturbation(1.5, 8),
            PrivacyPolicy::suppress(3).with_perturbation(2.5, 7),
            PrivacyPolicy::none().with_tracker_guard(),
            PrivacyPolicy::none().with_perturbation(0.5, 1),
        ];
        let fps: Vec<u64> = policies.iter().map(PrivacyPolicy::fingerprint).collect();
        for (i, a) in fps.iter().enumerate() {
            assert_ne!(*a, 0, "restrictive policy {i} must not share the permissive key");
            for (j, b) in fps.iter().enumerate() {
                if i != j {
                    assert_ne!(a, b, "policies {i} and {j} collided");
                }
            }
        }
        // Stable across calls.
        assert_eq!(policies[0].fingerprint(), PrivacyPolicy::suppress(2).fingerprint());
    }

    #[test]
    fn describe_mentions_every_knob() {
        let p = PrivacyPolicy::suppress(5).with_tracker_guard().with_perturbation(2.0, 42);
        let s = p.describe();
        assert!(s.contains("suppress(k=5)"));
        assert!(s.contains("tracker-guard"));
        assert!(s.contains("perturb(±2, seed=42)"));
    }
}
