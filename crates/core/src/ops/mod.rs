//! The statistical operator algebra (§5.2, \[MRS92\]) and its OLAP aliases.
//!
//! | OLAP (§5.3) | SDB | function here |
//! |---|---|---|
//! | Slice | S-projection | [`s_project`] / [`slice_at`](crate::ops::olap::slice_at) |
//! | Dice | S-selection | [`s_select`] |
//! | Roll up (consolidation) | S-aggregation | [`s_aggregate`] |
//! | Drill down | S-disaggregation | [`disaggregate_by_proxy`], [`Navigator`](crate::ops::navigator::Navigator) |
//! | — | S-union | [`s_union`] |

pub mod navigator;
pub mod olap;

use std::collections::HashMap;

use crate::dimension::Dimension;
use crate::error::{Error, Result};
use crate::hierarchy::Hierarchy;
use crate::measure::AggState;
use crate::object::StatisticalObject;
use crate::summarizability;

/// `S-select`: keeps only cells whose member of `dim` is in `keep`. The
/// dimension's domain is unchanged — per \[MRS92\], selection "does not reduce
/// the cardinality of the multidimensional space".
pub fn s_select(obj: &StatisticalObject, dim: &str, keep: &[&str]) -> Result<StatisticalObject> {
    let d = obj.schema().dim_index(dim)?;
    let dim_ref = &obj.schema().dimensions()[d];
    let mut ids = Vec::with_capacity(keep.len());
    for k in keep {
        ids.push(dim_ref.member_id(k)?);
    }
    s_select_ids(obj, d, &ids)
}

/// `S-select` by predicate over member names.
pub fn s_select_by(
    obj: &StatisticalObject,
    dim: &str,
    pred: impl Fn(&str) -> bool,
) -> Result<StatisticalObject> {
    let d = obj.schema().dim_index(dim)?;
    let dim_ref = &obj.schema().dimensions()[d];
    let ids: Vec<u32> =
        dim_ref.members().iter().filter(|(_, v)| pred(v)).map(|(id, _)| id).collect();
    s_select_ids(obj, d, &ids)
}

/// `S-select` by member ids on dimension index `d`.
pub fn s_select_ids(obj: &StatisticalObject, d: usize, keep: &[u32]) -> Result<StatisticalObject> {
    let mut out = StatisticalObject::empty(obj.schema().clone());
    for (coords, states) in obj.cells() {
        if keep.contains(&coords[d]) {
            out.merge_states(coords, states)?;
        }
    }
    Ok(out)
}

/// `S-select` on member properties (\[LRT96\]: "selecting only Sanyo products
/// for summarization"). Keeps cells whose member, in the named (or default)
/// hierarchy, has `key == value` at the leaf level.
pub fn s_select_property(
    obj: &StatisticalObject,
    dim: &str,
    hierarchy: Option<&str>,
    key: &str,
    value: &str,
) -> Result<StatisticalObject> {
    let d = obj.schema().dim_index(dim)?;
    let dim_ref = &obj.schema().dimensions()[d];
    let h_idx = dim_ref.hierarchy_index(hierarchy)?;
    let Some(h) = dim_ref.hierarchies().nth(h_idx) else {
        return Err(Error::HierarchyNotFound {
            dimension: dim.to_owned(),
            hierarchy: hierarchy.unwrap_or("<default>").to_owned(),
        });
    };
    let ids: Vec<u32> = dim_ref
        .members()
        .iter()
        .filter(|(leaf_id, _)| {
            let hid = dim_ref.leaf_to_hierarchy(h_idx, *leaf_id);
            h.property(0, hid, key) == Some(value)
        })
        .map(|(id, _)| id)
        .collect();
    s_select_ids(obj, d, &ids)
}

/// `S-project`: summarizes over *all* values of `dim`, removing it from the
/// schema — reduces the dimensionality by one (\[MRS92\]). Fails if the
/// summarization is not summarizable (stock over time, value-per-unit sums).
pub fn s_project(obj: &StatisticalObject, dim: &str) -> Result<StatisticalObject> {
    let d = obj.schema().dim_index(dim)?;
    let violations = summarizability::check_project(obj.schema(), d);
    if !violations.is_empty() {
        return Err(Error::Summarizability(violations));
    }
    Ok(project_impl(obj, d))
}

/// `S-project` skipping summarizability checks — the caller asserts the
/// semantics are fine.
pub fn s_project_unchecked(obj: &StatisticalObject, dim: &str) -> Result<StatisticalObject> {
    let d = obj.schema().dim_index(dim)?;
    Ok(project_impl(obj, d))
}

fn project_impl(obj: &StatisticalObject, d: usize) -> StatisticalObject {
    let dims: Vec<Dimension> = obj
        .schema()
        .dimensions()
        .iter()
        .enumerate()
        .filter(|(i, _)| *i != d)
        .map(|(_, dim)| dim.clone())
        .collect();
    let schema = obj.schema().with_dimensions(dims);
    let mut cells: HashMap<Box<[u32]>, Vec<AggState>> = HashMap::new();
    for (coords, states) in obj.cells() {
        let mut key: Vec<u32> = Vec::with_capacity(coords.len() - 1);
        key.extend(coords.iter().enumerate().filter(|(i, _)| *i != d).map(|(_, &c)| c));
        let slot = cells
            .entry(key.into_boxed_slice())
            .or_insert_with(|| vec![AggState::EMPTY; states.len()]);
        for (dst, src) in slot.iter_mut().zip(states) {
            dst.merge(src);
        }
    }
    StatisticalObject::from_parts(schema, cells)
}

/// `S-aggregation`: rolls dimension `dim` up to `level` of its default
/// hierarchy. The dimension's members become the level's members; the
/// hierarchy above the level is retained for further roll-ups. Cardinality
/// of the space (number of dimensions) is unchanged (\[MRS92\]).
pub fn s_aggregate(obj: &StatisticalObject, dim: &str, level: &str) -> Result<StatisticalObject> {
    s_aggregate_in(obj, dim, None, level, true)
}

/// `S-aggregation` in a *named* hierarchy (multiple classifications over the
/// same dimension, §3.2(i)), with `checked` summarizability enforcement.
pub fn s_aggregate_in(
    obj: &StatisticalObject,
    dim: &str,
    hierarchy: Option<&str>,
    level: &str,
    checked: bool,
) -> Result<StatisticalObject> {
    let d = obj.schema().dim_index(dim)?;
    let dim_ref = &obj.schema().dimensions()[d];
    let h_idx = dim_ref.hierarchy_index(hierarchy)?;
    let Some(h) = dim_ref.hierarchies().nth(h_idx).cloned() else {
        return Err(Error::HierarchyNotFound {
            dimension: dim.to_owned(),
            hierarchy: hierarchy.unwrap_or("<default>").to_owned(),
        });
    };
    let to_level = h.level_index(level)?;
    if checked {
        let violations = summarizability::check_aggregate(obj.schema(), d, &h, to_level);
        if !violations.is_empty() {
            return Err(Error::Summarizability(violations));
        }
    }

    // Precompute leaf → ancestor mapping (possibly one-to-many if the
    // structure is non-strict and the caller opted out of checks).
    let card = dim_ref.cardinality();
    let mut up: Vec<Vec<u32>> = Vec::with_capacity(card);
    for leaf in 0..card as u32 {
        let hid = dim_ref.leaf_to_hierarchy(h_idx, leaf);
        up.push(h.ancestors_at(hid, to_level));
    }

    let new_hier = h.truncate_below(to_level);
    let new_dim = Dimension::classified(dim_ref.name(), new_hier).with_role(dim_ref.role());
    let mut dims = obj.schema().dimensions().to_vec();
    dims[d] = new_dim;
    let schema = obj.schema().with_dimensions(dims);

    let mut out = StatisticalObject::empty(schema);
    for (coords, states) in obj.cells() {
        for &ancestor in &up[coords[d] as usize] {
            let mut key = coords.to_vec();
            key[d] = ancestor;
            out.merge_states(&key, states)?;
        }
    }
    Ok(out)
}

/// How [`s_union`] treats a cell populated in both inputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnionPolicy {
    /// Overlapping cells must agree (same sum and count); disagreement is an
    /// error. Use when both sources report the *same* underlying facts.
    ErrorOnConflict,
    /// Keep the first object's cell.
    PreferFirst,
    /// Keep the second object's cell.
    PreferSecond,
    /// Merge aggregation states. Use when the sources cover *disjoint*
    /// micro populations that happen to share category values.
    MergeStates,
}

/// `S-union`: combines two statistical objects with overlapping (or
/// partially overlapping) category values (\[MRS92\]). Dimension domains are
/// unioned; `policy` resolves cells present in both.
pub fn s_union(
    a: &StatisticalObject,
    b: &StatisticalObject,
    policy: UnionPolicy,
) -> Result<StatisticalObject> {
    if !a.schema().union_compatible(b.schema()) {
        return Err(Error::SchemaMismatch(format!(
            "`{}` and `{}` are not union-compatible",
            a.schema().name(),
            b.schema().name()
        )));
    }
    // Union the member domains dimension-wise, keeping a's ids stable.
    let mut dims: Vec<Dimension> = Vec::with_capacity(a.schema().dim_count());
    let mut remap_b: Vec<Vec<u32>> = Vec::with_capacity(a.schema().dim_count());
    for (da, db) in a.schema().dimensions().iter().zip(b.schema().dimensions()) {
        let mut members: Vec<String> = da.members().values().map(str::to_owned).collect();
        let mut map_b = Vec::with_capacity(db.cardinality());
        for v in db.members().values() {
            match members.iter().position(|m| m == v) {
                Some(i) => map_b.push(i as u32),
                None => {
                    members.push(v.to_owned());
                    map_b.push((members.len() - 1) as u32);
                }
            }
        }
        // Hierarchies are dropped in the union result: the sources may
        // classify the unioned domain differently (§5.7 is the cure).
        let dim = Dimension::categorical(da.name(), members).with_role(da.role());
        dims.push(dim);
        remap_b.push(map_b);
    }
    let schema = a.schema().with_dimensions(dims);
    let mut out = StatisticalObject::empty(schema);
    for (coords, states) in a.cells() {
        out.merge_states(coords, states)?;
    }
    for (coords, states) in b.cells() {
        let key: Vec<u32> =
            coords.iter().enumerate().map(|(i, &c)| remap_b[i][c as usize]).collect();
        match (out.states_at(&key).is_some(), policy) {
            (false, _) | (true, UnionPolicy::MergeStates) => out.merge_states(&key, states)?,
            (true, UnionPolicy::PreferFirst) => {}
            (true, UnionPolicy::PreferSecond) => {
                out.cells_mut().insert(key.into_boxed_slice(), states.to_vec());
            }
            (true, UnionPolicy::ErrorOnConflict) => {
                let agrees = out.states_at(&key).is_some_and(|existing| {
                    existing.iter().zip(states).all(|(x, y)| {
                        (x.sum - y.sum).abs() <= 1e-9 * x.sum.abs().max(1.0) && x.count == y.count
                    })
                });
                if !agrees {
                    let names = out.schema().names_of(&key)?.join(", ");
                    return Err(Error::UnionConflict { coordinates: format!("({names})") });
                }
            }
        }
    }
    Ok(out)
}

/// `S-disaggregation` *by proxy* (§5.3): splits each cell of `dim` (whose
/// members must be `hierarchy`'s **upper**-level members) down to the
/// hierarchy's leaf members, apportioning sums by the normalized proxy
/// weight of each leaf ("use county areas to estimate county populations
/// from state populations").
///
/// The produced states are estimates: `sum` and `count` are apportioned,
/// order statistics are unknown (`min`/`max` are NaN).
pub fn disaggregate_by_proxy(
    obj: &StatisticalObject,
    dim: &str,
    hierarchy: &Hierarchy,
    proxy: &HashMap<String, f64>,
) -> Result<StatisticalObject> {
    if hierarchy.level_count() < 2 {
        return Err(Error::InvalidProxy("hierarchy needs at least two levels".into()));
    }
    let d = obj.schema().dim_index(dim)?;
    let dim_ref = &obj.schema().dimensions()[d];
    let top = hierarchy.level_count() - 1;
    // Validate the coarse members line up with the hierarchy's top level.
    let top_members = hierarchy.level(top).members();
    let mut coarse_to_top: Vec<u32> = Vec::with_capacity(dim_ref.cardinality());
    for v in dim_ref.members().values() {
        match top_members.id_of(v) {
            Some(id) => coarse_to_top.push(id),
            None => {
                return Err(Error::InvalidProxy(format!(
                    "member `{v}` of `{dim}` is not a top-level member of hierarchy `{}`",
                    hierarchy.name()
                )))
            }
        }
    }
    // Per-leaf weights, grouped and normalized per top-level ancestor.
    let leaf = hierarchy.leaf().members();
    let mut weights: Vec<f64> = Vec::with_capacity(leaf.len());
    for (_, name) in leaf.iter() {
        match proxy.get(name) {
            Some(&w) if w >= 0.0 && w.is_finite() => weights.push(w),
            Some(_) => {
                return Err(Error::InvalidProxy(format!(
                    "negative or non-finite weight for `{name}`"
                )))
            }
            None => return Err(Error::InvalidProxy(format!("missing weight for `{name}`"))),
        }
    }
    let mut group_total: HashMap<u32, f64> = HashMap::new();
    for (leaf_id, _) in leaf.iter() {
        for &anc in &hierarchy.ancestors_at(leaf_id, top) {
            *group_total.entry(anc).or_insert(0.0) += weights[leaf_id as usize];
        }
    }

    let fine_dim =
        Dimension::classified(dim_ref.name(), hierarchy.clone()).with_role(dim_ref.role());
    let mut dims = obj.schema().dimensions().to_vec();
    dims[d] = fine_dim;
    let schema = obj.schema().with_dimensions(dims);
    let mut out = StatisticalObject::empty(schema);

    for (coords, states) in obj.cells() {
        let top_id = coarse_to_top[coords[d] as usize];
        let children = hierarchy.leaf_descendants(top, top_id);
        let total = group_total.get(&top_id).copied().unwrap_or(0.0);
        if total <= 0.0 {
            return Err(Error::InvalidProxy(format!(
                "zero total proxy weight under `{}`",
                top_members.value_of(top_id).unwrap_or("?")
            )));
        }
        for child in children {
            let w = weights[child as usize] / total;
            if w == 0.0 {
                continue;
            }
            let mut key = coords.to_vec();
            key[d] = child;
            let estimated: Vec<AggState> = states
                .iter()
                .map(|s| AggState::from_sum_count(s.sum * w, (s.count as f64 * w).round() as u64))
                .collect();
            out.merge_states(&key, &estimated)?;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dimension::Dimension;
    use crate::measure::{MeasureKind, SummaryAttribute};
    use crate::schema::Schema;

    fn employment() -> StatisticalObject {
        let profession = Hierarchy::builder("profession")
            .level("profession")
            .level("professional class")
            .edge("chemical engineer", "engineer")
            .edge("civil engineer", "engineer")
            .edge("junior secretary", "secretary")
            .edge("executive secretary", "secretary")
            .build()
            .unwrap();
        let schema = Schema::builder("Employment in California")
            .dimension(Dimension::categorical("sex", ["male", "female"]))
            .dimension(Dimension::temporal("year", ["1991", "1992"]))
            .dimension(Dimension::classified("profession", profession))
            .measure(SummaryAttribute::new("employment", MeasureKind::Stock))
            .build()
            .unwrap();
        let mut o = StatisticalObject::empty(schema);
        // Figures from paper Fig. 1 (fictitious numbers).
        o.insert(&["male", "1991", "chemical engineer"], 197_700.0).unwrap();
        o.insert(&["male", "1991", "civil engineer"], 241_100.0).unwrap();
        o.insert(&["male", "1992", "chemical engineer"], 209_900.0).unwrap();
        o.insert(&["male", "1992", "civil engineer"], 278_000.0).unwrap();
        o.insert(&["female", "1991", "junior secretary"], 667_300.0).unwrap();
        o.insert(&["female", "1992", "junior secretary"], 692_500.0).unwrap();
        o
    }

    #[test]
    fn select_filters_cells_not_domain() {
        let o = employment();
        let males = s_select(&o, "sex", &["male"]).unwrap();
        assert_eq!(males.cell_count(), 4);
        assert_eq!(males.schema().dimension("sex").unwrap().cardinality(), 2);
        assert_eq!(males.get(&["female", "1991", "junior secretary"]).unwrap(), None);
    }

    #[test]
    fn select_by_predicate() {
        let o = employment();
        let engineers = s_select_by(&o, "profession", |p| p.contains("engineer")).unwrap();
        assert_eq!(engineers.cell_count(), 4);
    }

    #[test]
    fn project_removes_dimension() {
        let o = employment();
        let by_year_prof = s_project(&o, "sex").unwrap();
        assert_eq!(by_year_prof.schema().dim_count(), 2);
        assert_eq!(by_year_prof.get(&["1991", "chemical engineer"]).unwrap(), Some(197_700.0));
    }

    #[test]
    fn project_stock_over_time_rejected_but_unchecked_works() {
        let o = employment();
        let err = s_project(&o, "year");
        assert!(matches!(err, Err(Error::Summarizability(_))));
        let forced = s_project_unchecked(&o, "year").unwrap();
        assert_eq!(
            forced.get(&["male", "chemical engineer"]).unwrap(),
            Some(197_700.0 + 209_900.0)
        );
    }

    #[test]
    fn aggregate_rolls_up_and_retains_hierarchy() {
        let o = employment();
        let by_class = s_aggregate(&o, "profession", "professional class").unwrap();
        assert_eq!(
            by_class.get(&["male", "1991", "engineer"]).unwrap(),
            Some(197_700.0 + 241_100.0)
        );
        // The new dimension's hierarchy is the truncated (single-level) one.
        let d = by_class.schema().dimension("profession").unwrap();
        assert_eq!(d.cardinality(), 2); // engineer, secretary
        assert_eq!(d.default_hierarchy().unwrap().level_count(), 1);
    }

    #[test]
    fn aggregate_three_levels_stepwise_equals_direct() {
        let time = Hierarchy::builder("time")
            .level("day")
            .level("month")
            .edge("d1", "jan")
            .edge("d2", "jan")
            .edge("d3", "feb")
            .level("year")
            .edge_at(1, "jan", "1996")
            .edge_at(1, "feb", "1996")
            .build()
            .unwrap();
        let schema = Schema::builder("sales")
            .dimension(Dimension::classified_temporal("day", time))
            .measure(SummaryAttribute::new("qty", MeasureKind::Flow))
            .build()
            .unwrap();
        let mut o = StatisticalObject::empty(schema);
        o.insert(&["d1"], 1.0).unwrap();
        o.insert(&["d2"], 2.0).unwrap();
        o.insert(&["d3"], 4.0).unwrap();
        let direct = s_aggregate(&o, "day", "year").unwrap();
        let stepwise =
            s_aggregate(&s_aggregate(&o, "day", "month").unwrap(), "day", "year").unwrap();
        assert_eq!(direct.get(&["1996"]).unwrap(), Some(7.0));
        assert_eq!(stepwise.get(&["1996"]).unwrap(), Some(7.0));
    }

    #[test]
    fn non_strict_aggregate_rejected_then_double_counts_unchecked() {
        let h = Hierarchy::builder("disease")
            .level("disease")
            .level("category")
            .edge("lung cancer", "cancer")
            .edge("lung cancer", "respiratory")
            .edge("flu", "respiratory")
            .build()
            .unwrap();
        let schema = Schema::builder("hmo")
            .dimension(Dimension::classified("disease", h))
            .measure(SummaryAttribute::new("cost", MeasureKind::Flow))
            .build()
            .unwrap();
        let mut o = StatisticalObject::empty(schema);
        o.insert(&["lung cancer"], 100.0).unwrap();
        o.insert(&["flu"], 10.0).unwrap();
        assert!(matches!(s_aggregate(&o, "disease", "category"), Err(Error::Summarizability(_))));
        // Unchecked: lung cancer is counted under BOTH categories — the
        // erroneous result the paper warns about (total 210 ≠ 110).
        let forced = s_aggregate_in(&o, "disease", None, "category", false).unwrap();
        assert_eq!(forced.get(&["cancer"]).unwrap(), Some(100.0));
        assert_eq!(forced.get(&["respiratory"]).unwrap(), Some(110.0));
        assert_eq!(forced.grand_total(0), Some(210.0));
    }

    #[test]
    fn union_disjoint_and_overlapping() {
        let mk = |states: &[(&str, f64)]| {
            let schema = Schema::builder("pop")
                .dimension(Dimension::spatial(
                    "state",
                    states.iter().map(|(s, _)| *s).collect::<Vec<_>>(),
                ))
                .measure(SummaryAttribute::new("population", MeasureKind::Stock))
                .build()
                .unwrap();
            let mut o = StatisticalObject::empty(schema);
            for (s, v) in states {
                o.insert(&[s], *v).unwrap();
            }
            o
        };
        let a = mk(&[("AL", 10.0), ("CA", 30.0)]);
        let b = mk(&[("CA", 30.0), ("NV", 2.0)]);
        let u = s_union(&a, &b, UnionPolicy::ErrorOnConflict).unwrap();
        assert_eq!(u.cell_count(), 3);
        assert_eq!(u.get(&["NV"]).unwrap(), Some(2.0));
        assert_eq!(u.get(&["CA"]).unwrap(), Some(30.0));

        let conflict = mk(&[("CA", 31.0)]);
        assert!(matches!(
            s_union(&a, &conflict, UnionPolicy::ErrorOnConflict),
            Err(Error::UnionConflict { .. })
        ));
        let kept = s_union(&a, &conflict, UnionPolicy::PreferFirst).unwrap();
        assert_eq!(kept.get(&["CA"]).unwrap(), Some(30.0));
        let replaced = s_union(&a, &conflict, UnionPolicy::PreferSecond).unwrap();
        assert_eq!(replaced.get(&["CA"]).unwrap(), Some(31.0));
        let merged = s_union(&a, &conflict, UnionPolicy::MergeStates).unwrap();
        assert_eq!(merged.get(&["CA"]).unwrap(), Some(61.0));
    }

    #[test]
    fn union_requires_compatible_schema() {
        let a = employment();
        let schema = Schema::builder("other")
            .dimension(Dimension::categorical("x", ["1"]))
            .measure(SummaryAttribute::new("m", MeasureKind::Flow))
            .build()
            .unwrap();
        let b = StatisticalObject::empty(schema);
        assert!(s_union(&a, &b, UnionPolicy::MergeStates).is_err());
    }

    #[test]
    fn disaggregation_by_proxy_splits_sums() {
        // Population known at state level; county area as proxy (§5.3).
        let geo = Hierarchy::builder("geo")
            .level("county")
            .level("state")
            .edge("alameda", "CA")
            .edge("fresno", "CA")
            .edge("washoe", "NV")
            .build()
            .unwrap();
        let schema = Schema::builder("pop")
            .dimension(Dimension::spatial("state", ["CA", "NV"]))
            .measure(SummaryAttribute::new("population", MeasureKind::Stock))
            .build()
            .unwrap();
        let mut o = StatisticalObject::empty(schema);
        o.insert(&["CA"], 3000.0).unwrap();
        o.insert(&["NV"], 100.0).unwrap();
        let proxy: HashMap<String, f64> =
            [("alameda".to_owned(), 1.0), ("fresno".to_owned(), 2.0), ("washoe".to_owned(), 5.0)]
                .into();
        let fine = disaggregate_by_proxy(&o, "state", &geo, &proxy).unwrap();
        assert_eq!(fine.get(&["alameda"]).unwrap(), Some(1000.0));
        assert_eq!(fine.get(&["fresno"]).unwrap(), Some(2000.0));
        assert_eq!(fine.get(&["washoe"]).unwrap(), Some(100.0));
        // Disaggregation then re-aggregation round-trips the totals.
        let back = s_aggregate(&fine, "state", "state").unwrap();
        assert_eq!(back.get(&["CA"]).unwrap(), Some(3000.0));
    }

    #[test]
    fn disaggregation_errors() {
        let geo = Hierarchy::builder("geo")
            .level("county")
            .level("state")
            .edge("alameda", "CA")
            .build()
            .unwrap();
        let schema = Schema::builder("pop")
            .dimension(Dimension::spatial("state", ["CA"]))
            .measure(SummaryAttribute::new("population", MeasureKind::Stock))
            .build()
            .unwrap();
        let mut o = StatisticalObject::empty(schema);
        o.insert(&["CA"], 10.0).unwrap();
        // Missing weight.
        assert!(disaggregate_by_proxy(&o, "state", &geo, &HashMap::new()).is_err());
        // Zero total weight.
        let zero: HashMap<String, f64> = [("alameda".to_owned(), 0.0)].into();
        assert!(disaggregate_by_proxy(&o, "state", &geo, &zero).is_err());
        // Negative weight.
        let neg: HashMap<String, f64> = [("alameda".to_owned(), -1.0)].into();
        assert!(disaggregate_by_proxy(&o, "state", &geo, &neg).is_err());
    }

    #[test]
    fn select_then_project_commutes_with_project_then_select() {
        // On independent dimensions the operators commute.
        let o = employment();
        let a = s_project(&s_select(&o, "sex", &["male"]).unwrap(), "profession");
        let b = s_select(&s_project(&o, "profession").unwrap(), "sex", &["male"]);
        // profession is Stock-over-categorical: fine to project.
        let (a, b) = (a.unwrap(), b.unwrap());
        assert_eq!(a.get(&["male", "1991"]).unwrap(), b.get(&["male", "1991"]).unwrap());
    }
}
