//! Drill-down navigation (§5.3).
//!
//! "Drill down" is the inverse of roll-up: going from "cancer" back to the
//! individual cancer diseases. It is only *exactly* invertible when the
//! finer data is still available, so a [`Navigator`] keeps the base
//! (finest-level) object and recomputes views as the per-dimension level
//! cursor moves. (When the finer data is gone, estimate it with
//! [`crate::ops::disaggregate_by_proxy`] instead.)
//!
//! The navigator is a thin front-end over the shared plan layer: every
//! gesture is recorded as a [`crate::plan::Plan`] node, [`Navigator::plan`]
//! exposes the logical plan, and [`Navigator::view`] runs it through the
//! workspace planner and executor — the planner's navigation-cancellation
//! pass reduces the roll-up/drill-down history to the net level per
//! dimension, and the privacy pass runs in-path
//! ([`Navigator::view_with_policy`]).

use crate::error::{Error, Result};
use crate::object::StatisticalObject;
use crate::ops;
use crate::plan::{self, Plan, Planner, PrivacyPolicy};

/// One recorded navigation gesture.
#[derive(Debug, Clone)]
enum NavStep {
    /// Rolled `dim` up to the named hierarchy level.
    RollUp(String, String),
    /// Drilled `dim` down one level.
    DrillDown(String),
}

/// An interactive roll-up / drill-down cursor over a statistical object.
#[derive(Debug, Clone)]
pub struct Navigator {
    base: StatisticalObject,
    /// Current hierarchy level per dimension (0 = leaf). Kept alongside the
    /// history for eager bounds checks, so the recorded plan is always
    /// valid.
    levels: Vec<usize>,
    /// The gesture log, replayed as a logical plan by [`Navigator::plan`].
    history: Vec<NavStep>,
}

impl Navigator {
    /// Starts navigation at the finest level of every dimension.
    pub fn new(base: StatisticalObject) -> Self {
        let levels = vec![0; base.schema().dim_count()];
        Self { base, levels, history: Vec::new() }
    }

    /// The base object.
    pub fn base(&self) -> &StatisticalObject {
        &self.base
    }

    /// The current level index of `dim`.
    pub fn level_of(&self, dim: &str) -> Result<usize> {
        Ok(self.levels[self.base.schema().dim_index(dim)?])
    }

    /// Rolls `dim` up one level. Errors at the top of the hierarchy.
    pub fn roll_up(&mut self, dim: &str) -> Result<()> {
        let d = self.base.schema().dim_index(dim)?;
        let dim_ref = &self.base.schema().dimensions()[d];
        let h = dim_ref.default_hierarchy().ok_or_else(|| Error::HierarchyNotFound {
            dimension: dim.to_owned(),
            hierarchy: "<default>".to_owned(),
        })?;
        if self.levels[d] + 1 >= h.level_count() {
            return Err(Error::LevelNotFound {
                hierarchy: h.name().to_owned(),
                level: format!("above {}", h.level(self.levels[d]).name()),
            });
        }
        self.levels[d] += 1;
        self.history
            .push(NavStep::RollUp(dim.to_owned(), h.level(self.levels[d]).name().to_owned()));
        Ok(())
    }

    /// Drills `dim` down one level — always possible because the base data
    /// is retained. Errors at the leaf.
    pub fn drill_down(&mut self, dim: &str) -> Result<()> {
        let d = self.base.schema().dim_index(dim)?;
        if self.levels[d] == 0 {
            return Err(Error::LevelNotFound {
                hierarchy: dim.to_owned(),
                level: "below leaf".to_owned(),
            });
        }
        self.levels[d] -= 1;
        self.history.push(NavStep::DrillDown(dim.to_owned()));
        Ok(())
    }

    /// The logical plan for the current view: the full gesture history over
    /// a scan of the base. The planner's cancellation pass folds it to the
    /// net roll-up per dimension.
    pub fn plan(&self) -> Plan {
        let mut p = Plan::scan(self.base.schema().name());
        for step in &self.history {
            p = match step {
                NavStep::RollUp(dim, level) => p.roll_up(dim, level),
                NavStep::DrillDown(dim) => p.drill_down(dim),
            };
        }
        p
    }

    /// Materializes the current view through the shared planner and
    /// executor, with no privacy restriction.
    pub fn view(&self) -> Result<StatisticalObject> {
        self.view_with_policy(&PrivacyPolicy::none())
    }

    /// [`Navigator::view`] under a privacy policy: the plan's mandatory
    /// privacy pass enforces `policy` before the view is rebuilt, so
    /// suppressed cells are simply absent from the returned object.
    pub fn view_with_policy(&self, policy: &PrivacyPolicy) -> Result<StatisticalObject> {
        let planned = Planner::for_object(self.base.schema())
            .with_policy(policy.clone())
            .plan(&self.plan())?;
        // Leaf program: the net roll-ups rewrite the object's grain.
        let mut cur = self.base.clone();
        for r in &planned.leaf_rollups {
            cur = ops::s_aggregate(&cur, &r.dim_name, &r.level)?;
        }
        let src = plan::ObjectSource::new(&cur, planned.base_mask())?;
        let executed = plan::execute(&planned, &src)?;
        let mut out = StatisticalObject::empty(cur.schema().clone());
        for set in &executed.sets {
            let block = &set.cells;
            for i in 0..block.len() {
                if block.is_suppressed(i) {
                    continue;
                }
                out.merge_states(block.key(i), &block.states_row(i))?;
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dimension::Dimension;
    use crate::hierarchy::Hierarchy;
    use crate::measure::{MeasureKind, SummaryAttribute};
    use crate::schema::Schema;

    fn base() -> StatisticalObject {
        let disease = Hierarchy::builder("disease")
            .level("disease")
            .level("category")
            .edge("breast cancer", "cancer")
            .edge("skin cancer", "cancer")
            .edge("flu", "respiratory")
            .build()
            .unwrap();
        let schema = Schema::builder("hmo costs")
            .dimension(Dimension::classified("disease", disease))
            .dimension(Dimension::categorical("hospital", ["h1", "h2"]))
            .measure(SummaryAttribute::new("cost", MeasureKind::Flow))
            .build()
            .unwrap();
        let mut o = StatisticalObject::empty(schema);
        o.insert(&["breast cancer", "h1"], 10.0).unwrap();
        o.insert(&["skin cancer", "h1"], 5.0).unwrap();
        o.insert(&["flu", "h2"], 1.0).unwrap();
        o
    }

    #[test]
    fn roll_up_then_drill_down_restores_view() {
        let mut nav = Navigator::new(base());
        let before = nav.view().unwrap();
        nav.roll_up("disease").unwrap();
        let coarse = nav.view().unwrap();
        assert_eq!(coarse.get(&["cancer", "h1"]).unwrap(), Some(15.0));
        nav.drill_down("disease").unwrap();
        let after = nav.view().unwrap();
        assert_eq!(before, after);
    }

    #[test]
    fn bounds_are_enforced() {
        let mut nav = Navigator::new(base());
        assert!(nav.drill_down("disease").is_err());
        nav.roll_up("disease").unwrap();
        assert!(nav.roll_up("disease").is_err());
        assert!(nav.roll_up("hospital").is_err()); // flat dimension
        assert_eq!(nav.level_of("disease").unwrap(), 1);
    }

    #[test]
    fn view_at_leaf_is_base() {
        let nav = Navigator::new(base());
        assert_eq!(nav.view().unwrap(), *nav.base());
    }

    #[test]
    fn history_becomes_a_plan_the_planner_cancels() {
        let mut nav = Navigator::new(base());
        nav.roll_up("disease").unwrap();
        let rolled = nav.plan().render();
        assert!(rolled.contains("RollUp{disease → category}"), "{rolled}");
        assert!(rolled.contains("Scan{hmo costs}"), "{rolled}");
        nav.drill_down("disease").unwrap();
        // The history keeps both gestures…
        let cancelled = nav.plan().render();
        assert!(cancelled.contains("DrillDown{disease}"), "{cancelled}");
        // …but the planner folds them to no net roll-up.
        let planned = Planner::for_object(nav.base().schema()).plan(&nav.plan()).unwrap();
        assert!(planned.leaf_rollups.is_empty());
    }

    #[test]
    fn view_under_a_suppression_policy_withholds_small_cells() {
        let mut nav = Navigator::new(base());
        nav.roll_up("disease").unwrap();
        let open = nav.view().unwrap();
        assert_eq!(open.get(&["respiratory", "h2"]).unwrap(), Some(1.0));
        // (cancer, h1) merges two base cells; (respiratory, h2) holds one.
        let guarded = nav.view_with_policy(&PrivacyPolicy::suppress(2)).unwrap();
        assert_eq!(guarded.get(&["cancer", "h1"]).unwrap(), Some(15.0));
        assert_eq!(guarded.get(&["respiratory", "h2"]).unwrap(), None);
    }
}
