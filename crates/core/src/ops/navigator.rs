//! Drill-down navigation (§5.3).
//!
//! "Drill down" is the inverse of roll-up: going from "cancer" back to the
//! individual cancer diseases. It is only *exactly* invertible when the
//! finer data is still available, so a [`Navigator`] keeps the base
//! (finest-level) object and recomputes views as the per-dimension level
//! cursor moves. (When the finer data is gone, estimate it with
//! [`crate::ops::disaggregate_by_proxy`] instead.)

use crate::error::{Error, Result};
use crate::object::StatisticalObject;
use crate::ops;

/// An interactive roll-up / drill-down cursor over a statistical object.
#[derive(Debug, Clone)]
pub struct Navigator {
    base: StatisticalObject,
    /// Current hierarchy level per dimension (0 = leaf).
    levels: Vec<usize>,
}

impl Navigator {
    /// Starts navigation at the finest level of every dimension.
    pub fn new(base: StatisticalObject) -> Self {
        let levels = vec![0; base.schema().dim_count()];
        Self { base, levels }
    }

    /// The base object.
    pub fn base(&self) -> &StatisticalObject {
        &self.base
    }

    /// The current level index of `dim`.
    pub fn level_of(&self, dim: &str) -> Result<usize> {
        Ok(self.levels[self.base.schema().dim_index(dim)?])
    }

    /// Rolls `dim` up one level. Errors at the top of the hierarchy.
    pub fn roll_up(&mut self, dim: &str) -> Result<()> {
        let d = self.base.schema().dim_index(dim)?;
        let dim_ref = &self.base.schema().dimensions()[d];
        let h = dim_ref.default_hierarchy().ok_or_else(|| Error::HierarchyNotFound {
            dimension: dim.to_owned(),
            hierarchy: "<default>".to_owned(),
        })?;
        if self.levels[d] + 1 >= h.level_count() {
            return Err(Error::LevelNotFound {
                hierarchy: h.name().to_owned(),
                level: format!("above {}", h.level(self.levels[d]).name()),
            });
        }
        self.levels[d] += 1;
        Ok(())
    }

    /// Drills `dim` down one level — always possible because the base data
    /// is retained. Errors at the leaf.
    pub fn drill_down(&mut self, dim: &str) -> Result<()> {
        let d = self.base.schema().dim_index(dim)?;
        if self.levels[d] == 0 {
            return Err(Error::LevelNotFound {
                hierarchy: dim.to_owned(),
                level: "below leaf".to_owned(),
            });
        }
        self.levels[d] -= 1;
        Ok(())
    }

    /// Materializes the current view by re-aggregating the base object to
    /// the cursor levels.
    pub fn view(&self) -> Result<StatisticalObject> {
        let mut cur = self.base.clone();
        for (d, &lvl) in self.levels.iter().enumerate() {
            if lvl == 0 {
                continue;
            }
            let dim = &self.base.schema().dimensions()[d];
            let name = dim.name().to_owned();
            let h = dim.default_hierarchy().expect("level > 0 implies hierarchy");
            let level_name = h.level(lvl).name().to_owned();
            cur = ops::s_aggregate(&cur, &name, &level_name)?;
        }
        Ok(cur)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dimension::Dimension;
    use crate::hierarchy::Hierarchy;
    use crate::measure::{MeasureKind, SummaryAttribute};
    use crate::schema::Schema;

    fn base() -> StatisticalObject {
        let disease = Hierarchy::builder("disease")
            .level("disease")
            .level("category")
            .edge("breast cancer", "cancer")
            .edge("skin cancer", "cancer")
            .edge("flu", "respiratory")
            .build()
            .unwrap();
        let schema = Schema::builder("hmo costs")
            .dimension(Dimension::classified("disease", disease))
            .dimension(Dimension::categorical("hospital", ["h1", "h2"]))
            .measure(SummaryAttribute::new("cost", MeasureKind::Flow))
            .build()
            .unwrap();
        let mut o = StatisticalObject::empty(schema);
        o.insert(&["breast cancer", "h1"], 10.0).unwrap();
        o.insert(&["skin cancer", "h1"], 5.0).unwrap();
        o.insert(&["flu", "h2"], 1.0).unwrap();
        o
    }

    #[test]
    fn roll_up_then_drill_down_restores_view() {
        let mut nav = Navigator::new(base());
        let before = nav.view().unwrap();
        nav.roll_up("disease").unwrap();
        let coarse = nav.view().unwrap();
        assert_eq!(coarse.get(&["cancer", "h1"]).unwrap(), Some(15.0));
        nav.drill_down("disease").unwrap();
        let after = nav.view().unwrap();
        assert_eq!(before, after);
    }

    #[test]
    fn bounds_are_enforced() {
        let mut nav = Navigator::new(base());
        assert!(nav.drill_down("disease").is_err());
        nav.roll_up("disease").unwrap();
        assert!(nav.roll_up("disease").is_err());
        assert!(nav.roll_up("hospital").is_err()); // flat dimension
        assert_eq!(nav.level_of("disease").unwrap(), 1);
    }

    #[test]
    fn view_at_leaf_is_base() {
        let nav = Navigator::new(base());
        assert_eq!(nav.view().unwrap(), *nav.base());
    }
}
