//! OLAP operator vocabulary (§5.3, Fig. 14) as thin aliases over the
//! statistical algebra, plus convenience methods on
//! [`StatisticalObject`].
//!
//! The paper notes the OLAP terms are "descriptive rather than formal" and
//! admit multiple interpretations — e.g. *slice* sometimes means fixing one
//! value of a dimension and sometimes summarizing over all of them. Both
//! interpretations are provided, with distinct names.

use crate::error::Result;
use crate::object::StatisticalObject;
use crate::ops;

/// *Slice* (fix interpretation): cuts through the cube at `dim = member`,
/// dropping the dimension and recording `dim = member` in the schema's
/// singleton context — exactly how "Employment in California" carries
/// `state = California` (§2.1(iii)).
pub fn slice_at(obj: &StatisticalObject, dim: &str, member: &str) -> Result<StatisticalObject> {
    let d = obj.schema().dim_index(dim)?;
    let id = obj.schema().dimensions()[d].member_id(member)?;
    let filtered = ops::s_select_ids(obj, d, &[id])?;
    // The singleton dimension collapses away without aggregation across
    // members, so no summarizability check is needed.
    let mut out = ops::s_project_unchecked(&filtered, dim)?;
    out.schema_mut().push_context(dim.to_owned(), member.to_owned());
    Ok(out)
}

/// *Slice* (summarize interpretation): summarizes over all values of `dim` —
/// identical to `S-projection`.
pub fn slice_sum(obj: &StatisticalObject, dim: &str) -> Result<StatisticalObject> {
    ops::s_project(obj, dim)
}

/// *Dice*: selects ranges over several dimensions at once — repeated
/// `S-selection`.
pub fn dice(obj: &StatisticalObject, selections: &[(&str, &[&str])]) -> Result<StatisticalObject> {
    let mut cur = obj.clone();
    for (dim, keep) in selections {
        cur = ops::s_select(&cur, dim, keep)?;
    }
    Ok(cur)
}

/// *Roll up* (a.k.a. *consolidation*): summarizes over one or more levels of
/// the classification hierarchy — identical to `S-aggregation`.
pub fn roll_up(obj: &StatisticalObject, dim: &str, level: &str) -> Result<StatisticalObject> {
    ops::s_aggregate(obj, dim, level)
}

impl StatisticalObject {
    /// [`ops::s_select`] as a method.
    pub fn select(&self, dim: &str, keep: &[&str]) -> Result<StatisticalObject> {
        ops::s_select(self, dim, keep)
    }

    /// [`ops::s_project`] as a method.
    pub fn project(&self, dim: &str) -> Result<StatisticalObject> {
        ops::s_project(self, dim)
    }

    /// [`roll_up`] as a method.
    pub fn roll_up(&self, dim: &str, level: &str) -> Result<StatisticalObject> {
        ops::s_aggregate(self, dim, level)
    }

    /// [`slice_at`] as a method.
    pub fn slice(&self, dim: &str, member: &str) -> Result<StatisticalObject> {
        slice_at(self, dim, member)
    }

    /// [`dice`] as a method.
    pub fn dice(&self, selections: &[(&str, &[&str])]) -> Result<StatisticalObject> {
        dice(self, selections)
    }

    /// [`ops::s_union`] as a method.
    pub fn union_with(
        &self,
        other: &StatisticalObject,
        policy: ops::UnionPolicy,
    ) -> Result<StatisticalObject> {
        ops::s_union(self, other, policy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dimension::Dimension;
    use crate::hierarchy::Hierarchy;
    use crate::measure::{MeasureKind, SummaryAttribute};
    use crate::schema::Schema;

    fn retail() -> StatisticalObject {
        let location = Hierarchy::builder("store location")
            .level("store")
            .level("city")
            .edge("seattle/s#1", "seattle")
            .edge("seattle/s#2", "seattle")
            .edge("portland/s#1", "portland")
            .build()
            .unwrap();
        let schema = Schema::builder("Quantity Sold")
            .dimension(Dimension::categorical("product", ["banana", "milk"]))
            .dimension(Dimension::classified("store", location))
            .dimension(Dimension::temporal("day", ["nov-13", "nov-14"]))
            .measure(SummaryAttribute::new("quantity sold", MeasureKind::Flow).with_unit("dollars"))
            .build()
            .unwrap();
        let mut o = StatisticalObject::empty(schema);
        o.insert(&["banana", "seattle/s#1", "nov-13"], 56.0).unwrap();
        o.insert(&["banana", "seattle/s#2", "nov-13"], 44.0).unwrap();
        o.insert(&["milk", "seattle/s#1", "nov-14"], 10.0).unwrap();
        o.insert(&["milk", "portland/s#1", "nov-13"], 7.0).unwrap();
        o
    }

    #[test]
    fn slice_fix_drops_dimension_and_records_context() {
        let o = retail();
        let bananas = slice_at(&o, "product", "banana").unwrap();
        assert_eq!(bananas.schema().dim_count(), 2);
        assert_eq!(bananas.schema().context(), &[("product".to_owned(), "banana".to_owned())]);
        assert_eq!(bananas.get(&["seattle/s#1", "nov-13"]).unwrap(), Some(56.0));
        assert_eq!(bananas.grand_total(0), Some(100.0));
    }

    #[test]
    fn slice_sum_equals_s_project() {
        let o = retail();
        let a = slice_sum(&o, "product").unwrap();
        let b = ops::s_project(&o, "product").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn dice_selects_subranges() {
        let o = retail();
        let d =
            dice(&o, &[("product", &["milk"][..]), ("day", &["nov-13", "nov-14"][..])]).unwrap();
        assert_eq!(d.cell_count(), 2);
        assert_eq!(d.grand_total(0), Some(17.0));
    }

    #[test]
    fn roll_up_to_city() {
        let o = retail();
        let by_city = roll_up(&o, "store", "city").unwrap();
        assert_eq!(by_city.get(&["banana", "seattle", "nov-13"]).unwrap(), Some(100.0));
        assert_eq!(by_city.get(&["milk", "portland", "nov-13"]).unwrap(), Some(7.0));
    }

    #[test]
    fn methods_mirror_free_functions() {
        let o = retail();
        assert_eq!(o.select("product", &["milk"]).unwrap().cell_count(), 2);
        assert_eq!(o.roll_up("store", "city").unwrap(), roll_up(&o, "store", "city").unwrap());
        assert_eq!(o.slice("day", "nov-13").unwrap().schema().dim_count(), 2);
        assert_eq!(o.project("product").unwrap().schema().dim_count(), 2);
    }

    #[test]
    fn successive_slices_accumulate_context() {
        let o = retail();
        let s = o.slice("product", "banana").unwrap().slice("day", "nov-13").unwrap();
        assert_eq!(s.schema().context().len(), 2);
        assert_eq!(s.schema().dim_count(), 1);
        assert_eq!(s.grand_total(0), Some(100.0));
    }
}
