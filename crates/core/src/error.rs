//! Error types shared across the workspace.

use std::fmt;

/// Convenience alias used throughout the crate.
pub type Result<T, E = Error> = std::result::Result<T, E>;

/// Why an aggregation would produce statistically wrong results if carried
/// out (the *summarizability* conditions of §3.3.2 / \[LS97\]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// A member of the classification hierarchy has more than one parent
    /// (e.g. a physician with two specialties), so additive aggregation
    /// would double-count it.
    NonStrictHierarchy {
        /// Dimension whose hierarchy is non-strict.
        dimension: String,
        /// Lower level of the offending edge set.
        level: String,
        /// A witness member that has multiple parents.
        member: String,
    },
    /// The hierarchy edge set was declared incomplete relative to the
    /// measure (e.g. cities do not cover the whole state population), so
    /// parent totals derived from children would under-report.
    IncompleteHierarchy {
        /// Dimension whose hierarchy is incomplete.
        dimension: String,
        /// Lower level of the incomplete edge set.
        level: String,
    },
    /// A member of the lower level has no parent at all, so it would be
    /// silently dropped by a roll-up.
    UncoveredMember {
        /// Dimension whose hierarchy fails to cover.
        dimension: String,
        /// Lower level of the offending edge set.
        level: String,
        /// A witness member with no parent.
        member: String,
    },
    /// Summing a *stock* measure (population, inventory level) over a
    /// temporal dimension is meaningless ("adding populations over months").
    TemporalStock {
        /// The stock measure.
        measure: String,
        /// The temporal dimension being aggregated away.
        dimension: String,
    },
    /// A value-per-unit measure (price, rate) is not additive over any
    /// dimension.
    NonAdditiveMeasure {
        /// The value-per-unit measure.
        measure: String,
        /// The dimension being aggregated away.
        dimension: String,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::NonStrictHierarchy { dimension, level, member } => write!(
                f,
                "non-strict hierarchy on dimension `{dimension}`: member `{member}` at level \
                 `{level}` has multiple parents (additive aggregation would double-count)"
            ),
            Violation::IncompleteHierarchy { dimension, level } => write!(
                f,
                "hierarchy on dimension `{dimension}` is declared incomplete above level \
                 `{level}` (parent totals would under-report)"
            ),
            Violation::UncoveredMember { dimension, level, member } => write!(
                f,
                "member `{member}` at level `{level}` of dimension `{dimension}` has no parent \
                 (it would be dropped by a roll-up)"
            ),
            Violation::TemporalStock { measure, dimension } => write!(
                f,
                "measure `{measure}` is a stock; summing it over temporal dimension \
                 `{dimension}` is not meaningful"
            ),
            Violation::NonAdditiveMeasure { measure, dimension } => write!(
                f,
                "measure `{measure}` is a value-per-unit; it is not additive over dimension \
                 `{dimension}`"
            ),
        }
    }
}

/// Errors produced by the statistical object model and operator algebra.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// A named dimension does not exist in the schema.
    DimensionNotFound(String),
    /// A named hierarchy level does not exist.
    LevelNotFound {
        /// Hierarchy searched.
        hierarchy: String,
        /// Missing level name.
        level: String,
    },
    /// A named classification hierarchy does not exist on the dimension.
    HierarchyNotFound {
        /// Dimension searched.
        dimension: String,
        /// Missing hierarchy name.
        hierarchy: String,
    },
    /// A category value is not a member of the dimension's domain.
    UnknownMember {
        /// Dimension searched.
        dimension: String,
        /// The unknown category value.
        member: String,
    },
    /// A named summary measure does not exist in the schema.
    MeasureNotFound(String),
    /// A coordinate or value vector had the wrong arity.
    ArityMismatch {
        /// Expected length.
        expected: usize,
        /// Provided length.
        got: usize,
    },
    /// Two objects cannot be combined because their schemas differ.
    SchemaMismatch(String),
    /// The requested aggregation would violate summarizability; each
    /// violation explains one independent reason.
    Summarizability(Vec<Violation>),
    /// Overlapping cells disagreed during an `S-union` with the
    /// `ErrorOnConflict` policy.
    UnionConflict {
        /// Rendered member names of the conflicting cell.
        coordinates: String,
    },
    /// A schema or hierarchy was structurally invalid at build time.
    InvalidSchema(String),
    /// An operation needed a single-measure object but got several.
    MultipleMeasures(usize),
    /// Disaggregation weights were missing or did not normalize.
    InvalidProxy(String),
    /// A micro-data operation referenced a missing or mistyped column.
    ColumnError(String),
    /// A stored page's CRC32 did not match the checksum recorded when the
    /// page was written — the data is corrupt and must not be served.
    ChecksumMismatch {
        /// Name of the stored object (file, cuboid, store) that failed.
        object: String,
        /// Zero-based page index within the object.
        page: u64,
    },
    /// A transient fault persisted through every allowed retry attempt.
    RetriesExhausted {
        /// Name of the stored object being read.
        object: String,
        /// Zero-based page index within the object.
        page: u64,
        /// Number of read attempts made (initial try + retries).
        attempts: u32,
    },
    /// Every materialized source that could answer the query — down to and
    /// including the base cuboid — failed verification, so not even a
    /// degraded answer is possible.
    NoHealthySource {
        /// Bit mask of the cuboid that was requested.
        requested: u32,
        /// Number of candidate sources that were tried and failed.
        tried: usize,
    },
    /// A write-ahead journal append flushed only a prefix of the record
    /// (torn write on the log device). The batch was **not** acknowledged
    /// and was not applied; the torn tail is truncated before the journal
    /// is used again.
    JournalTornAppend {
        /// Sequence number the torn record would have taken.
        seq: u64,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::DimensionNotFound(d) => write!(f, "dimension `{d}` not found"),
            Error::LevelNotFound { hierarchy, level } => {
                write!(f, "level `{level}` not found in hierarchy `{hierarchy}`")
            }
            Error::HierarchyNotFound { dimension, hierarchy } => {
                write!(f, "hierarchy `{hierarchy}` not found on dimension `{dimension}`")
            }
            Error::UnknownMember { dimension, member } => {
                write!(f, "`{member}` is not a member of dimension `{dimension}`")
            }
            Error::MeasureNotFound(m) => write!(f, "measure `{m}` not found"),
            Error::ArityMismatch { expected, got } => {
                write!(f, "expected {expected} values, got {got}")
            }
            Error::SchemaMismatch(why) => write!(f, "schema mismatch: {why}"),
            Error::Summarizability(vs) => {
                write!(f, "aggregation is not summarizable: ")?;
                for (i, v) in vs.iter().enumerate() {
                    if i > 0 {
                        write!(f, "; ")?;
                    }
                    write!(f, "{v}")?;
                }
                Ok(())
            }
            Error::UnionConflict { coordinates } => {
                write!(f, "S-union conflict at {coordinates}")
            }
            Error::InvalidSchema(why) => write!(f, "invalid schema: {why}"),
            Error::MultipleMeasures(n) => {
                write!(f, "operation requires a single measure but the object has {n}")
            }
            Error::InvalidProxy(why) => write!(f, "invalid disaggregation proxy: {why}"),
            Error::ColumnError(why) => write!(f, "column error: {why}"),
            Error::ChecksumMismatch { object, page } => {
                write!(f, "checksum mismatch in `{object}` page {page}: stored data is corrupt")
            }
            Error::RetriesExhausted { object, page, attempts } => {
                write!(f, "read of `{object}` page {page} still failing after {attempts} attempts")
            }
            Error::NoHealthySource { requested, tried } => write!(
                f,
                "no healthy materialized source for cuboid mask {requested:#b} \
                 ({tried} candidates failed verification, including the base cuboid)"
            ),
            Error::JournalTornAppend { seq } => write!(
                f,
                "journal append of record {seq} tore on the log device: \
                 the batch was not acknowledged and was not applied"
            ),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn violation_display_mentions_witness() {
        let v = Violation::NonStrictHierarchy {
            dimension: "specialty".into(),
            level: "specialty".into(),
            member: "dr. smith".into(),
        };
        let s = v.to_string();
        assert!(s.contains("specialty"));
        assert!(s.contains("dr. smith"));
        assert!(s.contains("double-count"));
    }

    #[test]
    fn error_display_joins_violations() {
        let e = Error::Summarizability(vec![
            Violation::IncompleteHierarchy { dimension: "geo".into(), level: "city".into() },
            Violation::TemporalStock { measure: "population".into(), dimension: "year".into() },
        ]);
        let s = e.to_string();
        assert!(s.contains("geo"));
        assert!(s.contains("population"));
        assert!(s.contains("; "));
    }

    #[test]
    fn fault_variants_display() {
        let e = Error::ChecksumMismatch { object: "cuboid:0b101".into(), page: 7 };
        let s = e.to_string();
        assert!(s.contains("cuboid:0b101") && s.contains("page 7") && s.contains("corrupt"));

        let e = Error::RetriesExhausted { object: "facts".into(), page: 3, attempts: 4 };
        let s = e.to_string();
        assert!(s.contains("facts") && s.contains("4 attempts"));

        let e = Error::NoHealthySource { requested: 0b011, tried: 5 };
        let s = e.to_string();
        assert!(s.contains("0b11") && s.contains("5 candidates"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&Error::DimensionNotFound("x".into()));
    }
}
