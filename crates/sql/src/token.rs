//! Tokenizer for the query dialect.

use std::fmt;

use statcube_core::error::{Error, Result};

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// A keyword or bare identifier (case-preserved; keyword matching is
    /// case-insensitive).
    Ident(String),
    /// A single-quoted string literal (quotes stripped, `''` unescaped).
    Str(String),
    /// A numeric literal.
    Number(f64),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `=`
    Eq,
    /// `<>` or `!=`
    Ne,
    /// `*`
    Star,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::Str(s) => write!(f, "'{s}'"),
            Token::Number(n) => write!(f, "{n}"),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::Comma => write!(f, ","),
            Token::Eq => write!(f, "="),
            Token::Ne => write!(f, "<>"),
            Token::Star => write!(f, "*"),
        }
    }
}

impl Token {
    /// True if this is the given keyword (case-insensitive).
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, Token::Ident(s) if s.eq_ignore_ascii_case(kw))
    }
}

/// Tokenizes `input`. Identifiers may be bare (`sex`, `quantity_sold`) or
/// double-quoted (`"quantity sold"`).
pub fn tokenize(input: &str) -> Result<Vec<Token>> {
    let mut out = Vec::new();
    let mut chars = input.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            c if c.is_whitespace() => {
                chars.next();
            }
            '(' => {
                chars.next();
                out.push(Token::LParen);
            }
            ')' => {
                chars.next();
                out.push(Token::RParen);
            }
            ',' => {
                chars.next();
                out.push(Token::Comma);
            }
            '=' => {
                chars.next();
                out.push(Token::Eq);
            }
            '*' => {
                chars.next();
                out.push(Token::Star);
            }
            '<' => {
                chars.next();
                if chars.peek() == Some(&'>') {
                    chars.next();
                    out.push(Token::Ne);
                } else {
                    return Err(Error::InvalidSchema("unsupported operator `<`".into()));
                }
            }
            '!' => {
                chars.next();
                if chars.peek() == Some(&'=') {
                    chars.next();
                    out.push(Token::Ne);
                } else {
                    return Err(Error::InvalidSchema("unsupported operator `!`".into()));
                }
            }
            '\'' => {
                chars.next();
                let mut s = String::new();
                loop {
                    match chars.next() {
                        Some('\'') => {
                            if chars.peek() == Some(&'\'') {
                                chars.next();
                                s.push('\'');
                            } else {
                                break;
                            }
                        }
                        Some(c) => s.push(c),
                        None => {
                            return Err(Error::InvalidSchema("unterminated string literal".into()))
                        }
                    }
                }
                out.push(Token::Str(s));
            }
            '"' => {
                chars.next();
                let mut s = String::new();
                loop {
                    match chars.next() {
                        Some('"') => break,
                        Some(c) => s.push(c),
                        None => {
                            return Err(Error::InvalidSchema(
                                "unterminated quoted identifier".into(),
                            ))
                        }
                    }
                }
                out.push(Token::Ident(s));
            }
            c if c.is_ascii_digit() || c == '-' => {
                let mut s = String::new();
                s.push(c);
                chars.next();
                while let Some(&d) = chars.peek() {
                    if d.is_ascii_digit() || d == '.' || d == '_' {
                        if d != '_' {
                            s.push(d);
                        }
                        chars.next();
                    } else {
                        break;
                    }
                }
                let n: f64 =
                    s.parse().map_err(|_| Error::InvalidSchema(format!("bad number `{s}`")))?;
                out.push(Token::Number(n));
            }
            c if c.is_alphanumeric() || c == '_' => {
                let mut s = String::new();
                while let Some(&d) = chars.peek() {
                    if d.is_alphanumeric() || d == '_' {
                        s.push(d);
                        chars.next();
                    } else {
                        break;
                    }
                }
                out.push(Token::Ident(s));
            }
            other => return Err(Error::InvalidSchema(format!("unexpected character `{other}`"))),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_a_cube_query() {
        let toks = tokenize(
            "SELECT SUM(\"quantity sold\") FROM sales WHERE product = 'banana' \
             GROUP BY CUBE(store, day)",
        )
        .unwrap();
        assert!(toks.iter().any(|t| t.is_kw("cube")));
        assert!(toks.contains(&Token::Str("banana".into())));
        assert!(toks.contains(&Token::Ident("quantity sold".into())));
        assert_eq!(toks.iter().filter(|t| **t == Token::LParen).count(), 2);
    }

    #[test]
    fn string_escaping_and_numbers() {
        let toks = tokenize("'o''brien' 42 -3.5 1_000").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Str("o'brien".into()),
                Token::Number(42.0),
                Token::Number(-3.5),
                Token::Number(1000.0),
            ]
        );
    }

    #[test]
    fn operators() {
        assert_eq!(tokenize("a <> b").unwrap()[1], Token::Ne);
        assert_eq!(tokenize("a != b").unwrap()[1], Token::Ne);
        assert_eq!(tokenize("count(*)").unwrap()[2], Token::Star);
        assert!(tokenize("a < b").is_err());
        assert!(tokenize("a ! b").is_err());
        assert!(tokenize("'open").is_err());
        assert!(tokenize("\"open").is_err());
        assert!(tokenize("a ; b").is_err());
    }

    #[test]
    fn keyword_matching_is_case_insensitive() {
        let toks = tokenize("select Select SELECT").unwrap();
        assert!(toks.iter().all(|t| t.is_kw("select")));
    }
}
