//! Physical execution: SQL queries routed through the cube engine and the
//! checksummed page store, with an `EXPLAIN ANALYZE` profile.
//!
//! [`exec::execute`] evaluates queries directly over the in-memory
//! statistical algebra — correct, but it exercises none of the machinery
//! §6 of the paper is about: materialized cuboids, verified page I/O,
//! lattice routing. This module is the *physical* counterpart, built on
//! the same plan layer: the query compiles to the shared logical plan
//! ([`exec::plan_of_query`]), the planner validates it, the object's
//! populated cells become a fact table ([`FactInput::from_object`]), the
//! plan is **retargeted** onto the sealed [`ViewStore`]'s catalog (the
//! lattice pass re-runs against real materialized views), and the one
//! workspace executor answers every grouping set — so a single `GROUP BY
//! CUBE` query yields a [`QueryProfile`] whose span tree crosses all three
//! layers (sql parse and plan, cube answers with lattice-fallback
//! provenance, storage page reads with retry counts).
//!
//! ## Semantics caveat (macro-data aggregates)
//!
//! The fact table holds one fact per populated *cell*, valued at the
//! cell's `sum` — the object's macro-data grain. `SUM` therefore agrees
//! exactly with the algebraic executor, but `COUNT(*)` counts populated
//! cells (not the micro records a cell may summarize), and `MIN`/`MAX`/
//! `AVG` range over cell sums. For objects built from one record per cell
//! the two executors agree on everything.
//!
//! ## Cached execution
//!
//! [`execute_physical`] rebuilds the fact table and seals a fresh store
//! per query — the right shape for one-shot queries, wasteful for a
//! serving workload that asks many queries of one object.
//! [`CachedSession`] builds the [`SharedViewStore`] **once** and answers
//! every subsequent query through its cost-aware cache, so repeated
//! grouping sets hit instead of rescanning sealed pages. `WHERE` filters
//! are pushed into the store scan by the planner (the executor derives
//! while filtering, and skips the cache so filtered derivations never
//! pollute unfiltered keys). Only plans that *rewrite the object itself* —
//! hierarchy-level groupings, or leaf predicates when pushdown is disabled
//! — bypass the session store and take the uncached path.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use statcube_core::error::{Error, Result};
use statcube_core::object::StatisticalObject;
use statcube_core::plan::{self, GroupLabels, PlannedQuery, Planner, PlannerConfig, PrivacyPolicy};
use statcube_core::trace::{self, QueryProfile};
use statcube_cube::cache::{CacheConfig, CacheStats};
use statcube_cube::input::FactInput;
use statcube_cube::query::ViewStore;
use statcube_cube::sharded::{ShardRouter, ShardedViewStore};
use statcube_cube::shared::SharedViewStore;

use crate::ast::Query;
use crate::exec::{self, ResultSet};

/// A physically executed query: the result plus its profile, the
/// degraded-answer count (non-zero when sealed views failed verification
/// and answers detoured through healthy ancestors), and — for
/// [`CachedSession`] execution — where the grouping-set answers came from.
#[derive(Debug)]
pub struct PhysicalAnswer {
    /// The query result, same shape as [`exec::execute`] produces. Shared:
    /// a [`CachedSession`] replaying memoized rows hands out another handle
    /// to the same rendering instead of re-materializing it.
    pub result: Arc<ResultSet>,
    /// The cross-layer span tree. Present only when [`trace`] was enabled
    /// and this query was the calling thread's outermost traced unit of
    /// work.
    pub profile: Option<QueryProfile>,
    /// Grouping-set answers that were served from a fallback ancestor.
    pub degraded_answers: u64,
    /// Grouping-set answers served from the session cache (always 0 on the
    /// uncached [`execute_physical`] path).
    pub cache_hits: u64,
    /// Grouping-set answers that missed the session cache and were derived
    /// from sealed pages (always 0 on the uncached path).
    pub cache_misses: u64,
    /// True when a [`CachedSession`] query bypassed the session store
    /// because its plan rewrites the object (level groupings, or leaf
    /// predicates under disabled pushdown).
    pub bypassed_cache: bool,
    /// Source cells scanned to derive the grouping sets (0 for sets served
    /// from the cache) — the lattice pass's cost metric.
    pub cells_scanned: u64,
}

/// Executes a parsed query through the cube engine and page store.
///
/// The object must have exactly one measure (the [`FactInput`] contract);
/// see the module docs for the macro-data aggregate semantics.
pub fn execute_physical(obj: &StatisticalObject, query: &Query) -> Result<PhysicalAnswer> {
    execute_physical_with_options(obj, query, &PrivacyPolicy::none(), PlannerConfig::default())
}

/// [`execute_physical`] with an explicit privacy policy and planner
/// configuration (the config switches exist for the E26 rewrite-ablation
/// experiment; production callers keep the default).
pub fn execute_physical_with_options(
    obj: &StatisticalObject,
    query: &Query,
    policy: &PrivacyPolicy,
    config: PlannerConfig,
) -> Result<PhysicalAnswer> {
    let mut root = trace::span("sql.execute");
    root.note("physical");
    trace::counter("sql.queries", 1);
    trace::counter("sql.physical_queries", 1);
    let attach_profile = root.is_root();
    if query.select.is_empty() {
        return Err(Error::InvalidSchema("empty SELECT list".into()));
    }
    let display_dims: Vec<String> = query.grouping.dims().to_vec();

    // Plan against the object's schema: name resolution, summarizability,
    // predicate placement, the mandatory privacy barrier.
    let plan_span = trace::span("sql.plan");
    let mut planned = Planner::for_object(obj.schema())
        .with_policy(policy.clone())
        .with_config(config)
        .plan(&exec::plan_of_query(query))?;
    // FactInput carries a single measure; every aggregate must target it.
    if planned.aggs.iter().any(|a| a.measure != 0) || obj.schema().measures().len() != 1 {
        return Err(Error::MultipleMeasures(obj.schema().measures().len()));
    }
    // Leaf program: filters and level roll-ups apply before the facts are
    // extracted — the sealed store then holds the rewritten object.
    let leaf = exec::apply_leaf_program(obj, &planned)?;
    let label_schema = leaf.schema().clone();
    drop(plan_span);

    // Materialize: cells → facts, facts → sealed base cuboid. (Only the
    // base view is materialized; every grouping set routes through it, the
    // §6.3 one-view degenerate case. The point here is the *path*, not the
    // view-selection policy — exp20/exp21 cover that.) The lattice pass
    // re-runs against the store's real catalog.
    let facts = FactInput::from_object(&leaf)?;
    let store = ViewStore::build(&facts, &[])?;
    planned.retarget(store.lattice().dim_count(), &store.catalog(), config.lattice);

    // One executor answers every grouping set from the sealed store.
    let mut eval_span = trace::span("sql.eval");
    let executed = plan::execute(&planned, &store)?;
    let degraded_answers = executed.degraded_answers() as u64;
    let cells_scanned = executed.cells_scanned();
    let rows = exec::rows_from_plan(&planned, &executed, &label_schema)?;
    eval_span.record("grouping_sets", planned.sets.len() as u64);
    eval_span.record("rows", rows.len() as u64);
    drop(eval_span);
    root.record("rows", rows.len() as u64);
    if degraded_answers > 0 {
        root.note(format!("{degraded_answers} degraded answer(s)"));
    }
    drop(root);

    let result = Arc::new(ResultSet {
        group_columns: display_dims,
        agg_columns: query.select.iter().map(|a| a.to_sql()).collect(),
        rows,
    });
    let profile = if attach_profile { Some(trace::take_profile()) } else { None };
    Ok(PhysicalAnswer {
        result,
        profile,
        degraded_answers,
        cache_hits: 0,
        cache_misses: 0,
        bypassed_cache: false,
        cells_scanned,
    })
}

/// Parses and physically executes in one step, keeping the tokenize and
/// parse spans inside the query's profile.
pub fn execute_physical_str(obj: &StatisticalObject, sql: &str) -> Result<PhysicalAnswer> {
    let mut root = trace::span("sql.query");
    let attach_profile = root.is_root();
    let query = crate::parser::parse(sql)?;
    let mut ans = execute_physical(obj, &query)?;
    root.record("rows", ans.result.rows.len() as u64);
    drop(root);
    if attach_profile {
        ans.profile = Some(trace::take_profile());
    }
    Ok(ans)
}

/// A serving-layer SQL session: one object, one [`SharedViewStore`], many
/// queries. The store (base cuboid plus any `selected` views) is built and
/// sealed once at construction; each [`CachedSession::execute`] plans
/// against the store's catalog and answers its grouping sets through the
/// store's cost-aware cache, so repeated queries hit instead of rebuilding
/// and rescanning.
///
/// The session is `Sync`: clones of the inner store are cheap and the
/// session itself can be shared across reader threads by reference.
///
/// `WHERE` filters are pushed into the store scan by the planner: the
/// executor derives the grouping sets while filtering, skipping the cache
/// for those sets (a filtered derivation cached under an unfiltered key
/// would corrupt later answers). Only queries that rewrite the object
/// itself — hierarchy-level groupings, or leaf predicates when pushdown is
/// disabled — bypass the session store and run the uncached
/// [`execute_physical`] path against the session's object
/// ([`PhysicalAnswer::bypassed_cache`] is set).
#[derive(Debug)]
pub struct CachedSession {
    obj: StatisticalObject,
    store: SharedViewStore,
    policy: PrivacyPolicy,
    config: PlannerConfig,
    /// Plan cache, keyed by the parsed query. Entries are generation-pinned
    /// (see [`CachedPlan`]) and the builder methods that change plan
    /// semantics ([`CachedSession::with_policy`],
    /// [`CachedSession::with_planner_config`]) clear it.
    plans: Mutex<HashMap<Query, Arc<CachedPlan>>>,
}

/// One planned query, pinned to the store publication generation it was
/// planned against. Replaying it skips the planner (name resolution,
/// summarizability, rewrite passes) and the label-table resolution on every
/// repeat of the same SQL text.
#[derive(Debug)]
struct CachedPlan {
    /// [`SharedViewStore::generation`] at plan time; a published delta
    /// bumps it and orphans the entry (the catalog's view sizes moved, so
    /// routing must re-run).
    generation: u64,
    planned: Arc<PlannedQuery>,
    labels: Arc<GroupLabels>,
    agg_columns: Vec<String>,
    /// Memoized row rendering from the last execution of this plan (see
    /// [`RenderedRows`]); replayed when every grouping-set answer is the
    /// same block by identity.
    rendered: Mutex<Option<RenderedRows>>,
}

/// The rendered rows of one plan execution, keyed by the identity of the
/// post-enforcement answer blocks they were rendered from. Rows are a pure
/// function of (plan, label tables, blocks), and the session's answer
/// cache serves repeats as handles to the *same* immutable blocks — so
/// pointer equality on every set proves the rendering is still exact, and
/// holding the `Arc`s pins the allocations against address reuse. Any
/// fresh derivation (filtered sets, evicted entries, a policy that copied
/// on write) fails the identity check and re-renders.
#[derive(Debug)]
struct RenderedRows {
    blocks: Vec<Arc<plan::CellBlock>>,
    result: Arc<ResultSet>,
}

/// Poison-proof lock on a plan's memoized rendering.
fn rendered_lock(
    m: &Mutex<Option<RenderedRows>>,
) -> std::sync::MutexGuard<'_, Option<RenderedRows>> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

impl CachedSession {
    /// Builds a session over `obj` (single measure required) with the base
    /// cuboid materialized, fronted by a cache sized by `config`.
    pub fn new(obj: &StatisticalObject, config: CacheConfig) -> Result<Self> {
        Self::with_views(obj, &[], config)
    }

    /// [`CachedSession::new`], additionally materializing `selected` view
    /// masks (over the object's dimension order) for lattice routing.
    pub fn with_views(
        obj: &StatisticalObject,
        selected: &[u32],
        config: CacheConfig,
    ) -> Result<Self> {
        if obj.schema().measures().len() != 1 {
            return Err(Error::MultipleMeasures(obj.schema().measures().len()));
        }
        let facts = FactInput::from_object(obj)?;
        let store = SharedViewStore::build(&facts, selected, config)?;
        Ok(Self {
            obj: obj.clone(),
            store,
            policy: PrivacyPolicy::none(),
            config: PlannerConfig::default(),
            plans: Mutex::new(HashMap::new()),
        })
    }

    fn plans_lock(&self) -> std::sync::MutexGuard<'_, HashMap<Query, Arc<CachedPlan>>> {
        self.plans.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Sets the privacy policy every session query is planned with. The
    /// session cache partitions on the policy fingerprint, so answers
    /// enforced under one policy are never replayed under another.
    #[must_use]
    pub fn with_policy(mut self, policy: PrivacyPolicy) -> Self {
        self.policy = policy;
        self.plans_lock().clear();
        self
    }

    /// Overrides the planner's rewrite-pass switches (E26 ablations only).
    #[must_use]
    pub fn with_planner_config(mut self, config: PlannerConfig) -> Self {
        self.config = config;
        self.plans_lock().clear();
        self
    }

    /// The object the session serves.
    pub fn object(&self) -> &StatisticalObject {
        &self.obj
    }

    /// The shared store behind the session (for fault injection, scrubbing,
    /// or handing clones to other threads).
    pub fn store(&self) -> &SharedViewStore {
        &self.store
    }

    /// Cache counters accumulated by the session store.
    pub fn cache_stats(&self) -> CacheStats {
        self.store.cache_stats()
    }

    /// Executes a parsed query through the session store's cache.
    pub fn execute(&self, query: &Query) -> Result<PhysicalAnswer> {
        // Plans that rewrite the object itself evaluate a different cube
        // than the sealed one: route them to the uncached path. (Pushed-
        // down WHERE filters are served by the store; level groupings — a
        // group name that is no schema dimension — are not.)
        let rewrites =
            query.grouping.dims().iter().any(|d| self.obj.schema().dim_index(d).is_err())
                || (!self.config.pushdown && !query.filters.is_empty());
        if rewrites {
            trace::counter("sql.cache_bypass", 1);
            let mut ans =
                execute_physical_with_options(&self.obj, query, &self.policy, self.config)?;
            ans.bypassed_cache = true;
            return Ok(ans);
        }

        let mut root = trace::span("sql.execute");
        root.note("cached");
        trace::counter("sql.queries", 1);
        trace::counter("sql.cached_queries", 1);
        let attach_profile = root.is_root();
        if query.select.is_empty() {
            return Err(Error::InvalidSchema("empty SELECT list".into()));
        }
        let display_dims: Vec<String> = query.grouping.dims().to_vec();

        // Plan against the store's materialized catalog: the lattice pass
        // routes each set to its cheapest ancestor, pushdown moves WHERE
        // into the store scan. A generation-pinned plan cache replays the
        // planned query (and its resolved label tables) on repeats; a
        // published delta bumps the generation and forces a re-plan, since
        // the catalog's measured view sizes — the routing input — moved.
        let src = self.store.plan_source();
        let plan_span = trace::span("sql.plan");
        let generation = self.store.generation();
        let cached =
            self.plans_lock().get(query).filter(|e| e.generation == generation).map(Arc::clone);
        let entry = match cached {
            Some(entry) => entry,
            None => {
                let catalog = src.catalog();
                let planned = Planner::for_store(src.dim_count(), &catalog)
                    .with_schema(self.obj.schema())
                    .with_policy(self.policy.clone())
                    .with_config(self.config)
                    .plan(&exec::plan_of_query(query))?;
                if planned.aggs.iter().any(|a| a.measure != 0)
                    || self.obj.schema().measures().len() != 1
                {
                    return Err(Error::MultipleMeasures(self.obj.schema().measures().len()));
                }
                let labels = Arc::new(plan::group_labels(&planned, self.obj.schema())?);
                let entry = Arc::new(CachedPlan {
                    generation,
                    planned: Arc::new(planned),
                    labels,
                    agg_columns: query.select.iter().map(|a| a.to_sql()).collect(),
                    rendered: Mutex::new(None),
                });
                self.plans_lock().insert(query.clone(), Arc::clone(&entry));
                entry
            }
        };
        let planned = &*entry.planned;
        drop(plan_span);

        let mut eval_span = trace::span("sql.eval");
        let executed = plan::execute(planned, &src)?;
        let cache_hits = executed.cache_hits() as u64;
        let cache_misses = planned.sets.len() as u64 - cache_hits;
        let degraded_answers = executed.degraded_answers() as u64;
        let cells_scanned = executed.cells_scanned();
        // Replay the memoized rendering when every answer is the same block
        // by identity (see [`RenderedRows`]); otherwise render and memoize.
        let memo = {
            let guard = rendered_lock(&entry.rendered);
            guard
                .as_ref()
                .filter(|r| {
                    r.blocks.len() == executed.sets.len()
                        && r.blocks
                            .iter()
                            .zip(&executed.sets)
                            .all(|(b, s)| Arc::ptr_eq(b, &s.cells))
                })
                .map(|r| Arc::clone(&r.result))
        };
        let replayed = memo.is_some();
        let result = match memo {
            Some(result) => result,
            None => {
                let rows = exec::rows_from_plan_with_labels(planned, &executed, &entry.labels)?;
                let result = Arc::new(ResultSet {
                    group_columns: display_dims,
                    agg_columns: entry.agg_columns.clone(),
                    rows,
                });
                *rendered_lock(&entry.rendered) = Some(RenderedRows {
                    blocks: executed.sets.iter().map(|s| Arc::clone(&s.cells)).collect(),
                    result: Arc::clone(&result),
                });
                result
            }
        };
        if replayed {
            trace::counter("sql.rendered_replays", 1);
        }
        eval_span.record("grouping_sets", planned.sets.len() as u64);
        eval_span.record("rows", result.rows.len() as u64);
        eval_span.record("cache_hits", cache_hits);
        drop(eval_span);
        root.record("rows", result.rows.len() as u64);
        if degraded_answers > 0 {
            root.note(format!("{degraded_answers} degraded answer(s)"));
        }
        drop(root);
        let profile = if attach_profile { Some(trace::take_profile()) } else { None };
        Ok(PhysicalAnswer {
            result,
            profile,
            degraded_answers,
            cache_hits,
            cache_misses,
            bypassed_cache: false,
            cells_scanned,
        })
    }

    /// Parses and executes in one step (see [`CachedSession::execute`]).
    pub fn execute_str(&self, sql: &str) -> Result<PhysicalAnswer> {
        let mut root = trace::span("sql.query");
        let attach_profile = root.is_root();
        let query = crate::parser::parse(sql)?;
        let mut ans = self.execute(&query)?;
        root.record("rows", ans.result.rows.len() as u64);
        drop(root);
        if attach_profile {
            ans.profile = Some(trace::take_profile());
        }
        Ok(ans)
    }
}

/// A sharded SQL answer: the ordinary [`PhysicalAnswer`] plus the shard
/// bookkeeping — when [`ShardedPhysicalAnswer::is_partial`], the rows
/// cover only the surviving shards and `missing_shards` names the rest.
#[derive(Debug)]
pub struct ShardedPhysicalAnswer {
    /// The merged result and its counters.
    pub answer: PhysicalAnswer,
    /// How many shards the query was scattered to.
    pub shard_count: usize,
    /// Bit `i` set ⇔ shard `i` contributed nothing to the rows.
    pub missing_shards: u32,
}

impl ShardedPhysicalAnswer {
    /// True when at least one shard is missing from the rows.
    pub fn is_partial(&self) -> bool {
        self.missing_shards != 0
    }
}

/// [`CachedSession`]'s scatter-gather sibling: one object partitioned
/// across a [`ShardedViewStore`], many queries. Each query compiles once
/// per shard (the per-shard catalogs differ in measured view sizes, so
/// routing runs per shard), scatters as pre-enforcement partials, merges
/// through the plan-layer monoid, and enforces the session policy once on
/// the merged cells — never per shard. The per-shard plan vector is
/// cached keyed by the summed shard generation, exactly as
/// [`CachedSession`] pins plans to one store's generation.
///
/// A dead shard surfaces as a *partial* result
/// ([`ShardedPhysicalAnswer::missing_shards`]), not an error — the SQL
/// face of the cube layer's degraded-answer contract.
#[derive(Debug)]
pub struct ShardedSession {
    obj: StatisticalObject,
    store: ShardedViewStore,
    policy: PrivacyPolicy,
    config: PlannerConfig,
    plans: Mutex<HashMap<Query, Arc<ShardedPlan>>>,
}

/// One query's per-shard physical plans, pinned to the summed shard
/// generation they were planned against (any shard's delta orphans the
/// entry). No rendered-row memoization here: merged blocks are fresh
/// allocations per gather, so the identity replay check can never pass.
#[derive(Debug)]
struct ShardedPlan {
    generation: u64,
    plans: Vec<Arc<PlannedQuery>>,
    labels: Arc<GroupLabels>,
    agg_columns: Vec<String>,
}

impl ShardedSession {
    /// Builds a session partitioning `obj`'s facts by `router` into
    /// `shards` stores, each materializing the base cuboid plus
    /// `selected` views over its own rows.
    pub fn with_views(
        obj: &StatisticalObject,
        selected: &[u32],
        router: ShardRouter,
        shards: usize,
        config: CacheConfig,
    ) -> Result<Self> {
        if obj.schema().measures().len() != 1 {
            return Err(Error::MultipleMeasures(obj.schema().measures().len()));
        }
        let facts = FactInput::from_object(obj)?;
        let store = ShardedViewStore::build(&facts, selected, router, shards, config)?;
        Ok(Self {
            obj: obj.clone(),
            store,
            policy: PrivacyPolicy::none(),
            config: PlannerConfig::default(),
            plans: Mutex::new(HashMap::new()),
        })
    }

    fn plans_lock(&self) -> std::sync::MutexGuard<'_, HashMap<Query, Arc<ShardedPlan>>> {
        self.plans.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Sets the privacy policy — enforced once on merged cells, see the
    /// type docs. Clears the plan cache.
    #[must_use]
    pub fn with_policy(mut self, policy: PrivacyPolicy) -> Self {
        self.policy = policy;
        self.plans_lock().clear();
        self
    }

    /// The sharded store behind the session (chaos hooks, deltas).
    pub fn store(&self) -> &ShardedViewStore {
        &self.store
    }

    /// Executes a parsed query scatter-gather across the shards.
    pub fn execute(&self, query: &Query) -> Result<ShardedPhysicalAnswer> {
        // Plans that rewrite the object evaluate a different cube than the
        // sealed shards: run the uncached single-store path, which is
        // whole-object and therefore never partial.
        let rewrites =
            query.grouping.dims().iter().any(|d| self.obj.schema().dim_index(d).is_err())
                || (!self.config.pushdown && !query.filters.is_empty());
        if rewrites {
            trace::counter("sql.cache_bypass", 1);
            let mut ans =
                execute_physical_with_options(&self.obj, query, &self.policy, self.config)?;
            ans.bypassed_cache = true;
            return Ok(ShardedPhysicalAnswer {
                answer: ans,
                shard_count: self.store.shard_count(),
                missing_shards: 0,
            });
        }

        let mut root = trace::span("sql.execute");
        root.note("sharded");
        trace::counter("sql.queries", 1);
        trace::counter("sql.sharded_queries", 1);
        let attach_profile = root.is_root();
        if query.select.is_empty() {
            return Err(Error::InvalidSchema("empty SELECT list".into()));
        }
        let display_dims: Vec<String> = query.grouping.dims().to_vec();

        let plan_span = trace::span("sql.plan");
        let generation = self.store.generation();
        let cached =
            self.plans_lock().get(query).filter(|e| e.generation == generation).map(Arc::clone);
        let entry = match cached {
            Some(entry) => entry,
            None => {
                let logical = exec::plan_of_query(query);
                let plans = self.store.plan_each(|node| {
                    Planner::for_store(node.dim_count(), &node.catalog())
                        .with_schema(self.obj.schema())
                        .with_policy(self.policy.clone())
                        .with_config(self.config)
                        .plan(&logical)
                })?;
                let first = plans
                    .first()
                    .ok_or_else(|| Error::InvalidSchema("session has no shards".into()))?;
                if first.aggs.iter().any(|a| a.measure != 0)
                    || self.obj.schema().measures().len() != 1
                {
                    return Err(Error::MultipleMeasures(self.obj.schema().measures().len()));
                }
                let labels = Arc::new(plan::group_labels(first, self.obj.schema())?);
                let entry = Arc::new(ShardedPlan {
                    generation,
                    plans,
                    labels,
                    agg_columns: query.select.iter().map(|a| a.to_sql()).collect(),
                });
                self.plans_lock().insert(query.clone(), Arc::clone(&entry));
                entry
            }
        };
        drop(plan_span);

        let mut eval_span = trace::span("sql.eval");
        let (gathered, _failed) = self.store.execute_planned(&entry.plans, &self.policy)?;
        let executed = &gathered.execution;
        let cache_hits = executed.cache_hits() as u64;
        let set_count = entry.plans.first().map_or(0, |p| p.sets.len()) as u64;
        let degraded_answers = executed.degraded_answers() as u64;
        let cells_scanned = executed.cells_scanned();
        // Shard targets and keeps agree by construction, so shard 0's plan
        // renders the merged execution.
        let first = entry
            .plans
            .first()
            .ok_or_else(|| Error::InvalidSchema("session has no shards".into()))?;
        let rows = exec::rows_from_plan_with_labels(first, executed, &entry.labels)?;
        eval_span.record("grouping_sets", set_count);
        eval_span.record("rows", rows.len() as u64);
        eval_span.record("missing_shards", u64::from(gathered.missing_shards));
        drop(eval_span);
        root.record("rows", rows.len() as u64);
        if gathered.is_partial() {
            root.note(format!("partial: missing shards {:?}", gathered.missing_indices()));
        }
        drop(root);

        let result = Arc::new(ResultSet {
            group_columns: display_dims,
            agg_columns: entry.agg_columns.clone(),
            rows,
        });
        let profile = if attach_profile { Some(trace::take_profile()) } else { None };
        Ok(ShardedPhysicalAnswer {
            answer: PhysicalAnswer {
                result,
                profile,
                degraded_answers,
                cache_hits,
                cache_misses: set_count.saturating_sub(cache_hits),
                bypassed_cache: false,
                cells_scanned,
            },
            shard_count: gathered.shard_count,
            missing_shards: gathered.missing_shards,
        })
    }

    /// Parses and executes in one step (see [`ShardedSession::execute`]).
    pub fn execute_str(&self, sql: &str) -> Result<ShardedPhysicalAnswer> {
        let query = crate::parser::parse(sql)?;
        self.execute(&query)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use statcube_core::dimension::Dimension;
    use statcube_core::measure::{MeasureKind, SummaryAttribute, SummaryFunction};
    use statcube_core::schema::Schema;
    use std::sync::Mutex;

    /// Serializes tests that flip the global trace flag.
    static TRACE_LOCK: Mutex<()> = Mutex::new(());

    fn retail() -> StatisticalObject {
        let schema = Schema::builder("sales")
            .dimension(Dimension::categorical("product", ["apple", "pear", "plum"]))
            .dimension(Dimension::categorical("store", ["s1", "s2"]))
            .dimension(Dimension::categorical("month", ["jan", "feb"]))
            .measure(SummaryAttribute::new("amount", MeasureKind::Flow))
            .function(SummaryFunction::Sum)
            .build()
            .unwrap();
        let mut o = StatisticalObject::empty(schema);
        let data: &[(&str, &str, &str, f64)] = &[
            ("apple", "s1", "jan", 10.0),
            ("apple", "s2", "jan", 4.0),
            ("pear", "s1", "feb", 7.0),
            ("pear", "s2", "jan", 3.0),
            ("plum", "s1", "feb", 9.0),
            ("plum", "s2", "feb", 1.0),
        ];
        for (p, s, m, v) in data {
            o.insert(&[p, s, m], *v).unwrap();
        }
        o
    }

    /// A single-measure object with a store → city hierarchy, for
    /// level-grouping (object-rewriting) queries.
    fn shops() -> StatisticalObject {
        use statcube_core::hierarchy::Hierarchy;
        let location = Hierarchy::builder("loc")
            .level("store")
            .level("city")
            .edge("s1", "seattle")
            .edge("s2", "seattle")
            .edge("s3", "portland")
            .build()
            .unwrap();
        let schema = Schema::builder("sales")
            .dimension(Dimension::classified("store", location))
            .dimension(Dimension::categorical("product", ["a", "b"]))
            .measure(SummaryAttribute::new("amount", MeasureKind::Flow))
            .build()
            .unwrap();
        let mut o = StatisticalObject::empty(schema);
        o.insert(&["s1", "a"], 10.0).unwrap();
        o.insert(&["s2", "a"], 5.0).unwrap();
        o.insert(&["s3", "b"], 7.0).unwrap();
        o
    }

    fn row_key(rs: &ResultSet) -> Vec<(Vec<Option<String>>, String)> {
        let mut v: Vec<(Vec<Option<String>>, String)> = rs
            .rows
            .iter()
            .map(|r| {
                let group = r.group.iter().map(|g| g.as_deref().map(str::to_owned)).collect();
                (group, format!("{:?}", r.values))
            })
            .collect();
        v.sort();
        v
    }

    #[test]
    fn physical_cube_matches_algebraic_executor() {
        let o = retail();
        let sql = "SELECT SUM(amount) FROM sales GROUP BY CUBE(product, store)";
        let algebraic = crate::execute_str(&o, sql).unwrap();
        let physical = execute_physical_str(&o, sql).unwrap();
        assert_eq!(physical.result.group_columns, algebraic.group_columns);
        assert_eq!(physical.result.agg_columns, algebraic.agg_columns);
        assert_eq!(physical.degraded_answers, 0);
        assert!(physical.cells_scanned > 0, "derivation scans the sealed base");
        assert_eq!(row_key(&physical.result), row_key(&algebraic));
    }

    #[test]
    fn physical_rollup_where_and_plain_group_by() {
        let o = retail();
        for sql in [
            "SELECT SUM(amount) FROM sales GROUP BY ROLLUP(product, month)",
            "SELECT SUM(amount) FROM sales WHERE store = 's1' GROUP BY month",
            "SELECT SUM(amount) FROM sales",
        ] {
            let algebraic = crate::execute_str(&o, sql).unwrap();
            let physical = execute_physical_str(&o, sql).unwrap();
            let sum = |rs: &ResultSet| rs.rows.iter().filter_map(|r| r.values[0]).sum::<f64>();
            assert_eq!(physical.result.rows.len(), algebraic.rows.len(), "{sql}");
            assert!((sum(&physical.result) - sum(&algebraic)).abs() < 1e-9, "{sql}");
        }
    }

    #[test]
    fn profile_spans_all_three_layers() {
        let _l = TRACE_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        trace::enable();
        let _ = trace::take_profile();
        let ans = execute_physical_str(
            &retail(),
            "SELECT SUM(amount) FROM sales GROUP BY CUBE(product, store, month)",
        )
        .unwrap();
        trace::disable();
        let profile = ans.profile.expect("tracing was enabled and this is the root");
        // sql stages…
        for name in
            ["sql.query", "sql.tokenize", "sql.parse", "sql.execute", "sql.plan", "sql.eval"]
        {
            assert!(profile.find(name).is_some(), "missing span {name}");
        }
        // …cube stages with cost fields…
        let answer = profile.find("cube.answer").expect("cube.answer span");
        assert!(answer.field("cells_scanned").unwrap_or(0) > 0);
        // one answer per grouping set of a 3-dim CUBE
        assert_eq!(
            profile.roots[0]
                .children
                .iter()
                .flat_map(|c| {
                    fn named<'a>(n: &'a statcube_core::trace::ProfileNode, out: &mut Vec<&'a str>) {
                        out.push(n.name.as_str());
                        for c in &n.children {
                            named(c, out);
                        }
                    }
                    let mut v = Vec::new();
                    named(c, &mut v);
                    v
                })
                .filter(|n| *n == "cube.answer")
                .count(),
            8
        );
        // …and storage reads with page counts underneath the cube answers.
        let read = profile.find("storage.read").expect("storage.read span");
        assert!(read.field("pages").unwrap_or(0) > 0);
        assert_eq!(read.field("retries"), Some(0));
        assert!(profile.field_total("pages") > 0);
        // Rendering shows the tree and the counts.
        let text = profile.render();
        assert!(text.contains("sql.query"));
        assert!(text.contains("cube.answer"));
        assert!(text.contains("pages="));
    }

    #[test]
    fn disabled_trace_yields_no_profile() {
        let _l = TRACE_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        trace::disable();
        let ans = execute_physical_str(
            &retail(),
            "SELECT SUM(amount) FROM sales GROUP BY CUBE(product, store)",
        )
        .unwrap();
        assert!(ans.profile.is_none());
    }

    #[test]
    fn cached_session_hits_on_repeat_queries_and_stays_exact() {
        let o = retail();
        let session = CachedSession::new(&o, CacheConfig::default()).unwrap();
        let sql = "SELECT SUM(amount) FROM sales GROUP BY CUBE(product, store)";
        let cold = session.execute_str(sql).unwrap();
        assert!(!cold.bypassed_cache);
        assert_eq!(cold.cache_hits, 0);
        assert_eq!(cold.cache_misses, 4, "one miss per grouping set of CUBE(a, b)");
        let warm = session.execute_str(sql).unwrap();
        assert_eq!(warm.cache_hits, 4);
        assert_eq!(warm.cache_misses, 0);
        // Both runs agree with the one-shot physical executor row for row.
        let oneshot = execute_physical_str(&o, sql).unwrap();
        assert_eq!(row_key(&cold.result), row_key(&oneshot.result));
        assert_eq!(row_key(&warm.result), row_key(&oneshot.result));
        // A different grouping over the same dims reuses cached cuboids:
        // ROLLUP(product, store)'s sets are a subset of the CUBE's.
        let rollup = session
            .execute_str("SELECT SUM(amount) FROM sales GROUP BY ROLLUP(product, store)")
            .unwrap();
        assert_eq!(rollup.cache_hits, 3);
        assert_eq!(rollup.cache_misses, 0);
        assert!(session.cache_stats().hits >= 7);
    }

    #[test]
    fn cached_session_pushes_filters_down_without_polluting_the_cache() {
        let o = retail();
        let session = CachedSession::new(&o, CacheConfig::default()).unwrap();
        // A WHERE filter is pushed into the store scan: served by the
        // session store (no bypass), but never cached — a filtered cuboid
        // under an unfiltered key would corrupt later answers.
        let sql = "SELECT SUM(amount) FROM sales WHERE store = 's1' GROUP BY month";
        let filtered = session.execute_str(sql).unwrap();
        assert!(!filtered.bypassed_cache, "pushdown serves filters from the store");
        assert_eq!((filtered.cache_hits, filtered.cache_misses), (0, 1));
        assert_eq!(session.cache_stats().entries, 0, "filtered plans must not pollute the cache");
        let algebraic = crate::execute_str(&o, sql).unwrap();
        assert_eq!(row_key(&filtered.result), row_key(&algebraic));
        // …and the filter skips the cache on the read side too: a cached
        // unfiltered cuboid must not answer a filtered query.
        let unfiltered =
            session.execute_str("SELECT SUM(amount) FROM sales GROUP BY month").unwrap();
        assert_eq!(unfiltered.cache_misses, 1);
        let refiltered = session.execute_str(sql).unwrap();
        assert_eq!(refiltered.cache_hits, 0, "filtered sets never read the cache");
        assert_eq!(row_key(&refiltered.result), row_key(&algebraic));
    }

    #[test]
    fn cached_session_bypasses_object_rewriting_plans() {
        let o = shops();
        let session = CachedSession::new(&o, CacheConfig::default()).unwrap();
        // A hierarchy-level grouping rolls the object up before the facts
        // exist: bypass, nothing cached.
        let leveled = session.execute_str("SELECT SUM(amount) FROM sales GROUP BY city").unwrap();
        assert!(leveled.bypassed_cache);
        assert_eq!((leveled.cache_hits, leveled.cache_misses), (0, 0));
        assert_eq!(session.cache_stats().entries, 0, "bypassed plans must not pollute the cache");
        let algebraic =
            crate::execute_str(&o, "SELECT SUM(amount) FROM sales GROUP BY city").unwrap();
        assert_eq!(row_key(&leveled.result), row_key(&algebraic));
        // An ordinary query afterwards uses the store as usual.
        let plain = session.execute_str("SELECT SUM(amount) FROM sales GROUP BY product").unwrap();
        assert!(!plain.bypassed_cache);
        assert_eq!(plain.cache_misses, 1);
    }

    #[test]
    fn cached_session_with_views_routes_and_serves_concurrently() {
        let o = retail();
        // Materialize the {product, store} view: plain GROUP BY product
        // routes through it instead of the base.
        let session = CachedSession::with_views(&o, &[0b011], CacheConfig::default()).unwrap();
        assert_eq!(session.store().materialized(), vec![0b011, 0b111]);
        let sql = "SELECT SUM(amount) FROM sales GROUP BY CUBE(product, store, month)";
        let expected = row_key(&session.execute_str(sql).unwrap().result);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let session = &session;
                let expected = &expected;
                s.spawn(move || {
                    for _ in 0..8 {
                        let ans = session.execute_str(sql).unwrap();
                        assert_eq!(&row_key(&ans.result), expected);
                    }
                });
            }
        });
        assert!(session.cache_stats().hit_rate() > 0.9, "warm session should mostly hit");
    }

    #[test]
    fn cached_session_policy_partitions_answers() {
        let o = retail();
        let plain = CachedSession::new(&o, CacheConfig::default()).unwrap();
        let strict = CachedSession::new(&o, CacheConfig::default())
            .unwrap()
            .with_policy(PrivacyPolicy::suppress(10));
        let sql = "SELECT SUM(amount) FROM sales GROUP BY product";
        let open = plain.execute_str(sql).unwrap();
        assert!(open.result.rows.iter().all(|r| !r.suppressed));
        // Every product cell merges < 10 micro units → all suppressed.
        let closed = strict.execute_str(sql).unwrap();
        assert_eq!(closed.result.rows.len(), open.result.rows.len());
        assert!(closed.result.rows.iter().all(|r| r.suppressed));
        assert!(closed.result.rows.iter().all(|r| r.values.iter().all(Option::is_none)));
    }

    #[test]
    fn sharded_session_matches_cached_session_row_for_row() {
        let o = retail();
        let cached = CachedSession::new(&o, CacheConfig::default()).unwrap();
        for router in [ShardRouter::Hash { dim: 0 }, ShardRouter::Range { dim: 0, bounds: vec![1] }]
        {
            let sharded =
                ShardedSession::with_views(&o, &[], router, 2, CacheConfig::default()).unwrap();
            for sql in [
                "SELECT SUM(amount) FROM sales GROUP BY CUBE(product, store)",
                "SELECT SUM(amount) FROM sales GROUP BY ROLLUP(product, month)",
                "SELECT SUM(amount) FROM sales WHERE store = 's1' GROUP BY month",
                "SELECT SUM(amount) FROM sales",
            ] {
                let a = cached.execute_str(sql).unwrap();
                let b = sharded.execute_str(sql).unwrap();
                assert!(!b.is_partial(), "{sql}");
                assert_eq!(row_key(&a.result), row_key(&b.answer.result), "{sql}");
            }
        }
    }

    #[test]
    fn sharded_session_replans_after_delta_and_stays_exact() {
        let o = retail();
        let session = ShardedSession::with_views(
            &o,
            &[],
            ShardRouter::Hash { dim: 0 },
            2,
            CacheConfig::default(),
        )
        .unwrap();
        let sql = "SELECT SUM(amount) FROM sales GROUP BY product";
        let before = session.execute_str(sql).unwrap();
        let sum = |rs: &ResultSet| rs.rows.iter().filter_map(|r| r.values[0]).sum::<f64>();
        // Route one more apple sale through the sharded delta path; the
        // plan cache is generation-keyed, so the next query re-plans.
        let mut delta = FactInput::new(&[3, 2, 2]).unwrap();
        delta.push(&[0, 0, 0], 5.0).unwrap();
        session.store().apply_delta(&delta).unwrap();
        let after = session.execute_str(sql).unwrap();
        assert!((sum(&after.answer.result) - sum(&before.answer.result) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn sharded_session_surfaces_dead_shards_as_partial_rows() {
        let o = retail();
        let session = ShardedSession::with_views(
            &o,
            &[],
            ShardRouter::Hash { dim: 0 },
            3,
            CacheConfig::disabled(),
        )
        .unwrap();
        let sql = "SELECT SUM(amount) FROM sales GROUP BY product";
        let whole = session.execute_str(sql).unwrap();
        assert!(!whole.is_partial());
        session.store().kill_shard(1).unwrap();
        let partial = session.execute_str(sql).unwrap();
        assert!(partial.is_partial());
        assert_eq!(partial.missing_shards, 1 << 1);
        let sum = |rs: &ResultSet| rs.rows.iter().filter_map(|r| r.values[0]).sum::<f64>();
        assert!(sum(&partial.answer.result) <= sum(&whole.answer.result));
    }

    #[test]
    fn cached_session_rejects_multi_measure_objects() {
        let schema = Schema::builder("census")
            .dimension(Dimension::categorical("state", ["AL", "CA"]))
            .measure(SummaryAttribute::new("population", MeasureKind::Stock))
            .measure(SummaryAttribute::new("births", MeasureKind::Flow))
            .build()
            .unwrap();
        let o = StatisticalObject::empty(schema);
        assert!(matches!(
            CachedSession::new(&o, CacheConfig::default()),
            Err(Error::MultipleMeasures(2))
        ));
    }

    #[test]
    fn physical_rejects_multi_measure_objects() {
        let schema = Schema::builder("census")
            .dimension(Dimension::categorical("state", ["AL", "CA"]))
            .measure(SummaryAttribute::new("population", MeasureKind::Stock))
            .measure(SummaryAttribute::new("births", MeasureKind::Flow))
            .build()
            .unwrap();
        let o = StatisticalObject::empty(schema);
        let err = execute_physical_str(&o, "SELECT SUM(births) FROM census GROUP BY state");
        assert!(matches!(err, Err(Error::MultipleMeasures(2))));
    }
}
