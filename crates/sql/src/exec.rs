//! Query execution against a [`StatisticalObject`].
//!
//! The interpreter is a thin front-end over the shared plan layer: a parsed
//! [`Query`] compiles to a logical [`Plan`] ([`plan_of_query`]), the
//! rule-based planner validates and rewrites it (summarizability per
//! requested aggregate, predicate placement, the mandatory privacy
//! barrier), and the one workspace executor evaluates the grouping sets.
//! WHERE is `S-selection`, GROUP BY is projection down to the grouping
//! dimensions, and `CUBE`/`ROLLUP` emit the \[GB+96\] grouping sets with
//! `ALL` markers. `SELECT AVG(population) … GROUP BY state` over a time
//! dimension is fine while `SUM(population)` is refused — finer-grained
//! than the schema-level check, because SQL names its functions explicitly.

use std::fmt::Write as _;
use std::sync::Arc;

use statcube_core::error::{Error, Result};
use statcube_core::object::StatisticalObject;
use statcube_core::ops;
use statcube_core::plan::{
    self, AggRequest, GroupingSpec, ObjectSource, Plan, PlanExecution, PlanPredicate, PlannedQuery,
    Planner, PrivacyPolicy,
};
use statcube_core::schema::Schema;
use statcube_core::trace;

use crate::ast::{Grouping, Query};

/// One output row: the grouping values (`None` = `ALL`) and the aggregate
/// values (`None` = undefined, e.g. AVG of nothing, or withheld by the
/// privacy policy).
#[derive(Debug, Clone, PartialEq)]
pub struct ResultRow {
    /// Values of the grouping columns, in GROUP BY order. Labels are
    /// `Arc<str>` shared with the executor's per-dimension label tables, so
    /// a row costs a refcount bump per group column instead of a string
    /// allocation.
    pub group: Vec<Option<Arc<str>>>,
    /// Values of the SELECT aggregates, in SELECT order.
    pub values: Vec<Option<f64>>,
    /// The row was withheld by the privacy pass (its values read `NULL`).
    pub suppressed: bool,
}

/// An executed query's result.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultSet {
    /// The grouping column names, in GROUP BY order.
    pub group_columns: Vec<String>,
    /// The aggregate column names (rendered SQL), in SELECT order.
    pub agg_columns: Vec<String>,
    /// The rows, sorted deterministically (finest groupings first, `ALL`
    /// sorting after concrete members).
    pub rows: Vec<ResultRow>,
}

impl ResultSet {
    /// Renders as a fixed-width text table with literal `ALL` (Fig 15).
    pub fn render(&self) -> String {
        let headers: Vec<String> =
            self.group_columns.iter().chain(&self.agg_columns).cloned().collect();
        let mut cells: Vec<Vec<String>> = Vec::with_capacity(self.rows.len());
        for row in &self.rows {
            let mut line: Vec<String> =
                row.group.iter().map(|g| g.as_deref().unwrap_or("ALL").to_owned()).collect();
            line.extend(row.values.iter().map(|v| match v {
                Some(v) => format!("{v:.2}"),
                None => "NULL".into(),
            }));
            cells.push(line);
        }
        let mut widths: Vec<usize> = headers.iter().map(String::len).collect();
        for line in &cells {
            for (w, c) in widths.iter_mut().zip(line) {
                *w = (*w).max(c.len());
            }
        }
        let mut out = String::new();
        let render_line = |line: &[String], out: &mut String| {
            for (c, w) in line.iter().zip(&widths) {
                let _ = write!(out, "{c:>w$}  ", w = w);
            }
            let _ = writeln!(out);
        };
        render_line(&headers, &mut out);
        for line in &cells {
            render_line(line, &mut out);
        }
        out
    }
}

/// Compiles a parsed query to the logical summary-algebra [`Plan`] every
/// front-end shares: WHERE becomes a `Select` node, GROUP BY (plain /
/// CUBE / ROLLUP / absent) becomes a `GroupingSets` node whose group names
/// are passed through verbatim — dimension names and hierarchy-level names
/// alike; the planner resolves them.
pub fn plan_of_query(query: &Query) -> Plan {
    let mut plan = Plan::scan(&query.from);
    if !query.filters.is_empty() {
        plan = plan.select(
            query
                .filters
                .iter()
                .map(|p| PlanPredicate {
                    column: p.column.clone(),
                    value: p.value.clone(),
                    negated: p.negated,
                })
                .collect(),
        );
    }
    let (group, spec) = match &query.grouping {
        Grouping::None => (Vec::new(), GroupingSpec::Single),
        Grouping::Plain(d) => (d.clone(), GroupingSpec::Single),
        Grouping::Cube(d) => (d.clone(), GroupingSpec::Cube),
        Grouping::Rollup(d) => (d.clone(), GroupingSpec::Rollup),
    };
    let aggs = query
        .select
        .iter()
        .map(|a| AggRequest { func: a.func, measure: a.arg.clone(), label: a.to_sql() })
        .collect();
    plan.grouping_sets(group, spec, aggs)
}

/// Applies the planner's leaf program to an object: leaf predicates
/// (S-selection by member id), then leaf roll-ups (S-aggregation to a
/// hierarchy level). Shared by the algebraic and physical front-ends.
pub(crate) fn apply_leaf_program(
    obj: &StatisticalObject,
    planned: &PlannedQuery,
) -> Result<StatisticalObject> {
    let mut cur = obj.clone();
    for p in &planned.leaf_predicates {
        cur = ops::s_select_ids(&cur, p.dim, &p.allowed)?;
    }
    for r in &planned.leaf_rollups {
        cur = ops::s_aggregate(&cur, &r.dim_name, &r.level)?;
    }
    Ok(cur)
}

/// Converts executor rows into SQL result rows.
pub(crate) fn rows_from_plan(
    planned: &PlannedQuery,
    exec: &PlanExecution,
    schema: &Schema,
) -> Result<Vec<ResultRow>> {
    let labels = plan::group_labels(planned, schema)?;
    rows_from_plan_with_labels(planned, exec, &labels)
}

/// [`rows_from_plan`] against pre-resolved label tables — the cached
/// session resolves a query's labels once at plan time and replays them on
/// every execution.
pub(crate) fn rows_from_plan_with_labels(
    planned: &PlannedQuery,
    exec: &PlanExecution,
    labels: &plan::GroupLabels,
) -> Result<Vec<ResultRow>> {
    Ok(plan::result_rows_with_labels(planned, exec, labels)?
        .into_iter()
        .map(|r| ResultRow { group: r.group, values: r.values, suppressed: r.suppressed })
        .collect())
}

/// Executes a parsed query against a statistical object (the binding of
/// the query's FROM name to `obj` is the caller's affair).
pub fn execute(obj: &StatisticalObject, query: &Query) -> Result<ResultSet> {
    execute_with_policy(obj, query, &PrivacyPolicy::none())
}

/// Executes a parsed query with a privacy policy in the path: the planner
/// attaches the mandatory `Restrict` barrier and the executor enforces it
/// on every grouping set before rows render. Suppressed rows stay in the
/// result with `NULL` values and `suppressed = true`.
pub fn execute_with_policy(
    obj: &StatisticalObject,
    query: &Query,
    policy: &PrivacyPolicy,
) -> Result<ResultSet> {
    let mut root = trace::span("sql.execute");
    trace::counter("sql.queries", 1);
    if query.select.is_empty() {
        return Err(Error::InvalidSchema("empty SELECT list".into()));
    }
    // Result columns keep the user's names (level names included).
    let display_dims: Vec<String> = query.grouping.dims().to_vec();
    let plan_span = trace::span("sql.plan");
    let planned = Planner::for_object(obj.schema())
        .with_policy(policy.clone())
        .plan(&plan_of_query(query))?;
    // Leaf program: WHERE applies at the leaf level, before any level-name
    // roll-up — `WHERE store = 's1' GROUP BY city` filters the store first.
    let leaf = apply_leaf_program(obj, &planned)?;
    // Group labels resolve in the post-roll-up, pre-projection schema.
    let label_schema = leaf.schema().clone();
    // Reduce to the one base projection all grouping sets derive from.
    let base_mask = planned.base_mask();
    let names: Vec<String> =
        leaf.schema().dimensions().iter().map(|d| d.name().to_owned()).collect();
    let mut base = leaf;
    for (d, name) in names.iter().enumerate() {
        if base_mask >> d & 1 == 0 {
            base = ops::s_project_unchecked(&base, name)?;
        }
    }
    drop(plan_span);
    let mut eval_span = trace::span("sql.eval");
    let src = ObjectSource::new(&base, base_mask)?;
    let executed = plan::execute(&planned, &src)?;
    let rows = rows_from_plan(&planned, &executed, &label_schema)?;
    eval_span.record("grouping_sets", planned.sets.len() as u64);
    eval_span.record("rows", rows.len() as u64);
    drop(eval_span);
    root.record("rows", rows.len() as u64);

    Ok(ResultSet {
        group_columns: display_dims,
        agg_columns: query.select.iter().map(|a| a.to_sql()).collect(),
        rows,
    })
}

/// Parses and executes in one step.
pub fn execute_str(obj: &StatisticalObject, sql: &str) -> Result<ResultSet> {
    execute(obj, &crate::parser::parse(sql)?)
}

/// Renders the EXPLAIN text for a query — the logical plan, the rewrite
/// passes applied, and the physical grouping sets — without executing it.
pub fn explain(obj: &StatisticalObject, query: &Query) -> Result<String> {
    explain_with_policy(obj, query, &PrivacyPolicy::none())
}

/// [`explain`] with an explicit privacy policy (the `Restrict` barrier and
/// the privacy pass note render with the given policy).
pub fn explain_with_policy(
    obj: &StatisticalObject,
    query: &Query,
    policy: &PrivacyPolicy,
) -> Result<String> {
    Ok(Planner::for_object(obj.schema())
        .with_policy(policy.clone())
        .plan(&plan_of_query(query))?
        .explain())
}

/// Parses and explains in one step.
pub fn explain_str(obj: &StatisticalObject, sql: &str) -> Result<String> {
    explain(obj, &crate::parser::parse(sql)?)
}

/// The pre-planner interpreter, frozen verbatim as a differential-testing
/// oracle: the property tests below check that the planner + shared
/// executor agree with it on randomized queries. Not compiled into the
/// library.
#[cfg(test)]
pub(crate) mod frozen {
    use statcube_core::summarizability::check_type;

    use super::*;

    fn apply_filters(obj: &StatisticalObject, query: &Query) -> Result<StatisticalObject> {
        let mut cur = obj.clone();
        for p in &query.filters {
            let d = cur.schema().dim_index(&p.column)?;
            let dim = &cur.schema().dimensions()[d];
            let ids: Vec<u32> = dim
                .members()
                .iter()
                .filter(|(_, v)| (*v == p.value) != p.negated)
                .map(|(id, _)| id)
                .collect();
            cur = ops::s_select_ids(&cur, d, &ids)?;
        }
        Ok(cur)
    }

    fn check_aggregates(obj: &StatisticalObject, query: &Query) -> Result<Vec<usize>> {
        let mut measure_idx = Vec::with_capacity(query.select.len());
        for agg in &query.select {
            match &agg.arg {
                Some(m) => measure_idx.push(obj.schema().measure_index(m)?),
                None => measure_idx.push(0),
            }
        }
        let pinned: Vec<usize> = query
            .filters
            .iter()
            .filter(|p| !p.negated)
            .map(|p| obj.schema().dim_index(&p.column))
            .collect::<Result<_>>()?;
        let aggregated_dims: Vec<usize> = match &query.grouping {
            Grouping::Plain(dims) => {
                let keep: Vec<usize> =
                    dims.iter().map(|d| obj.schema().dim_index(d)).collect::<Result<_>>()?;
                (0..obj.schema().dim_count())
                    .filter(|d| !keep.contains(d) && !pinned.contains(d))
                    .collect()
            }
            _ => {
                for d in query.grouping.dims() {
                    obj.schema().dim_index(d)?;
                }
                (0..obj.schema().dim_count()).filter(|d| !pinned.contains(d)).collect()
            }
        };
        let mut violations = Vec::new();
        for (agg, &m) in query.select.iter().zip(&measure_idx) {
            if agg.arg.is_none() {
                continue;
            }
            let measure = &obj.schema().measures()[m];
            for &d in &aggregated_dims {
                let dim = &obj.schema().dimensions()[d];
                if let Some(v) =
                    check_type(measure.name(), measure.kind(), agg.func, dim.name(), dim.role())
                {
                    violations.push(v);
                }
            }
        }
        if violations.is_empty() {
            Ok(measure_idx)
        } else {
            violations.dedup();
            Err(Error::Summarizability(violations))
        }
    }

    fn resolve_level_groupings(
        obj: &StatisticalObject,
        query: &Query,
    ) -> Result<(StatisticalObject, Query)> {
        let mut cur = obj.clone();
        let mut q = query.clone();
        let dims: Vec<String> = q.grouping.dims().to_vec();
        let mut rewritten = dims.clone();
        for (i, name) in dims.iter().enumerate() {
            if cur.schema().dim_index(name).is_ok() {
                continue;
            }
            let target = cur
                .schema()
                .dimensions()
                .iter()
                .find(|d| {
                    d.default_hierarchy()
                        .map(|h| h.levels().iter().any(|l| l.name() == name.as_str()))
                        .unwrap_or(false)
                })
                .map(|d| d.name().to_owned());
            let Some(dim_name) = target else { continue };
            cur = ops::s_aggregate(&cur, &dim_name, name)?;
            rewritten[i] = dim_name;
        }
        match &mut q.grouping {
            Grouping::Plain(d) | Grouping::Cube(d) | Grouping::Rollup(d) => *d = rewritten,
            Grouping::None => {}
        }
        Ok((cur, q))
    }

    pub(crate) fn execute(obj: &StatisticalObject, query: &Query) -> Result<ResultSet> {
        if query.select.is_empty() {
            return Err(Error::InvalidSchema("empty SELECT list".into()));
        }
        let display_dims: Vec<String> = query.grouping.dims().to_vec();
        let filtered_leaf = apply_filters(obj, query)?;
        let (obj, query) = resolve_level_groupings(&filtered_leaf, query)?;
        let obj = &obj;
        let query = &query;
        let measure_idx = check_aggregates(obj, query)?;
        let filtered = obj.clone();

        let group_dims = query.grouping.dims().to_vec();
        let sets: Vec<Vec<bool>> = match &query.grouping {
            Grouping::None => vec![vec![]],
            Grouping::Plain(d) => vec![vec![true; d.len()]],
            Grouping::Cube(d) => {
                let n = d.len();
                (0..(1u32 << n))
                    .rev()
                    .map(|mask| (0..n).map(|i| mask & (1 << i) != 0).collect())
                    .collect()
            }
            Grouping::Rollup(d) => {
                let n = d.len();
                (0..=n).rev().map(|k| (0..n).map(|i| i < k).collect()).collect()
            }
        };

        let mut base = filtered;
        let all_dims: Vec<String> =
            base.schema().dimensions().iter().map(|d| d.name().to_owned()).collect();
        for dim in &all_dims {
            if !group_dims.contains(dim) {
                base = ops::s_project_unchecked(&base, dim)?;
            }
        }

        let mut rows = Vec::new();
        for set in &sets {
            let mut cur = base.clone();
            for (i, keep) in set.iter().enumerate() {
                if !keep {
                    cur = ops::s_project_unchecked(&cur, &group_dims[i])?;
                }
            }
            for (coords, states) in cur.cells_sorted() {
                let names = cur.schema().names_of(coords)?;
                let mut group = Vec::with_capacity(group_dims.len());
                let mut cursor = 0;
                for keep in set {
                    if *keep {
                        group.push(Some(Arc::from(names[cursor])));
                        cursor += 1;
                    } else {
                        group.push(None);
                    }
                }
                let values: Vec<Option<f64>> = query
                    .select
                    .iter()
                    .zip(&measure_idx)
                    .map(|(agg, &m)| states.get(m).and_then(|s| s.value(agg.func)))
                    .collect();
                rows.push(ResultRow { group, values, suppressed: false });
            }
        }

        Ok(ResultSet {
            group_columns: display_dims,
            agg_columns: query.select.iter().map(|a| a.to_sql()).collect(),
            rows,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use statcube_core::dimension::Dimension;
    use statcube_core::measure::{MeasureKind, SummaryAttribute, SummaryFunction};
    use statcube_core::schema::Schema;

    fn census() -> StatisticalObject {
        let schema = Schema::builder("census")
            .dimension(Dimension::spatial("state", ["AL", "CA"]))
            .dimension(Dimension::temporal("year", ["1990", "1991"]))
            .dimension(Dimension::categorical("sex", ["male", "female"]))
            .measure(SummaryAttribute::new("population", MeasureKind::Stock))
            .measure(SummaryAttribute::new("births", MeasureKind::Flow))
            .function(SummaryFunction::Sum)
            .build()
            .unwrap();
        let mut o = StatisticalObject::empty(schema);
        let data: &[(&str, &str, &str, f64, f64)] = &[
            ("AL", "1990", "male", 100.0, 3.0),
            ("AL", "1990", "female", 110.0, 4.0),
            ("AL", "1991", "male", 102.0, 5.0),
            ("CA", "1990", "male", 400.0, 11.0),
            ("CA", "1990", "female", 410.0, 12.0),
            ("CA", "1991", "female", 420.0, 13.0),
        ];
        for (s, y, x, pop, births) in data {
            o.insert_row(&[s, y, x], &[*pop, *births]).unwrap();
        }
        o
    }

    fn find<'a>(rs: &'a ResultSet, group: &[Option<&str>]) -> Option<&'a ResultRow> {
        rs.rows.iter().find(|r| {
            r.group.len() == group.len()
                && r.group.iter().zip(group).all(|(a, b)| a.as_deref() == *b)
        })
    }

    #[test]
    fn plain_group_by() {
        let rs = execute_str(
            &census(),
            "SELECT SUM(population) FROM census WHERE year = '1990' GROUP BY state",
        )
        .unwrap();
        assert_eq!(rs.rows.len(), 2);
        assert_eq!(find(&rs, &[Some("AL")]).unwrap().values[0], Some(210.0));
        assert_eq!(find(&rs, &[Some("CA")]).unwrap().values[0], Some(810.0));
    }

    #[test]
    fn cube_emits_all_groupings_with_all() {
        let rs = execute_str(&census(), "SELECT SUM(births) FROM census GROUP BY CUBE(state, sex)")
            .unwrap();
        // Groupings: (state,sex)=4 rows, (state)=2, (sex)=2, ()=1.
        assert_eq!(rs.rows.len(), 9);
        assert_eq!(find(&rs, &[None, None]).unwrap().values[0], Some(48.0));
        assert_eq!(find(&rs, &[Some("CA"), None]).unwrap().values[0], Some(36.0));
        assert_eq!(find(&rs, &[None, Some("male")]).unwrap().values[0], Some(19.0));
        assert_eq!(find(&rs, &[Some("AL"), Some("female")]).unwrap().values[0], Some(4.0));
    }

    #[test]
    fn rollup_emits_prefixes_only() {
        let rs =
            execute_str(&census(), "SELECT SUM(births) FROM census GROUP BY ROLLUP(state, sex)")
                .unwrap();
        // (state,sex)=4, (state)=2, ()=1.
        assert_eq!(rs.rows.len(), 7);
        assert!(find(&rs, &[None, Some("male")]).is_none());
        assert_eq!(find(&rs, &[Some("AL"), None]).unwrap().values[0], Some(12.0));
    }

    #[test]
    fn multiple_aggregates_and_count_star() {
        let rs = execute_str(
            &census(),
            "SELECT SUM(births), AVG(births), COUNT(*), MIN(births), MAX(births) \
             FROM census GROUP BY state",
        )
        .unwrap();
        let al = find(&rs, &[Some("AL")]).unwrap();
        assert_eq!(al.values, vec![Some(12.0), Some(4.0), Some(3.0), Some(3.0), Some(5.0)]);
    }

    #[test]
    fn negated_filter_and_unknown_member() {
        let rs = execute_str(
            &census(),
            "SELECT SUM(births) FROM census WHERE sex <> 'male' GROUP BY state",
        )
        .unwrap();
        assert_eq!(find(&rs, &[Some("CA")]).unwrap().values[0], Some(25.0));
        // Unknown member: empty result, not an error (SQL semantics).
        let rs = execute_str(
            &census(),
            "SELECT SUM(births) FROM census WHERE state = 'TX' GROUP BY state",
        )
        .unwrap();
        assert!(rs.rows.is_empty());
    }

    #[test]
    fn summarizability_is_per_aggregate() {
        // SUM(population) over the temporal dimension: refused.
        let err = execute_str(&census(), "SELECT SUM(population) FROM census GROUP BY state");
        assert!(matches!(err, Err(Error::Summarizability(_))));
        // AVG(population) over the same grouping: fine.
        let rs =
            execute_str(&census(), "SELECT AVG(population) FROM census GROUP BY state").unwrap();
        assert_eq!(find(&rs, &[Some("AL")]).unwrap().values[0], Some(104.0));
        // SUM(population) grouped by year (time kept): fine.
        let rs =
            execute_str(&census(), "SELECT SUM(population) FROM census GROUP BY year").unwrap();
        assert_eq!(find(&rs, &[Some("1990")]).unwrap().values[0], Some(1020.0));
        // SUM(births) — a flow — over time: fine.
        assert!(execute_str(&census(), "SELECT SUM(births) FROM census").is_ok());
        // CUBE including population sums must also be refused (the apex
        // aggregates over time).
        let err =
            execute_str(&census(), "SELECT SUM(population) FROM census GROUP BY CUBE(state, year)");
        assert!(matches!(err, Err(Error::Summarizability(_))));
    }

    #[test]
    fn errors_for_unknown_names() {
        assert!(execute_str(&census(), "SELECT SUM(gdp) FROM census").is_err());
        assert!(execute_str(&census(), "SELECT SUM(births) FROM census GROUP BY planet").is_err());
        assert!(
            execute_str(&census(), "SELECT SUM(births) FROM census WHERE planet = 'x'").is_err()
        );
    }

    #[test]
    fn render_contains_all_and_values() {
        let rs = execute_str(&census(), "SELECT SUM(births) FROM census GROUP BY CUBE(state, sex)")
            .unwrap();
        let text = rs.render();
        assert!(text.contains("ALL"));
        assert!(text.contains("48.00"));
        assert!(text.contains("state"));
        assert!(text.contains("SUM(\"births\")"));
    }

    #[test]
    fn group_by_hierarchy_level_rolls_up() {
        use statcube_core::hierarchy::Hierarchy;
        let location = Hierarchy::builder("loc")
            .level("store")
            .level("city")
            .edge("s1", "seattle")
            .edge("s2", "seattle")
            .edge("s3", "portland")
            .build()
            .unwrap();
        let schema = Schema::builder("sales")
            .dimension(Dimension::classified("store", location))
            .dimension(Dimension::categorical("product", ["a", "b"]))
            .measure(SummaryAttribute::new("amount", MeasureKind::Flow))
            .build()
            .unwrap();
        let mut o = StatisticalObject::empty(schema);
        o.insert(&["s1", "a"], 10.0).unwrap();
        o.insert(&["s2", "a"], 5.0).unwrap();
        o.insert(&["s3", "b"], 7.0).unwrap();
        // GROUP BY the *city* level, not the store dimension.
        let rs = execute_str(&o, "SELECT SUM(amount) FROM sales GROUP BY city").unwrap();
        assert_eq!(rs.group_columns, vec!["city"]);
        assert_eq!(find(&rs, &[Some("seattle")]).unwrap().values[0], Some(15.0));
        assert_eq!(find(&rs, &[Some("portland")]).unwrap().values[0], Some(7.0));
        // Works inside CUBE too.
        let rs =
            execute_str(&o, "SELECT SUM(amount) FROM sales GROUP BY CUBE(city, product)").unwrap();
        assert_eq!(find(&rs, &[Some("seattle"), None]).unwrap().values[0], Some(15.0));
        assert_eq!(find(&rs, &[None, None]).unwrap().values[0], Some(22.0));
        // Unknown names still error.
        assert!(execute_str(&o, "SELECT SUM(amount) FROM sales GROUP BY galaxy").is_err());
        // Leaf-level WHERE composes with level grouping: only s1 counts.
        let rs = execute_str(&o, "SELECT SUM(amount) FROM sales WHERE store = 's1' GROUP BY city")
            .unwrap();
        assert_eq!(find(&rs, &[Some("seattle")]).unwrap().values[0], Some(10.0));
        assert!(find(&rs, &[Some("portland")]).is_none());
    }

    #[test]
    fn grand_total_without_group_by() {
        let rs = execute_str(&census(), "SELECT COUNT(*) FROM census").unwrap();
        assert_eq!(rs.rows.len(), 1);
        assert!(rs.rows[0].group.is_empty());
        assert_eq!(rs.rows[0].values[0], Some(6.0));
    }

    #[test]
    fn suppression_policy_withholds_small_rows() {
        let rs = execute_with_policy(
            &census(),
            &crate::parser::parse("SELECT COUNT(*) FROM census GROUP BY state, year").unwrap(),
            &PrivacyPolicy::suppress(2),
        )
        .unwrap();
        // (CA, 1991) holds a single micro unit → suppressed; (AL, 1990)
        // holds two → published.
        let ca91 = find(&rs, &[Some("CA"), Some("1991")]).unwrap();
        assert!(ca91.suppressed);
        assert_eq!(ca91.values, vec![None]);
        let al90 = find(&rs, &[Some("AL"), Some("1990")]).unwrap();
        assert!(!al90.suppressed);
        assert_eq!(al90.values, vec![Some(2.0)]);
    }

    #[test]
    fn explain_shows_plan_rewrites_and_sets() {
        let text = explain_str(
            &census(),
            "SELECT SUM(births) FROM census WHERE sex = 'male' GROUP BY CUBE(state, year)",
        )
        .unwrap();
        assert!(text.contains("logical plan"), "{text}");
        assert!(text.contains("GroupingSets{spec=cube"), "{text}");
        assert!(text.contains("Select{sex = 'male'}"), "{text}");
        assert!(text.contains("Scan{census}"), "{text}");
        assert!(text.contains("1. summarizability:"), "{text}");
        assert!(text.contains("4. privacy: policy none enforced"), "{text}");
        assert!(text.contains("physical grouping sets"), "{text}");
        // Four CUBE sets, each deriving from the one base projection.
        assert_eq!(text.matches("target ").count(), 4, "{text}");
    }
}

#[cfg(test)]
mod prop {
    use proptest::prelude::*;
    use statcube_core::dimension::Dimension;
    use statcube_core::measure::{MeasureKind, SummaryAttribute, SummaryFunction};
    use statcube_core::schema::Schema;

    use super::*;
    use crate::ast::AggExpr;

    const STATES: [&str; 3] = ["AL", "CA", "NV"];
    const YEARS: [&str; 2] = ["1990", "1991"];
    const SEXES: [&str; 2] = ["male", "female"];

    fn schema() -> Schema {
        Schema::builder("census")
            .dimension(Dimension::spatial("state", STATES))
            .dimension(Dimension::temporal("year", YEARS))
            .dimension(Dimension::categorical("sex", SEXES))
            .measure(SummaryAttribute::new("population", MeasureKind::Stock))
            .measure(SummaryAttribute::new("births", MeasureKind::Flow))
            .function(SummaryFunction::Sum)
            .build()
            .unwrap()
    }

    fn object_strategy() -> impl Strategy<Value = StatisticalObject> {
        proptest::collection::vec((0u32..3, 0u32..2, 0u32..2, 0i64..1000, 0i64..50), 0..40)
            .prop_map(|cells| {
                let mut o = StatisticalObject::empty(schema());
                for (s, y, x, pop, births) in cells {
                    o.insert_ids(&[s, y, x], &[pop as f64, births as f64]).unwrap();
                }
                o
            })
    }

    fn query_strategy() -> impl Strategy<Value = Query> {
        let agg = (0usize..5).prop_map(|i| match i {
            0 => AggExpr { func: SummaryFunction::Sum, arg: Some("births".into()) },
            1 => AggExpr { func: SummaryFunction::Avg, arg: Some("population".into()) },
            2 => AggExpr { func: SummaryFunction::Min, arg: Some("births".into()) },
            3 => AggExpr { func: SummaryFunction::Max, arg: Some("population".into()) },
            _ => AggExpr { func: SummaryFunction::Count, arg: None },
        });
        let filter = (0usize..3, 0usize..3, proptest::bool::ANY).prop_map(|(d, m, negated)| {
            let (column, value) = match d {
                0 => ("state", STATES[m]),
                1 => ("year", YEARS[m % 2]),
                _ => ("sex", SEXES[m % 2]),
            };
            crate::ast::Predicate { column: column.to_owned(), value: value.to_owned(), negated }
        });
        // Group columns stay in schema order (the frozen interpreter's
        // label cursor assumed it; the planner handles any order).
        let groups = proptest::sample::subsequence(&["state", "year", "sex"][..], 0..=3usize);
        (
            proptest::collection::vec(agg, 1..4),
            proptest::collection::vec(filter, 0..3),
            groups,
            0u8..4,
        )
            .prop_map(|(select, filters, dims, kind)| {
                let dims: Vec<String> = dims.into_iter().map(str::to_owned).collect();
                Query {
                    select,
                    from: "census".into(),
                    filters,
                    grouping: match kind {
                        0 => Grouping::None,
                        1 => Grouping::Plain(dims),
                        2 => Grouping::Cube(dims),
                        _ => Grouping::Rollup(dims),
                    },
                }
            })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(192))]

        /// The planner + shared executor agree with the frozen pre-planner
        /// interpreter on randomized queries — both answers and refusals.
        #[test]
        fn planner_matches_the_frozen_interpreter(
            o in object_strategy(),
            q in query_strategy(),
        ) {
            let new = execute(&o, &q);
            let old = frozen::execute(&o, &q);
            match (new, old) {
                (Ok(a), Ok(b)) => prop_assert_eq!(a, b),
                (Err(_), Err(_)) => {}
                (a, b) => prop_assert!(
                    false,
                    "planner and frozen interpreter disagree: {a:?} vs {b:?} on {}",
                    q.to_sql()
                ),
            }
        }

        /// A permissive policy run through the full privacy path changes
        /// nothing: the barrier is mandatory but `none` withholds nothing.
        #[test]
        fn permissive_policy_is_identity(o in object_strategy(), q in query_strategy()) {
            let plain = execute(&o, &q);
            let policied = execute_with_policy(&o, &q, &PrivacyPolicy::none());
            match (plain, policied) {
                (Ok(a), Ok(b)) => prop_assert_eq!(a, b),
                (Err(_), Err(_)) => {}
                _ => prop_assert!(false, "permissive policy changed the outcome"),
            }
        }
    }
}
