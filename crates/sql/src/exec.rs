//! Query execution against a [`StatisticalObject`].
//!
//! The executor reuses the statistical algebra: WHERE is `S-selection`,
//! GROUP BY is projection down to the grouping dimensions, and
//! `CUBE`/`ROLLUP` emit the [GB+96] grouping sets with `ALL` markers.
//! Summarizability is enforced **per requested aggregate**: `SELECT
//! AVG(population) … GROUP BY state` over a time dimension is fine while
//! `SUM(population)` is refused — finer-grained than the schema-level
//! check, because SQL names its functions explicitly.

use std::fmt::Write as _;

use statcube_core::error::{Error, Result};
use statcube_core::object::StatisticalObject;
use statcube_core::ops;
use statcube_core::summarizability::check_type;
use statcube_core::trace;

use crate::ast::{Grouping, Query};

/// One output row: the grouping values (`None` = `ALL`) and the aggregate
/// values (`None` = undefined, e.g. AVG of nothing).
#[derive(Debug, Clone, PartialEq)]
pub struct ResultRow {
    /// Values of the grouping columns, in GROUP BY order.
    pub group: Vec<Option<String>>,
    /// Values of the SELECT aggregates, in SELECT order.
    pub values: Vec<Option<f64>>,
}

/// An executed query's result.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultSet {
    /// The grouping column names, in GROUP BY order.
    pub group_columns: Vec<String>,
    /// The aggregate column names (rendered SQL), in SELECT order.
    pub agg_columns: Vec<String>,
    /// The rows, sorted deterministically (finest groupings first, `ALL`
    /// sorting after concrete members).
    pub rows: Vec<ResultRow>,
}

impl ResultSet {
    /// Renders as a fixed-width text table with literal `ALL` (Fig 15).
    pub fn render(&self) -> String {
        let headers: Vec<String> =
            self.group_columns.iter().chain(&self.agg_columns).cloned().collect();
        let mut cells: Vec<Vec<String>> = Vec::with_capacity(self.rows.len());
        for row in &self.rows {
            let mut line: Vec<String> =
                row.group.iter().map(|g| g.clone().unwrap_or_else(|| "ALL".into())).collect();
            line.extend(row.values.iter().map(|v| match v {
                Some(v) => format!("{v:.2}"),
                None => "NULL".into(),
            }));
            cells.push(line);
        }
        let mut widths: Vec<usize> = headers.iter().map(String::len).collect();
        for line in &cells {
            for (w, c) in widths.iter_mut().zip(line) {
                *w = (*w).max(c.len());
            }
        }
        let mut out = String::new();
        let render_line = |line: &[String], out: &mut String| {
            for (c, w) in line.iter().zip(&widths) {
                let _ = write!(out, "{c:>w$}  ", w = w);
            }
            let _ = writeln!(out);
        };
        render_line(&headers, &mut out);
        for line in &cells {
            render_line(line, &mut out);
        }
        out
    }
}

pub(crate) fn apply_filters(obj: &StatisticalObject, query: &Query) -> Result<StatisticalObject> {
    let mut cur = obj.clone();
    for p in &query.filters {
        let d = cur.schema().dim_index(&p.column)?;
        let dim = &cur.schema().dimensions()[d];
        let ids: Vec<u32> = dim
            .members()
            .iter()
            .filter(|(_, v)| (*v == p.value) != p.negated)
            .map(|(id, _)| id)
            .collect();
        cur = ops::s_select_ids(&cur, d, &ids)?;
    }
    Ok(cur)
}

pub(crate) fn check_aggregates(obj: &StatisticalObject, query: &Query) -> Result<Vec<usize>> {
    // Resolve each aggregate to a measure index (COUNT(*) → measure 0's
    // count, which is shared across measures).
    let mut measure_idx = Vec::with_capacity(query.select.len());
    for agg in &query.select {
        match &agg.arg {
            Some(m) => measure_idx.push(obj.schema().measure_index(m)?),
            None => measure_idx.push(0),
        }
    }
    // Dimensions pinned to a single member by an equality filter are not
    // aggregated *over* — they are the paper's singleton context
    // ("Employment in California", §2.1(iii)).
    let pinned: Vec<usize> = query
        .filters
        .iter()
        .filter(|p| !p.negated)
        .map(|p| obj.schema().dim_index(&p.column))
        .collect::<Result<_>>()?;
    // Which dimensions get aggregated away in at least one emitted
    // grouping? Plain: the complement of the grouping set. CUBE / ROLLUP /
    // no grouping: every dimension (the apex aggregates them all).
    let aggregated_dims: Vec<usize> = match &query.grouping {
        Grouping::Plain(dims) => {
            let keep: Vec<usize> =
                dims.iter().map(|d| obj.schema().dim_index(d)).collect::<Result<_>>()?;
            (0..obj.schema().dim_count())
                .filter(|d| !keep.contains(d) && !pinned.contains(d))
                .collect()
        }
        _ => {
            for d in query.grouping.dims() {
                obj.schema().dim_index(d)?;
            }
            (0..obj.schema().dim_count()).filter(|d| !pinned.contains(d)).collect()
        }
    };
    let mut violations = Vec::new();
    for (agg, &m) in query.select.iter().zip(&measure_idx) {
        if agg.arg.is_none() {
            continue; // COUNT(*) is always meaningful
        }
        let measure = &obj.schema().measures()[m];
        for &d in &aggregated_dims {
            let dim = &obj.schema().dimensions()[d];
            if let Some(v) =
                check_type(measure.name(), measure.kind(), agg.func, dim.name(), dim.role())
            {
                violations.push(v);
            }
        }
    }
    if violations.is_empty() {
        Ok(measure_idx)
    } else {
        violations.dedup();
        Err(Error::Summarizability(violations))
    }
}

/// Resolves GROUP BY names that are *hierarchy levels* rather than
/// dimensions (the statistical-object semantics SQL normally lacks):
/// `GROUP BY city` over a `store` dimension whose default hierarchy has a
/// `city` level first rolls the object up to that level, then the name
/// refers to the (renamed) dimension. Returns the possibly rolled-up
/// object and the query with level names rewritten to dimension names.
pub(crate) fn resolve_level_groupings(
    obj: &StatisticalObject,
    query: &Query,
) -> Result<(StatisticalObject, Query)> {
    let mut cur = obj.clone();
    let mut q = query.clone();
    let dims: Vec<String> = q.grouping.dims().to_vec();
    let mut rewritten = dims.clone();
    for (i, name) in dims.iter().enumerate() {
        if cur.schema().dim_index(name).is_ok() {
            continue;
        }
        // Find a dimension whose default hierarchy has a level `name`.
        let target = cur
            .schema()
            .dimensions()
            .iter()
            .find(|d| {
                d.default_hierarchy()
                    .map(|h| h.levels().iter().any(|l| l.name() == name.as_str()))
                    .unwrap_or(false)
            })
            .map(|d| d.name().to_owned());
        let Some(dim_name) = target else { continue }; // unknown: error later
        cur = ops::s_aggregate(&cur, &dim_name, name)?;
        rewritten[i] = dim_name;
    }
    match &mut q.grouping {
        Grouping::Plain(d) | Grouping::Cube(d) | Grouping::Rollup(d) => *d = rewritten,
        Grouping::None => {}
    }
    Ok((cur, q))
}

/// Executes a parsed query against a statistical object (the binding of
/// the query's FROM name to `obj` is the caller's affair).
pub fn execute(obj: &StatisticalObject, query: &Query) -> Result<ResultSet> {
    let mut root = trace::span("sql.execute");
    trace::counter("sql.queries", 1);
    if query.select.is_empty() {
        return Err(Error::InvalidSchema("empty SELECT list".into()));
    }
    // Result columns keep the user's names (level names included).
    let display_dims: Vec<String> = query.grouping.dims().to_vec();
    let plan_span = trace::span("sql.plan");
    // WHERE applies at the leaf level, before any level-name roll-up —
    // `WHERE store = 's1' GROUP BY city` filters the store first.
    let filtered_leaf = apply_filters(obj, query)?;
    let (obj, query) = resolve_level_groupings(&filtered_leaf, query)?;
    let obj = &obj;
    let query = &query;
    let measure_idx = check_aggregates(obj, query)?;
    drop(plan_span);
    let mut eval_span = trace::span("sql.eval");
    let filtered = obj.clone();

    let group_dims = query.grouping.dims().to_vec();
    // The grouping sets to emit, as boolean keep-masks over `group_dims`.
    let sets: Vec<Vec<bool>> = match &query.grouping {
        Grouping::None => vec![vec![]],
        Grouping::Plain(d) => vec![vec![true; d.len()]],
        Grouping::Cube(d) => {
            let n = d.len();
            (0..(1u32 << n))
                .rev()
                .map(|mask| (0..n).map(|i| mask & (1 << i) != 0).collect())
                .collect()
        }
        Grouping::Rollup(d) => {
            let n = d.len();
            (0..=n).rev().map(|k| (0..n).map(|i| i < k).collect()).collect()
        }
    };

    // Reduce to the grouping dimensions once; derive each grouping set
    // from that base.
    let mut base = filtered;
    let all_dims: Vec<String> =
        base.schema().dimensions().iter().map(|d| d.name().to_owned()).collect();
    for dim in &all_dims {
        if !group_dims.contains(dim) {
            base = ops::s_project_unchecked(&base, dim)?;
        }
    }

    let mut rows = Vec::new();
    for set in &sets {
        let mut cur = base.clone();
        for (i, keep) in set.iter().enumerate() {
            if !keep {
                cur = ops::s_project_unchecked(&cur, &group_dims[i])?;
            }
        }
        for (coords, states) in cur.cells_sorted() {
            let names = cur.schema().names_of(coords)?;
            // Map kept-dim names back into GROUP BY order with ALL gaps.
            let mut group = Vec::with_capacity(group_dims.len());
            let mut cursor = 0;
            for (i, keep) in set.iter().enumerate() {
                if *keep {
                    let pos = cur.schema().dim_index(&group_dims[i])?;
                    let _ = pos;
                    group.push(Some(names[cursor].to_owned()));
                    cursor += 1;
                } else {
                    group.push(None);
                }
            }
            let values: Vec<Option<f64>> = query
                .select
                .iter()
                .zip(&measure_idx)
                // Defensive `get`: `measure_idx` is validated against the
                // schema, but a user query must never be able to panic the
                // executor — a missing state reads as NULL.
                .map(|(agg, &m)| states.get(m).and_then(|s| s.value(agg.func)))
                .collect();
            rows.push(ResultRow { group, values });
        }
    }
    eval_span.record("grouping_sets", sets.len() as u64);
    eval_span.record("rows", rows.len() as u64);
    drop(eval_span);
    root.record("rows", rows.len() as u64);

    Ok(ResultSet {
        group_columns: display_dims,
        agg_columns: query.select.iter().map(|a| a.to_sql()).collect(),
        rows,
    })
}

/// Parses and executes in one step.
pub fn execute_str(obj: &StatisticalObject, sql: &str) -> Result<ResultSet> {
    execute(obj, &crate::parser::parse(sql)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use statcube_core::dimension::Dimension;
    use statcube_core::measure::{MeasureKind, SummaryAttribute, SummaryFunction};
    use statcube_core::schema::Schema;

    fn census() -> StatisticalObject {
        let schema = Schema::builder("census")
            .dimension(Dimension::spatial("state", ["AL", "CA"]))
            .dimension(Dimension::temporal("year", ["1990", "1991"]))
            .dimension(Dimension::categorical("sex", ["male", "female"]))
            .measure(SummaryAttribute::new("population", MeasureKind::Stock))
            .measure(SummaryAttribute::new("births", MeasureKind::Flow))
            .function(SummaryFunction::Sum)
            .build()
            .unwrap();
        let mut o = StatisticalObject::empty(schema);
        let data: &[(&str, &str, &str, f64, f64)] = &[
            ("AL", "1990", "male", 100.0, 3.0),
            ("AL", "1990", "female", 110.0, 4.0),
            ("AL", "1991", "male", 102.0, 5.0),
            ("CA", "1990", "male", 400.0, 11.0),
            ("CA", "1990", "female", 410.0, 12.0),
            ("CA", "1991", "female", 420.0, 13.0),
        ];
        for (s, y, x, pop, births) in data {
            o.insert_row(&[s, y, x], &[*pop, *births]).unwrap();
        }
        o
    }

    fn find<'a>(rs: &'a ResultSet, group: &[Option<&str>]) -> Option<&'a ResultRow> {
        rs.rows.iter().find(|r| {
            r.group.len() == group.len()
                && r.group.iter().zip(group).all(|(a, b)| a.as_deref() == *b)
        })
    }

    #[test]
    fn plain_group_by() {
        let rs = execute_str(
            &census(),
            "SELECT SUM(population) FROM census WHERE year = '1990' GROUP BY state",
        )
        .unwrap();
        assert_eq!(rs.rows.len(), 2);
        assert_eq!(find(&rs, &[Some("AL")]).unwrap().values[0], Some(210.0));
        assert_eq!(find(&rs, &[Some("CA")]).unwrap().values[0], Some(810.0));
    }

    #[test]
    fn cube_emits_all_groupings_with_all() {
        let rs = execute_str(&census(), "SELECT SUM(births) FROM census GROUP BY CUBE(state, sex)")
            .unwrap();
        // Groupings: (state,sex)=4 rows, (state)=2, (sex)=2, ()=1.
        assert_eq!(rs.rows.len(), 9);
        assert_eq!(find(&rs, &[None, None]).unwrap().values[0], Some(48.0));
        assert_eq!(find(&rs, &[Some("CA"), None]).unwrap().values[0], Some(36.0));
        assert_eq!(find(&rs, &[None, Some("male")]).unwrap().values[0], Some(19.0));
        assert_eq!(find(&rs, &[Some("AL"), Some("female")]).unwrap().values[0], Some(4.0));
    }

    #[test]
    fn rollup_emits_prefixes_only() {
        let rs =
            execute_str(&census(), "SELECT SUM(births) FROM census GROUP BY ROLLUP(state, sex)")
                .unwrap();
        // (state,sex)=4, (state)=2, ()=1.
        assert_eq!(rs.rows.len(), 7);
        assert!(find(&rs, &[None, Some("male")]).is_none());
        assert_eq!(find(&rs, &[Some("AL"), None]).unwrap().values[0], Some(12.0));
    }

    #[test]
    fn multiple_aggregates_and_count_star() {
        let rs = execute_str(
            &census(),
            "SELECT SUM(births), AVG(births), COUNT(*), MIN(births), MAX(births) \
             FROM census GROUP BY state",
        )
        .unwrap();
        let al = find(&rs, &[Some("AL")]).unwrap();
        assert_eq!(al.values, vec![Some(12.0), Some(4.0), Some(3.0), Some(3.0), Some(5.0)]);
    }

    #[test]
    fn negated_filter_and_unknown_member() {
        let rs = execute_str(
            &census(),
            "SELECT SUM(births) FROM census WHERE sex <> 'male' GROUP BY state",
        )
        .unwrap();
        assert_eq!(find(&rs, &[Some("CA")]).unwrap().values[0], Some(25.0));
        // Unknown member: empty result, not an error (SQL semantics).
        let rs = execute_str(
            &census(),
            "SELECT SUM(births) FROM census WHERE state = 'TX' GROUP BY state",
        )
        .unwrap();
        assert!(rs.rows.is_empty());
    }

    #[test]
    fn summarizability_is_per_aggregate() {
        // SUM(population) over the temporal dimension: refused.
        let err = execute_str(&census(), "SELECT SUM(population) FROM census GROUP BY state");
        assert!(matches!(err, Err(Error::Summarizability(_))));
        // AVG(population) over the same grouping: fine.
        let rs =
            execute_str(&census(), "SELECT AVG(population) FROM census GROUP BY state").unwrap();
        assert_eq!(find(&rs, &[Some("AL")]).unwrap().values[0], Some(104.0));
        // SUM(population) grouped by year (time kept): fine.
        let rs =
            execute_str(&census(), "SELECT SUM(population) FROM census GROUP BY year").unwrap();
        assert_eq!(find(&rs, &[Some("1990")]).unwrap().values[0], Some(1020.0));
        // SUM(births) — a flow — over time: fine.
        assert!(execute_str(&census(), "SELECT SUM(births) FROM census").is_ok());
        // CUBE including population sums must also be refused (the apex
        // aggregates over time).
        let err =
            execute_str(&census(), "SELECT SUM(population) FROM census GROUP BY CUBE(state, year)");
        assert!(matches!(err, Err(Error::Summarizability(_))));
    }

    #[test]
    fn errors_for_unknown_names() {
        assert!(execute_str(&census(), "SELECT SUM(gdp) FROM census").is_err());
        assert!(execute_str(&census(), "SELECT SUM(births) FROM census GROUP BY planet").is_err());
        assert!(
            execute_str(&census(), "SELECT SUM(births) FROM census WHERE planet = 'x'").is_err()
        );
    }

    #[test]
    fn render_contains_all_and_values() {
        let rs = execute_str(&census(), "SELECT SUM(births) FROM census GROUP BY CUBE(state, sex)")
            .unwrap();
        let text = rs.render();
        assert!(text.contains("ALL"));
        assert!(text.contains("48.00"));
        assert!(text.contains("state"));
        assert!(text.contains("SUM(\"births\")"));
    }

    #[test]
    fn group_by_hierarchy_level_rolls_up() {
        use statcube_core::hierarchy::Hierarchy;
        let location = Hierarchy::builder("loc")
            .level("store")
            .level("city")
            .edge("s1", "seattle")
            .edge("s2", "seattle")
            .edge("s3", "portland")
            .build()
            .unwrap();
        let schema = Schema::builder("sales")
            .dimension(Dimension::classified("store", location))
            .dimension(Dimension::categorical("product", ["a", "b"]))
            .measure(SummaryAttribute::new("amount", MeasureKind::Flow))
            .build()
            .unwrap();
        let mut o = StatisticalObject::empty(schema);
        o.insert(&["s1", "a"], 10.0).unwrap();
        o.insert(&["s2", "a"], 5.0).unwrap();
        o.insert(&["s3", "b"], 7.0).unwrap();
        // GROUP BY the *city* level, not the store dimension.
        let rs = execute_str(&o, "SELECT SUM(amount) FROM sales GROUP BY city").unwrap();
        assert_eq!(rs.group_columns, vec!["city"]);
        assert_eq!(find(&rs, &[Some("seattle")]).unwrap().values[0], Some(15.0));
        assert_eq!(find(&rs, &[Some("portland")]).unwrap().values[0], Some(7.0));
        // Works inside CUBE too.
        let rs =
            execute_str(&o, "SELECT SUM(amount) FROM sales GROUP BY CUBE(city, product)").unwrap();
        assert_eq!(find(&rs, &[Some("seattle"), None]).unwrap().values[0], Some(15.0));
        assert_eq!(find(&rs, &[None, None]).unwrap().values[0], Some(22.0));
        // Unknown names still error.
        assert!(execute_str(&o, "SELECT SUM(amount) FROM sales GROUP BY galaxy").is_err());
        // Leaf-level WHERE composes with level grouping: only s1 counts.
        let rs = execute_str(&o, "SELECT SUM(amount) FROM sales WHERE store = 's1' GROUP BY city")
            .unwrap();
        assert_eq!(find(&rs, &[Some("seattle")]).unwrap().values[0], Some(10.0));
        assert!(find(&rs, &[Some("portland")]).is_none());
    }

    #[test]
    fn grand_total_without_group_by() {
        let rs = execute_str(&census(), "SELECT COUNT(*) FROM census").unwrap();
        assert_eq!(rs.rows.len(), 1);
        assert!(rs.rows[0].group.is_empty());
        assert_eq!(rs.rows[0].values[0], Some(6.0));
    }
}
