//! Abstract syntax for the query dialect.

use statcube_core::measure::SummaryFunction;

/// An aggregate expression in the SELECT list.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct AggExpr {
    /// The aggregate function.
    pub func: SummaryFunction,
    /// The measure name, or `None` for `COUNT(*)`.
    pub arg: Option<String>,
}

impl AggExpr {
    /// Renders back to SQL text.
    pub fn to_sql(&self) -> String {
        let func = self.func.to_string().to_uppercase();
        match &self.arg {
            Some(m) => format!("{func}(\"{m}\")"),
            None => format!("{func}(*)"),
        }
    }
}

/// One equality/inequality predicate of the WHERE conjunction.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Predicate {
    /// Dimension name.
    pub column: String,
    /// Compared member value.
    pub value: String,
    /// True for `<>`.
    pub negated: bool,
}

impl Predicate {
    /// Renders back to SQL text.
    pub fn to_sql(&self) -> String {
        format!(
            "\"{}\" {} '{}'",
            self.column,
            if self.negated { "<>" } else { "=" },
            self.value.replace('\'', "''")
        )
    }
}

/// The GROUP BY clause.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Grouping {
    /// No GROUP BY: a single grand-total row.
    None,
    /// `GROUP BY a, b`.
    Plain(Vec<String>),
    /// `GROUP BY CUBE(a, b)` — all `2^n` groupings ([GB+96]).
    Cube(Vec<String>),
    /// `GROUP BY ROLLUP(a, b)` — the `n+1` prefix groupings.
    Rollup(Vec<String>),
}

impl Grouping {
    /// The dimensions mentioned, in order.
    pub fn dims(&self) -> &[String] {
        match self {
            Grouping::None => &[],
            Grouping::Plain(d) | Grouping::Cube(d) | Grouping::Rollup(d) => d,
        }
    }
}

/// A parsed query.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Query {
    /// The SELECT aggregates, in order.
    pub select: Vec<AggExpr>,
    /// The FROM table name (bound to a statistical object at execution).
    pub from: String,
    /// The WHERE conjunction.
    pub filters: Vec<Predicate>,
    /// The GROUP BY clause.
    pub grouping: Grouping,
}

impl Query {
    /// Renders back to (canonical) SQL text.
    pub fn to_sql(&self) -> String {
        let mut out = format!(
            "SELECT {} FROM \"{}\"",
            self.select.iter().map(AggExpr::to_sql).collect::<Vec<_>>().join(", "),
            self.from
        );
        if !self.filters.is_empty() {
            out.push_str(" WHERE ");
            out.push_str(
                &self.filters.iter().map(Predicate::to_sql).collect::<Vec<_>>().join(" AND "),
            );
        }
        let quote =
            |ds: &[String]| ds.iter().map(|d| format!("\"{d}\"")).collect::<Vec<_>>().join(", ");
        match &self.grouping {
            Grouping::None => {}
            Grouping::Plain(d) => out.push_str(&format!(" GROUP BY {}", quote(d))),
            Grouping::Cube(d) => out.push_str(&format!(" GROUP BY CUBE({})", quote(d))),
            Grouping::Rollup(d) => out.push_str(&format!(" GROUP BY ROLLUP({})", quote(d))),
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sql_rendering_round_trips_through_the_parser() {
        let q = Query {
            select: vec![
                AggExpr { func: SummaryFunction::Sum, arg: Some("quantity sold".into()) },
                AggExpr { func: SummaryFunction::Count, arg: None },
            ],
            from: "sales".into(),
            filters: vec![Predicate {
                column: "product".into(),
                value: "o'brien's".into(),
                negated: true,
            }],
            grouping: Grouping::Cube(vec!["store".into(), "day".into()]),
        };
        let sql = q.to_sql();
        assert!(sql.contains("SUM(\"quantity sold\")"));
        assert!(sql.contains("COUNT(*)"));
        assert!(sql.contains("<> 'o''brien''s'"));
        assert!(sql.contains("GROUP BY CUBE"));
        let reparsed = crate::parser::parse(&sql).unwrap();
        assert_eq!(reparsed, q);
    }

    #[test]
    fn grouping_dims() {
        assert!(Grouping::None.dims().is_empty());
        let g = Grouping::Rollup(vec!["a".into(), "b".into()]);
        assert_eq!(g.dims().len(), 2);
    }
}
