//! # statcube-sql
//!
//! A small SQL dialect with the `GROUP BY CUBE` / `ROLLUP` extensions of
//! \[GB+96\] (paper §5.4), executed against statistical objects.
//!
//! §5.4 makes two points this crate demonstrates in code:
//!
//! 1. Without CUBE, multidimensional summarization in SQL is "awkward and
//!    verbose" — one `GROUP BY` per grouping plus a union.
//!    [`parser::expand_cube_to_unions`] performs exactly that rewrite, so
//!    the verbosity is measurable (see experiment E08).
//! 2. The relational structure is "devoid of the semantics of statistical
//!    objects". Here the executor *keeps* those semantics: summarizability
//!    is enforced per requested aggregate, so `SUM(population) … GROUP BY
//!    state` over a time dimension is refused while `AVG(population)` is
//!    answered. And `GROUP BY` accepts *hierarchy level* names — `GROUP BY
//!    city` over a `store` dimension rolls up through the classification
//!    hierarchy first, the way a statistical object reads it.
//!
//! ```
//! use statcube_core::prelude::*;
//! use statcube_sql::execute_str;
//!
//! # fn main() -> Result<()> {
//! let schema = Schema::builder("sales")
//!     .dimension(Dimension::categorical("product", ["apple", "pear"]))
//!     .dimension(Dimension::categorical("store", ["s1", "s2"]))
//!     .measure(SummaryAttribute::new("amount", MeasureKind::Flow))
//!     .build()?;
//! let mut sales = StatisticalObject::empty(schema);
//! sales.insert(&["apple", "s1"], 10.0)?;
//! sales.insert(&["pear", "s2"], 5.0)?;
//!
//! let rs = execute_str(
//!     &sales,
//!     "SELECT SUM(amount), COUNT(*) FROM sales GROUP BY CUBE(product, store)",
//! )?;
//! assert_eq!(rs.rows.len(), 2 + 2 + 2 + 1); // base, by product, by store, apex
//! println!("{}", rs.render());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod exec;
pub mod parser;
pub mod physical;
pub mod token;

pub use exec::{
    execute, execute_str, execute_with_policy, explain, explain_str, explain_with_policy,
    plan_of_query, ResultRow, ResultSet,
};
pub use parser::{expand_cube_to_unions, parse};
pub use physical::{
    execute_physical, execute_physical_str, execute_physical_with_options, CachedSession,
    PhysicalAnswer,
};

/// The most commonly used items, for glob import. `Query` is re-exported
/// as `SqlQuery` to avoid clashing with
/// `statcube_core::auto_agg::Query` in combined preludes.
pub mod prelude {
    pub use crate::ast::{AggExpr, Grouping, Predicate, Query as SqlQuery};
    pub use crate::exec::{
        execute, execute_str, execute_with_policy, explain, explain_str, explain_with_policy,
        plan_of_query, ResultRow, ResultSet,
    };
    pub use crate::parser::{expand_cube_to_unions, parse};
    pub use crate::physical::{
        execute_physical, execute_physical_str, execute_physical_with_options, CachedSession,
        PhysicalAnswer,
    };
}
