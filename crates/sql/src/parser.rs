//! Recursive-descent parser for the query dialect.
//!
//! ```text
//! query    := SELECT agg (',' agg)* FROM ident
//!             [WHERE pred (AND pred)*]
//!             [GROUP BY grouping]
//! agg      := (SUM|COUNT|AVG|MIN|MAX) '(' (ident | '*') ')'
//! pred     := ident ('=' | '<>' | '!=') string
//! grouping := CUBE '(' idents ')' | ROLLUP '(' idents ')' | idents
//! ```

use statcube_core::error::{Error, Result};
use statcube_core::measure::SummaryFunction;
use statcube_core::trace;

use crate::ast::{AggExpr, Grouping, Predicate, Query};
use crate::token::{tokenize, Token};

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Result<Token> {
        let t = self
            .tokens
            .get(self.pos)
            .cloned()
            .ok_or_else(|| Error::InvalidSchema("unexpected end of query".into()))?;
        self.pos += 1;
        Ok(t)
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        let t = self.next()?;
        if t.is_kw(kw) {
            Ok(())
        } else {
            Err(Error::InvalidSchema(format!("expected `{kw}`, found `{t}`")))
        }
    }

    fn accept_kw(&mut self, kw: &str) -> bool {
        if self.peek().map(|t| t.is_kw(kw)).unwrap_or(false) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_tok(&mut self, t: &Token) -> Result<()> {
        let got = self.next()?;
        if got == *t {
            Ok(())
        } else {
            Err(Error::InvalidSchema(format!("expected `{t}`, found `{got}`")))
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.next()? {
            Token::Ident(s) => Ok(s),
            other => Err(Error::InvalidSchema(format!("expected identifier, found `{other}`"))),
        }
    }

    fn agg(&mut self) -> Result<AggExpr> {
        let name = self.ident()?;
        let func = match name.to_ascii_lowercase().as_str() {
            "sum" => SummaryFunction::Sum,
            "count" => SummaryFunction::Count,
            "avg" => SummaryFunction::Avg,
            "min" => SummaryFunction::Min,
            "max" => SummaryFunction::Max,
            other => {
                return Err(Error::InvalidSchema(format!(
                    "unknown aggregate function `{other}` (only count/sum/avg/min/max — \
                     the paper's §5.6 point; see statcube_core::stats for more)"
                )))
            }
        };
        self.expect_tok(&Token::LParen)?;
        let arg = match self.peek() {
            Some(Token::Star) => {
                self.pos += 1;
                if func != SummaryFunction::Count {
                    return Err(Error::InvalidSchema(format!(
                        "`*` only valid in COUNT, not {func}"
                    )));
                }
                None
            }
            _ => Some(self.ident()?),
        };
        self.expect_tok(&Token::RParen)?;
        Ok(AggExpr { func, arg })
    }

    fn predicate(&mut self) -> Result<Predicate> {
        let column = self.ident()?;
        let negated = match self.next()? {
            Token::Eq => false,
            Token::Ne => true,
            other => {
                return Err(Error::InvalidSchema(format!("expected `=` or `<>`, found `{other}`")))
            }
        };
        let value = match self.next()? {
            Token::Str(s) => s,
            Token::Number(n) => n.to_string(),
            other => {
                return Err(Error::InvalidSchema(format!("expected literal, found `{other}`")))
            }
        };
        Ok(Predicate { column, value, negated })
    }

    fn ident_list(&mut self) -> Result<Vec<String>> {
        let mut out = vec![self.ident()?];
        while self.peek() == Some(&Token::Comma) {
            self.pos += 1;
            out.push(self.ident()?);
        }
        Ok(out)
    }

    fn grouping(&mut self) -> Result<Grouping> {
        if self.accept_kw("cube") {
            self.expect_tok(&Token::LParen)?;
            let dims = self.ident_list()?;
            self.expect_tok(&Token::RParen)?;
            return Ok(Grouping::Cube(dims));
        }
        if self.accept_kw("rollup") {
            self.expect_tok(&Token::LParen)?;
            let dims = self.ident_list()?;
            self.expect_tok(&Token::RParen)?;
            return Ok(Grouping::Rollup(dims));
        }
        Ok(Grouping::Plain(self.ident_list()?))
    }

    fn query(&mut self) -> Result<Query> {
        self.expect_kw("select")?;
        let mut select = vec![self.agg()?];
        while self.peek() == Some(&Token::Comma) {
            self.pos += 1;
            select.push(self.agg()?);
        }
        self.expect_kw("from")?;
        let from = self.ident()?;
        let mut filters = Vec::new();
        if self.accept_kw("where") {
            filters.push(self.predicate()?);
            while self.accept_kw("and") {
                filters.push(self.predicate()?);
            }
        }
        let grouping = if self.accept_kw("group") {
            self.expect_kw("by")?;
            self.grouping()?
        } else {
            Grouping::None
        };
        if let Some(t) = self.peek() {
            return Err(Error::InvalidSchema(format!("trailing input at `{t}`")));
        }
        // Reject duplicate grouping dimensions up front.
        let dims = grouping.dims();
        for (i, d) in dims.iter().enumerate() {
            if dims[..i].contains(d) {
                return Err(Error::InvalidSchema(format!("dimension `{d}` grouped twice")));
            }
        }
        Ok(Query { select, from, filters, grouping })
    }
}

/// Parses one query.
pub fn parse(input: &str) -> Result<Query> {
    let tokens = {
        let mut sp = trace::span("sql.tokenize");
        sp.record("bytes", input.len() as u64);
        let tokens = tokenize(input)?;
        sp.record("tokens", tokens.len() as u64);
        tokens
    };
    let _sp = trace::span("sql.parse");
    Parser { tokens, pos: 0 }.query()
}

/// Rewrites a `GROUP BY CUBE` query into the equivalent union of plain
/// GROUP BY queries — the "awkward and verbose" SQL the CUBE operator
/// replaces (§5.4). Returns one SQL string per grouping, finest first.
pub fn expand_cube_to_unions(query: &Query) -> Result<Vec<String>> {
    let dims = match &query.grouping {
        Grouping::Cube(d) => d.clone(),
        other => {
            return Err(Error::InvalidSchema(format!(
                "expand_cube_to_unions needs GROUP BY CUBE, found {other:?}"
            )))
        }
    };
    let n = dims.len();
    let mut out = Vec::with_capacity(1 << n);
    for mask in (0..(1u32 << n)).rev() {
        let kept: Vec<String> = dims
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, d)| d.clone())
            .collect();
        let grouping = if kept.is_empty() { Grouping::None } else { Grouping::Plain(kept) };
        let q = Query { grouping, ..query.clone() };
        out.push(q.to_sql());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_gb96_example() {
        // The paper's §5.4 example: GROUP BY CUBE (state, year, sex).
        let q =
            parse("SELECT SUM(population) FROM census GROUP BY CUBE(state, year, sex)").unwrap();
        assert_eq!(q.from, "census");
        assert_eq!(q.grouping, Grouping::Cube(vec!["state".into(), "year".into(), "sex".into()]));
        assert_eq!(q.select[0].arg.as_deref(), Some("population"));
    }

    #[test]
    fn parses_filters_and_multiple_aggregates() {
        let q = parse(
            "SELECT AVG(income), COUNT(*) FROM census \
             WHERE state = 'CA' AND sex <> 'male' GROUP BY race",
        )
        .unwrap();
        assert_eq!(q.select.len(), 2);
        assert_eq!(q.filters.len(), 2);
        assert!(q.filters[1].negated);
        assert_eq!(q.grouping, Grouping::Plain(vec!["race".into()]));
    }

    #[test]
    fn grand_total_and_rollup() {
        let q = parse("SELECT SUM(x) FROM t").unwrap();
        assert_eq!(q.grouping, Grouping::None);
        let q = parse("SELECT SUM(x) FROM t GROUP BY ROLLUP(a, b)").unwrap();
        assert_eq!(q.grouping, Grouping::Rollup(vec!["a".into(), "b".into()]));
    }

    #[test]
    fn rejects_malformed_queries() {
        assert!(parse("SELECT FROM t").is_err());
        assert!(parse("SELECT SUM(x) FROM").is_err());
        assert!(parse("SELECT MEDIAN(x) FROM t").is_err());
        assert!(parse("SELECT SUM(*) FROM t").is_err());
        assert!(parse("SELECT SUM(x) FROM t WHERE a = ").is_err());
        assert!(parse("SELECT SUM(x) FROM t GROUP BY CUBE(a, a)").is_err());
        assert!(parse("SELECT SUM(x) FROM t extra").is_err());
        assert!(parse("SELECT SUM(x) FROM t WHERE a LIKE 'b'").is_err());
    }

    #[test]
    fn expand_cube_produces_2n_queries() {
        let q =
            parse("SELECT SUM(sales) FROM t WHERE region = 'west' GROUP BY CUBE(a, b)").unwrap();
        let unions = expand_cube_to_unions(&q).unwrap();
        assert_eq!(unions.len(), 4);
        // Finest grouping first, grand total last; filter preserved in all.
        assert!(unions[0].contains("GROUP BY \"a\", \"b\""));
        assert!(!unions[3].contains("GROUP BY"));
        assert!(unions.iter().all(|u| u.contains("WHERE \"region\" = 'west'")));
        // Each expansion is itself parseable.
        for u in &unions {
            parse(u).unwrap();
        }
        // Non-CUBE queries are rejected.
        let plain = parse("SELECT SUM(sales) FROM t GROUP BY a").unwrap();
        assert!(expand_cube_to_unions(&plain).is_err());
    }

    #[test]
    fn quoted_identifiers() {
        let q = parse(
            "SELECT SUM(\"quantity sold\") FROM \"retail sales\" GROUP BY \"store location\"",
        )
        .unwrap();
        assert_eq!(q.from, "retail sales");
        assert_eq!(q.select[0].arg.as_deref(), Some("quantity sold"));
        assert_eq!(q.grouping, Grouping::Plain(vec!["store location".into()]));
    }
}
