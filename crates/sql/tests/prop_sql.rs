//! Property tests for the SQL layer: AST → SQL → AST round-trips, the
//! CUBE union-expansion always parses and covers exactly `2^n` groupings,
//! and the tokenizer/parser/executor never panic on arbitrary input —
//! every malformed query is a typed error.

use proptest::prelude::*;

use statcube_core::dimension::Dimension;
use statcube_core::measure::{MeasureKind, SummaryAttribute, SummaryFunction};
use statcube_core::object::StatisticalObject;
use statcube_core::schema::Schema;
use statcube_sql::ast::{AggExpr, Grouping, Predicate, Query};
use statcube_sql::token::tokenize;
use statcube_sql::{execute_str, expand_cube_to_unions, parse};

fn ident() -> impl Strategy<Value = String> {
    // Identifiers with spaces and mixed case, to exercise quoting.
    "[a-zA-Z][a-zA-Z0-9_]{0,8}( [a-zA-Z0-9_]{1,6})?".prop_map(|s| s)
}

fn agg() -> impl Strategy<Value = AggExpr> {
    let func = prop_oneof![
        Just(SummaryFunction::Sum),
        Just(SummaryFunction::Count),
        Just(SummaryFunction::Avg),
        Just(SummaryFunction::Min),
        Just(SummaryFunction::Max),
    ];
    (func, proptest::option::of(ident())).prop_map(|(func, arg)| match arg {
        Some(a) => AggExpr { func, arg: Some(a) },
        // COUNT(*) is the only star form.
        None => AggExpr { func: SummaryFunction::Count, arg: None },
    })
}

fn predicate() -> impl Strategy<Value = Predicate> {
    // Values may contain single quotes (escaped on rendering).
    (ident(), "[a-z0-9' ]{1,10}", proptest::bool::ANY)
        .prop_map(|(column, value, negated)| Predicate { column, value, negated })
}

fn distinct_dims(n: usize) -> impl Strategy<Value = Vec<String>> {
    proptest::collection::btree_set(ident(), 1..=n).prop_map(|set| set.into_iter().collect())
}

fn grouping() -> impl Strategy<Value = Grouping> {
    prop_oneof![
        Just(Grouping::None),
        distinct_dims(3).prop_map(Grouping::Plain),
        distinct_dims(3).prop_map(Grouping::Cube),
        distinct_dims(3).prop_map(Grouping::Rollup),
    ]
}

fn query() -> impl Strategy<Value = Query> {
    (
        proptest::collection::vec(agg(), 1..4),
        ident(),
        proptest::collection::vec(predicate(), 0..3),
        grouping(),
    )
        .prop_map(|(select, from, filters, grouping)| Query {
            select,
            from,
            filters,
            grouping,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn to_sql_parse_round_trips(q in query()) {
        let sql = q.to_sql();
        let reparsed = parse(&sql).unwrap_or_else(|e| panic!("{sql}: {e}"));
        prop_assert_eq!(reparsed, q);
    }

    #[test]
    fn cube_expansion_is_complete_and_parseable(
        select in proptest::collection::vec(agg(), 1..3),
        from in ident(),
        dims in distinct_dims(3),
    ) {
        let n = dims.len();
        let q = Query { select, from, filters: vec![], grouping: Grouping::Cube(dims) };
        let unions = expand_cube_to_unions(&q).unwrap();
        prop_assert_eq!(unions.len(), 1 << n);
        // Every expansion parses, none contains CUBE, and exactly one has
        // no GROUP BY (the grand total).
        let mut no_group = 0;
        for u in &unions {
            let parsed = parse(u).unwrap();
            prop_assert!(!matches!(parsed.grouping, Grouping::Cube(_)));
            if parsed.grouping == Grouping::None {
                no_group += 1;
            }
        }
        prop_assert_eq!(no_group, 1);
    }
}

/// A tiny object for executor fuzzing — what matters is that it has real
/// dimensions/measures for queries to accidentally hit.
fn fuzz_object() -> StatisticalObject {
    let schema = Schema::builder("t")
        .dimension(Dimension::categorical("a", ["x", "y"]))
        .dimension(Dimension::categorical("b", ["u", "v"]))
        .measure(SummaryAttribute::new("m", MeasureKind::Flow))
        .build()
        .expect("static schema is valid");
    let mut o = StatisticalObject::empty(schema);
    o.insert(&["x", "u"], 1.0).expect("static row is valid");
    o.insert(&["y", "v"], 2.0).expect("static row is valid");
    o
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    // The whole pipeline on arbitrary printable garbage: tokenize, parse,
    // and execute must return `Result`s, never panic. (The `let _ =` binds
    // discard the value — only absence of a panic is asserted.)
    #[test]
    fn pipeline_never_panics_on_arbitrary_input(s in "[ -~]{0,60}") {
        let _ = tokenize(&s);
        let _ = parse(&s);
        let _ = execute_str(&fuzz_object(), &s);
    }

    // Prefixed garbage reaches deeper into the parser than raw garbage
    // (it survives the first keyword checks).
    #[test]
    fn pipeline_never_panics_on_select_prefixed_input(s in "[ -~]{0,50}") {
        let q = format!("SELECT {s}");
        let _ = parse(&q);
        let _ = execute_str(&fuzz_object(), &q);
    }

    // Near-valid queries with fuzzed identifier/clause tails: the executor
    // sees well-formed ASTs naming nonexistent tables/columns/levels and
    // must answer with typed errors.
    #[test]
    fn executor_never_panics_on_near_valid_queries(
        col in "[a-zA-Z*()]{0,8}",
        tail in "[ -~]{0,30}",
    ) {
        let q = format!("SELECT SUM({col}) FROM t {tail}");
        let _ = execute_str(&fuzz_object(), &q);
        let q2 = format!("SELECT COUNT(*) FROM t GROUP BY CUBE({col}) {tail}");
        let _ = execute_str(&fuzz_object(), &q2);
    }

    // Unicode (non-ASCII) input exercises the tokenizer's byte/char
    // boundary handling.
    #[test]
    fn tokenizer_never_panics_on_unicode(s in "\\PC{0,24}") {
        let _ = tokenize(&s);
        let _ = parse(&s);
    }
}
