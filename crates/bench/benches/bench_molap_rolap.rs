//! E18 timing: MOLAP vs ROLAP full-cube computation across density.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use statcube_cube::input::FactInput;
use statcube_cube::{cube_op, molap, rolap};

fn make_input(rows: usize) -> FactInput {
    let cards = [32usize, 32, 32];
    let mut input = FactInput::new(&cards).expect("input");
    let mut x = 43u64;
    for _ in 0..rows {
        let coords: Vec<u32> = cards
            .iter()
            .map(|&c| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x % c as u64) as u32
            })
            .collect();
        input.push(&coords, (x % 1000) as f64).expect("push");
    }
    input
}

fn bench_engines(c: &mut Criterion) {
    let mut g = c.benchmark_group("cube_engines_32x32x32");
    g.sample_size(10);
    for rows in [1_000usize, 30_000, 300_000] {
        let input = make_input(rows);
        g.bench_with_input(BenchmarkId::new("molap_array", rows), &input, |b, i| {
            b.iter(|| black_box(molap::compute_molap(i).expect("molap")))
        });
        g.bench_with_input(BenchmarkId::new("rolap_sort", rows), &input, |b, i| {
            b.iter(|| black_box(rolap::compute_rolap(i)))
        });
        g.bench_with_input(BenchmarkId::new("rolap_hash", rows), &input, |b, i| {
            b.iter(|| black_box(cube_op::compute_shared(i)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);
