//! E08 timing: CUBE strategies (naive union-of-group-bys vs shared lattice
//! derivation vs ROLLUP) over retail facts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use statcube_cube::cube_op;
use statcube_cube::input::FactInput;
use statcube_workload::retail::{generate, RetailConfig};

fn facts(rows: usize) -> FactInput {
    let retail = generate(&RetailConfig {
        products: 40,
        categories: 8,
        cities: 4,
        stores_per_city: 3,
        days: 50,
        rows,
        seed: 8,
    });
    FactInput::from_object(&retail.object).expect("facts")
}

fn bench_cube(c: &mut Criterion) {
    let mut g = c.benchmark_group("cube_operator");
    g.sample_size(10);
    for rows in [5_000usize, 50_000] {
        let input = facts(rows);
        g.bench_with_input(BenchmarkId::new("naive_2n_groupbys", rows), &input, |b, i| {
            b.iter(|| black_box(cube_op::compute_naive(i)))
        });
        g.bench_with_input(BenchmarkId::new("shared_cube", rows), &input, |b, i| {
            b.iter(|| black_box(cube_op::compute_shared(i)))
        });
        g.bench_with_input(BenchmarkId::new("rollup", rows), &input, |b, i| {
            b.iter(|| black_box(cube_op::compute_rollup(i, &[0, 1, 2]).expect("rollup")))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_cube);
criterion_main!(benches);
