//! Core operator-algebra timing: S-select / S-project / S-aggregation /
//! automatic aggregation on retail-sized statistical objects, plus E15
//! view-store routing and E20 sampling.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use statcube_core::auto_agg::{execute, Query};
use statcube_core::ops;
use statcube_core::stats::reservoir_sample;
use statcube_cube::input::FactInput;
use statcube_cube::lattice::Lattice;
use statcube_cube::materialize::greedy_select;
use statcube_cube::query::ViewStore;
use statcube_workload::retail::{generate, Retail, RetailConfig};

fn retail() -> Retail {
    generate(&RetailConfig {
        products: 100,
        categories: 10,
        cities: 5,
        stores_per_city: 4,
        days: 60,
        rows: 50_000,
        seed: 21,
    })
}

fn bench_algebra(c: &mut Criterion) {
    let r = retail();
    let mut g = c.benchmark_group("statistical_algebra_50k_cells");
    g.sample_size(20);
    g.bench_function("s_select_10_products", |b| {
        let keep: Vec<&str> = r.products[..10].iter().map(String::as_str).collect();
        b.iter(|| black_box(ops::s_select(&r.object, "product", &keep).expect("select")))
    });
    g.bench_function("s_project_day", |b| {
        b.iter(|| black_box(ops::s_project(&r.object, "day").expect("project")))
    });
    g.bench_function("roll_up_product_to_category", |b| {
        b.iter(|| black_box(ops::s_aggregate(&r.object, "product", "category").expect("agg")))
    });
    g.bench_function("auto_aggregation_fig13_style", |b| {
        let q = Query::new()
            .at_level("product", "category", "cat00")
            .members("store", [r.stores[0].as_str()]);
        b.iter(|| black_box(execute(&r.object, &q).expect("auto agg")))
    });
    g.finish();
}

fn bench_views(c: &mut Criterion) {
    let r = retail();
    let facts = FactInput::from_object(&r.object).expect("facts");
    let lattice = Lattice::new(facts.cards(), facts.len() as u64).expect("lattice");
    let greedy = greedy_select(&lattice, 3).expect("greedy");
    let with_views = ViewStore::build(&facts, &greedy.selected).expect("views");
    let base_only = ViewStore::build(&facts, &[]).expect("base");
    let mut g = c.benchmark_group("view_store_query");
    g.sample_size(20);
    g.bench_function("base_only", |b| {
        b.iter(|| black_box(base_only.answer(0b001).expect("answer")))
    });
    g.bench_function("greedy_3_views", |b| {
        b.iter(|| black_box(with_views.answer(0b001).expect("answer")))
    });
    g.finish();
}

fn bench_sampling(c: &mut Criterion) {
    let values: Vec<f64> = (0..1_000_000).map(|i| (i as f64).sin() * 100.0).collect();
    let mut g = c.benchmark_group("sampling_1m");
    g.sample_size(20);
    g.bench_function("reservoir_1pct", |b| {
        b.iter(|| black_box(reservoir_sample(values.iter().copied(), 10_000, 9)))
    });
    g.bench_function("extract_then_sample", |b| {
        b.iter(|| {
            // The external-package path: copy everything out first.
            let copy: Vec<f64> = values.clone();
            black_box(reservoir_sample(copy, 10_000, 9))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_algebra, bench_views, bench_sampling);
criterion_main!(benches);
