//! The acceptance workload of the partition-parallel CUBE engine: a
//! 1M-row, 4-dimension fact table computed at thread counts 1, 2, 4 and
//! whatever the hardware offers. On a 4+ core machine the hardware-thread
//! run should finish in under half the 1-thread wall time; on fewer cores
//! the curve flattens but correctness (and this bench) still holds.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use statcube_cube::cube_op;
use statcube_cube::input::FactInput;

/// 1M facts over 4 dimensions (cards 100 × 50 × 20 × 10).
fn facts() -> FactInput {
    let cards = [100usize, 50, 20, 10];
    let mut input = FactInput::new(&cards).expect("input");
    let mut x = 0xD1CEu64;
    for _ in 0..1_000_000 {
        let coords: Vec<u32> = cards
            .iter()
            .map(|&c| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x % c as u64) as u32
            })
            .collect();
        input.push(&coords, (x % 1000) as f64).expect("push");
    }
    input
}

fn bench_parallel(c: &mut Criterion) {
    let input = facts();
    let hw = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let mut threads: Vec<usize> = vec![1, 2, 4];
    if !threads.contains(&hw) {
        threads.push(hw);
    }
    threads.sort_unstable();

    let mut g = c.benchmark_group("parallel_cube_1m_4d");
    g.sample_size(10);
    for &k in &threads {
        g.bench_with_input(BenchmarkId::new("compute_parallel", k), &input, |b, i| {
            b.iter(|| black_box(cube_op::compute_parallel(i, k)))
        });
    }
    g.bench_with_input(BenchmarkId::new("compute_shared", "seq"), &input, |b, i| {
        b.iter(|| black_box(cube_op::compute_shared(i)))
    });
    g.finish();
}

criterion_group!(benches, bench_parallel);
criterion_main!(benches);
