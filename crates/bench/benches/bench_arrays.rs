//! E16/E17 timing: chunked range queries and extendible-array appends;
//! plus the B+tree primitives both depend on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use statcube_storage::btree::BPlusTree;
use statcube_storage::chunked::ChunkedArray;
use statcube_storage::cubetree::CubeTree;
use statcube_storage::extendible::ExtendibleArray;

fn filled_chunked(side: usize) -> ChunkedArray {
    let mut a = ChunkedArray::symmetric(&[512, 512], side, 4096).expect("chunked");
    for i in (0..512).step_by(2) {
        for j in (0..512).step_by(2) {
            a.set(&[i, j], (i * 512 + j) as f64).expect("set");
        }
    }
    a
}

fn bench_chunked(c: &mut Criterion) {
    let mut g = c.benchmark_group("chunked_range_query_64x64");
    g.sample_size(20);
    for side in [512usize, 64, 16] {
        let a = filled_chunked(side);
        g.bench_with_input(BenchmarkId::new("chunk_side", side), &a, |b, a| {
            b.iter(|| black_box(a.range_sum(&[100, 100], &[164, 164]).expect("range")))
        });
    }
    g.finish();
}

fn bench_extendible(c: &mut Criterion) {
    let mut g = c.benchmark_group("extendible_array");
    g.sample_size(10);
    g.bench_function("append_day_2000_products", |b| {
        b.iter_with_setup(
            || ExtendibleArray::new(&[2000, 4], 4096).expect("array"),
            |mut a| {
                a.extend(1, 1).expect("extend");
                black_box(a)
            },
        )
    });
    g.bench_function("point_get_after_30_appends", |b| {
        let mut a = ExtendibleArray::new(&[2000, 1], 4096).expect("array");
        for _ in 0..30 {
            a.extend(1, 1).expect("extend");
        }
        a.set(&[1234, 17], 5.0).expect("set");
        b.iter(|| black_box(a.get(&[1234, 17]).expect("get")))
    });
    g.finish();
}

fn bench_btree(c: &mut Criterion) {
    let mut t = BPlusTree::new();
    for k in 0..100_000u64 {
        t.insert(k * 3, k);
    }
    let mut g = c.benchmark_group("bplustree_100k");
    g.bench_function("get", |b| {
        let mut k = 0u64;
        b.iter(|| {
            k = (k + 7919) % 300_000;
            black_box(t.get(k))
        })
    });
    g.bench_function("last_le", |b| {
        let mut k = 0u64;
        b.iter(|| {
            k = (k + 7919) % 300_000;
            black_box(t.last_le(k))
        })
    });
    g.bench_function("insert_1k", |b| {
        b.iter_with_setup(BPlusTree::new, |mut t| {
            for k in 0..1000u64 {
                t.insert(k * 2654435761 % 1_000_000, k);
            }
            black_box(t)
        })
    });
    g.finish();
}

fn bench_cubetree(c: &mut Criterion) {
    let points = |n: usize, seed: u64| -> Vec<(Vec<u32>, f64)> {
        let mut x = seed | 1;
        (0..n)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (vec![(x % 1000) as u32, ((x >> 9) % 1000) as u32], (x % 100) as f64)
            })
            .collect()
    };
    let base = points(100_000, 1);
    let tree = CubeTree::bulk_load(base.clone(), 2, 4096).expect("bulk load");
    let mut g = c.benchmark_group("cubetree_100k");
    g.sample_size(10);
    g.bench_function("bulk_load", |b| {
        b.iter(|| black_box(CubeTree::bulk_load(base.clone(), 2, 4096).expect("load")))
    });
    g.bench_function("bulk_update_5k", |b| {
        let batch = points(5_000, 7);
        b.iter_with_setup(
            || CubeTree::bulk_load(base.clone(), 2, 4096).expect("load"),
            |mut t| {
                t.bulk_update(batch.clone()).expect("update");
                black_box(t)
            },
        )
    });
    g.bench_function("range_query_50x50", |b| {
        b.iter(|| black_box(tree.range_sum(&[100, 100], &[150, 150]).expect("range")))
    });
    g.finish();
}

criterion_group!(benches, bench_chunked, bench_extendible, bench_btree, bench_cubetree);
criterion_main!(benches);
