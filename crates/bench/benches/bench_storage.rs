//! E11/E12/E14 timing: transposed vs row scans, bit-sliced predicate
//! evaluation, and header-compressed probes.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use statcube_storage::bittransposed::BitSlicedColumn;
use statcube_storage::column::TransposedStore;
use statcube_storage::header::HeaderCompressed;
use statcube_storage::io_stats::IoStats;
use statcube_storage::relation::Relation;
use statcube_storage::row::RowStore;
use statcube_workload::census::{generate, CensusConfig};

fn census_relation(rows: usize) -> Relation {
    let census = generate(&CensusConfig { rows, ..CensusConfig::default() });
    Relation::from_micro(&census.micro).expect("relation")
}

fn bench_scans(c: &mut Criterion) {
    let rel = census_relation(100_000);
    let row = RowStore::new(rel.clone(), 4096);
    let col = TransposedStore::new(rel.clone(), 4096);
    let preds = row.predicates(&[("sex", "male")]).expect("preds");
    let mut g = c.benchmark_group("summary_scan_100k");
    g.bench_function("row_store", |b| b.iter(|| black_box(row.sum_where(&preds, 0))));
    g.bench_function("transposed", |b| b.iter(|| black_box(col.sum_where(&preds, 0))));
    g.finish();
}

fn bench_bitsliced(c: &mut Criterion) {
    let rel = census_relation(100_000);
    let codes = rel.cat_column(rel.cat_index("county").expect("col")).to_vec();
    let sliced = BitSlicedColumn::build(&codes, 7).expect("sliced");
    let io = IoStats::new(4096);
    let mut g = c.benchmark_group("eq_scan_100k");
    g.bench_function("naive_u32", |b| {
        b.iter(|| black_box(codes.iter().filter(|&&x| x == 3).count()))
    });
    g.bench_function("bit_sliced", |b| {
        b.iter(|| black_box(BitSlicedColumn::count_ones(&sliced.eq_scan(3, &io))))
    });
    g.finish();
}

fn bench_header(c: &mut Criterion) {
    let mut dense = vec![f64::NAN; 1_000_000];
    for i in (0..1_000_000).step_by(100) {
        dense[i] = i as f64;
    }
    let h = HeaderCompressed::from_dense(&dense);
    let mut g = c.benchmark_group("header_compressed_1m");
    g.bench_function("point_get", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 7919) % 1_000_000;
            black_box(h.get(i))
        })
    });
    g.bench_function("range_sum_10k", |b| b.iter(|| black_box(h.range_sum(200_000, 210_000))));
    g.bench_function("dense_scan_10k", |b| {
        b.iter(|| black_box(dense[200_000..210_000].iter().filter(|v| !v.is_nan()).sum::<f64>()))
    });
    g.finish();
}

criterion_group!(benches, bench_scans, bench_bitsliced, bench_header);
criterion_main!(benches);
