//! Shared measurement harness for the serving-layer experiments (E25) and
//! the CI perf-regression gate (`perf_gate`).
//!
//! Both consumers need the same thing — drive a Zipf-skewed query stream
//! against a [`SharedViewStore`] and report hit rate, throughput, and the
//! latency distribution — so the workload construction and the measurement
//! loop live here, pinned: the gate compares numbers against a committed
//! baseline, which only means something if every run measures the identical
//! workload.

use std::sync::Mutex;
use std::time::Instant;

use statcube_core::plan::{CodedPredicate, PlannerConfig, PrivacyPolicy};
use statcube_core::trace::Histogram;
use statcube_cube::cache::CacheConfig;
use statcube_cube::input::FactInput;
use statcube_cube::lattice::Lattice;
use statcube_cube::materialize;
use statcube_cube::sharded::{ShardRouter, ShardedViewStore};
use statcube_cube::shared::{DurableParts, SharedViewStore};

/// Pinned workload: dimension cardinalities.
pub const CARDS: [usize; 4] = [10, 8, 5, 4];
/// Pinned workload: fact rows.
pub const ROWS: usize = 20_000;
/// Pinned workload: queries per stream.
pub const STREAM_LEN: usize = 400;
/// Pinned workload: Zipf skew of the query stream.
pub const ZIPF_S: f64 = 1.1;
/// Pinned workload: materialized views besides the base.
pub const GREEDY_VIEWS: usize = 4;
/// Pinned maintenance workload: rows per delta batch (E27, perf gate).
pub const DELTA_ROWS: usize = 20;

/// Pinned sharded workload: dimension cardinalities. Dimension 0 is the
/// shard key — wide (256 members) so a single-value slice is selective
/// and hash-routes evenly across any shard count up to 8.
pub const SHARD_CARDS: [usize; 4] = [256, 12, 8, 6];
/// Pinned sharded workload: fact rows. Dense enough that the base cuboid
/// fills most of its ~147k-cell ceiling, so scan cost tracks cell count
/// and dwarfs the per-query plan/merge constant.
pub const SHARD_ROWS: usize = 200_000;
/// Pinned sharded workload: slice queries per stream.
pub const SHARD_STREAM_LEN: usize = 400;
/// Pinned sharded workload: the perf gate's shard count.
pub const SHARD_N: usize = 4;

/// Deterministic xorshift fact table over [`CARDS`].
pub fn make_facts(seed: u64) -> FactInput {
    let mut input = FactInput::new(&CARDS).expect("input");
    let mut x = seed | 1;
    for _ in 0..ROWS {
        let coords: Vec<u32> = CARDS
            .iter()
            .map(|&c| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x % c as u64) as u32
            })
            .collect();
        input.push(&coords, (x % 1000) as f64).expect("push");
    }
    input
}

/// Builds the serving store: HRU-greedy views over the pinned lattice, a
/// cache with `budget` bytes (0 = the uncached baseline).
pub fn build_store(facts: &FactInput, budget: usize) -> SharedViewStore {
    let lattice = Lattice::new(facts.cards(), facts.len() as u64).expect("lattice");
    let greedy = materialize::greedy_select(&lattice, GREEDY_VIEWS).expect("greedy");
    let config =
        if budget == 0 { CacheConfig::disabled() } else { CacheConfig::with_budget(budget) };
    SharedViewStore::build(facts, &greedy.selected, config).expect("store")
}

/// [`build_store`] with the crash-consistent durability layer underneath:
/// the same greedy views over the same pinned workload, but every
/// `apply_delta` journals the batch (append + sync + commit stamp) on the
/// caller-supplied devices. E28 and the perf gate measure the journaling
/// overhead and recovery replay against this store.
pub fn build_durable_store(
    facts: &FactInput,
    budget: usize,
    parts: DurableParts,
) -> SharedViewStore {
    let lattice = Lattice::new(facts.cards(), facts.len() as u64).expect("lattice");
    let greedy = materialize::greedy_select(&lattice, GREEDY_VIEWS).expect("greedy");
    let config =
        if budget == 0 { CacheConfig::disabled() } else { CacheConfig::with_budget(budget) };
    SharedViewStore::build_durable_on(facts, &greedy.selected, config, parts).expect("store")
}

/// Deterministic delta batches over [`CARDS`], [`DELTA_ROWS`] rows each —
/// the pinned maintenance stream E27 and the perf gate replay.
pub fn delta_batches(seed: u64, batches: usize) -> Vec<FactInput> {
    let mut x = seed | 1;
    (0..batches)
        .map(|_| {
            let mut d = FactInput::new(&CARDS).expect("delta");
            for _ in 0..DELTA_ROWS {
                let coords: Vec<u32> = CARDS
                    .iter()
                    .map(|&c| {
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        (x % c as u64) as u32
                    })
                    .collect();
                d.push(&coords, (x % 1000) as f64).expect("push");
            }
            d
        })
        .collect()
}

/// Deterministic xorshift fact table over [`SHARD_CARDS`] — the pinned
/// sharded serving workload (E30, perf gate).
pub fn make_shard_facts(seed: u64) -> FactInput {
    let mut input = FactInput::new(&SHARD_CARDS).expect("input");
    let mut x = seed | 1;
    for _ in 0..SHARD_ROWS {
        let coords: Vec<u32> = SHARD_CARDS
            .iter()
            .map(|&c| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x % c as u64) as u32
            })
            .collect();
        input.push(&coords, (x % 1000) as f64).expect("push");
    }
    input
}

/// Builds the sharded serving store: hash-routed on dimension 0, base
/// view only, cache disabled — every query pays its scan, so throughput
/// measures the scatter/prune/merge machinery and nothing else.
pub fn build_sharded_store(facts: &FactInput, n: usize) -> ShardedViewStore {
    ShardedViewStore::build(facts, &[], ShardRouter::Hash { dim: 0 }, n, CacheConfig::disabled())
        .expect("sharded store")
}

/// A slice-query stream over the sharded workload: each entry is a
/// `(mask, value)` pair — answer cuboid `mask` restricted to rows whose
/// shard-key coordinate equals `value`. Masks are Zipf-ranked like
/// [`zipf_stream`]; values sweep the shard-key domain uniformly, so every
/// shard takes its share of the stream. Deterministic in `seed`.
pub fn shard_slice_stream(len: usize, seed: u64) -> Vec<(u32, u32)> {
    let masks = zipf_stream((1u32 << SHARD_CARDS.len()) - 1, len, ZIPF_S, seed);
    let mut x = seed.wrapping_mul(0x9E37_79B9) | 1;
    masks
        .into_iter()
        .map(|mask| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            (mask, (x % SHARD_CARDS[0] as u64) as u32)
        })
        .collect()
}

/// Answers a slice-query stream through the sharded scatter at the
/// block level ([`ShardedViewStore::execute_filtered`] — the layer a SQL
/// session consumes, with no cuboid-map projection on top), one query at
/// a time. Every answer must be complete — a dead shard would invalidate
/// the measurement, not degrade it. Hit rate is reported as 0: the
/// sharded serving store runs cache-disabled by construction.
pub fn run_shard_stream(store: &ShardedViewStore, stream: &[(u32, u32)]) -> StreamStats {
    let mut latencies = Vec::with_capacity(stream.len());
    let t0 = Instant::now();
    for &(mask, value) in stream {
        let filter = [CodedPredicate { dim: 0, allowed: vec![value] }];
        let t = Instant::now();
        let (exec, _) = store
            .execute_filtered(mask, &filter, &PrivacyPolicy::none(), PlannerConfig::default())
            .expect("answer");
        latencies.push(t.elapsed().as_nanos() as u64);
        assert_eq!(exec.missing_shards, 0, "serving stream must see only complete answers");
    }
    let wall_ns = t0.elapsed().as_nanos() as u64;
    stats_of(&mut latencies, wall_ns, 0.0)
}

/// Deterministic delta batches over [`SHARD_CARDS`], [`DELTA_ROWS`] rows
/// each — the sharded maintenance stream (E30).
pub fn shard_delta_batches(seed: u64, batches: usize) -> Vec<FactInput> {
    let mut x = seed | 1;
    (0..batches)
        .map(|_| {
            let mut d = FactInput::new(&SHARD_CARDS).expect("delta");
            for _ in 0..DELTA_ROWS {
                let coords: Vec<u32> = SHARD_CARDS
                    .iter()
                    .map(|&c| {
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        (x % c as u64) as u32
                    })
                    .collect();
                d.push(&coords, (x % 1000) as f64).expect("push");
            }
            d
        })
        .collect()
}

/// A Zipf-skewed cuboid-mask stream: masks ranked by a seeded shuffle, rank
/// `r` drawn with probability ∝ `1/r^s`. Deterministic in `seed`.
pub fn zipf_stream(top: u32, len: usize, s: f64, seed: u64) -> Vec<u32> {
    let n = top as usize + 1;
    // Seeded shuffle so popularity isn't correlated with mask arity.
    let mut ranked: Vec<u32> = (0..=top).collect();
    let mut x = seed | 1;
    let mut next = move || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x
    };
    for i in (1..n).rev() {
        ranked.swap(i, (next() % (i as u64 + 1)) as usize);
    }
    // Cumulative Zipf weights over ranks 1..=n.
    let mut cdf = Vec::with_capacity(n);
    let mut acc = 0.0;
    for r in 1..=n {
        acc += 1.0 / (r as f64).powf(s);
        cdf.push(acc);
    }
    let total = acc;
    (0..len)
        .map(|_| {
            let u = (next() >> 11) as f64 / (1u64 << 53) as f64 * total;
            let idx = cdf.partition_point(|&c| c < u).min(n - 1);
            ranked[idx]
        })
        .collect()
}

/// What one measured stream produced.
#[derive(Debug, Clone, Copy)]
pub struct StreamStats {
    /// Queries answered.
    pub queries: u64,
    /// Total wall time for the stream, nanoseconds.
    pub wall_ns: u64,
    /// Cache hit rate over the stream's probes.
    pub hit_rate: f64,
    /// Aggregate throughput, queries per second.
    pub ops_per_sec: f64,
    /// Exact median per-query latency, nanoseconds.
    pub median_ns: u64,
    /// p50 from the log₂ latency histogram (2× resolution).
    pub p50_ns: u64,
    /// p95 from the log₂ latency histogram (2× resolution).
    pub p95_ns: u64,
    /// p99 from the log₂ latency histogram (2× resolution) — the tail the
    /// mixed read/write experiments watch for reader stalls.
    pub p99_ns: u64,
}

fn stats_of(latencies: &mut [u64], wall_ns: u64, hit_rate: f64) -> StreamStats {
    let mut hist = Histogram::default();
    for &l in latencies.iter() {
        hist.record(l);
    }
    latencies.sort_unstable();
    let queries = latencies.len() as u64;
    StreamStats {
        queries,
        wall_ns,
        hit_rate,
        ops_per_sec: queries as f64 / (wall_ns as f64 / 1e9).max(1e-12),
        median_ns: latencies.get(latencies.len() / 2).copied().unwrap_or(0),
        p50_ns: hist.quantile(0.5),
        p95_ns: hist.quantile(0.95),
        p99_ns: hist.quantile(0.99),
    }
}

/// Hit rate accumulated by `store` since the `(hits, misses)` snapshot.
fn hit_rate_since(store: &SharedViewStore, before: (u64, u64)) -> f64 {
    let s = store.cache_stats();
    let probes = (s.hits - before.0) + (s.misses - before.1);
    if probes == 0 {
        0.0
    } else {
        (s.hits - before.0) as f64 / probes as f64
    }
}

/// Answers the stream on the calling thread, one query at a time.
pub fn run_stream(store: &SharedViewStore, stream: &[u32]) -> StreamStats {
    let before = {
        let s = store.cache_stats();
        (s.hits, s.misses)
    };
    let mut latencies = Vec::with_capacity(stream.len());
    let t0 = Instant::now();
    for &mask in stream {
        let t = Instant::now();
        let ans = store.answer(mask).expect("answer");
        latencies.push(t.elapsed().as_nanos() as u64);
        assert!(!ans.cuboid.is_empty() || mask != store.top(), "base cuboid cannot be empty");
    }
    let wall_ns = t0.elapsed().as_nanos() as u64;
    stats_of(&mut latencies, wall_ns, hit_rate_since(store, before))
}

/// Answers the stream from `threads` reader threads sharing one store;
/// thread `t` starts at offset `t` into the stream (same multiset of
/// queries, different interleaving). Wall time spans all threads.
pub fn run_stream_threads(store: &SharedViewStore, stream: &[u32], threads: usize) -> StreamStats {
    let before = {
        let s = store.cache_stats();
        (s.hits, s.misses)
    };
    let all = Mutex::new(Vec::with_capacity(stream.len() * threads));
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..threads {
            let store = store.clone();
            let all = &all;
            scope.spawn(move || {
                let mut latencies = Vec::with_capacity(stream.len());
                for i in 0..stream.len() {
                    let mask = stream[(i + t) % stream.len()];
                    let q = Instant::now();
                    store.answer(mask).expect("answer");
                    latencies.push(q.elapsed().as_nanos() as u64);
                }
                all.lock().unwrap_or_else(|p| p.into_inner()).extend(latencies);
            });
        }
    });
    let wall_ns = t0.elapsed().as_nanos() as u64;
    let mut latencies = all.into_inner().unwrap_or_else(|p| p.into_inner());
    stats_of(&mut latencies, wall_ns, hit_rate_since(store, before))
}

/// Answers the stream from `threads` reader threads while one writer thread
/// repeatedly calls `write_batch(k)` (k = 0, 1, 2, …) until every reader is
/// done. Readers are measured exactly as in [`run_stream_threads`]; the
/// second return value is how many batches the writer published. The
/// epoch-snapshot design promises the writer never stalls a reader, so the
/// reader stats here are directly comparable to a read-only run.
pub fn run_stream_threads_with_writer(
    store: &SharedViewStore,
    stream: &[u32],
    threads: usize,
    mut write_batch: impl FnMut(u64) + Send,
) -> (StreamStats, u64) {
    use std::sync::atomic::{AtomicBool, Ordering};

    let before = {
        let s = store.cache_stats();
        (s.hits, s.misses)
    };
    let stop = AtomicBool::new(false);
    let all = Mutex::new(Vec::with_capacity(stream.len() * threads));
    let mut batches = 0u64;
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        let stop = &stop;
        let writer = scope.spawn(move || {
            let mut k = 0u64;
            while !stop.load(Ordering::Acquire) {
                write_batch(k);
                k += 1;
            }
            k
        });
        let readers: Vec<_> = (0..threads)
            .map(|t| {
                let store = store.clone();
                let all = &all;
                scope.spawn(move || {
                    let mut latencies = Vec::with_capacity(stream.len());
                    for i in 0..stream.len() {
                        let mask = stream[(i + t) % stream.len()];
                        let q = Instant::now();
                        store.answer(mask).expect("answer");
                        latencies.push(q.elapsed().as_nanos() as u64);
                    }
                    all.lock().unwrap_or_else(|p| p.into_inner()).extend(latencies);
                })
            })
            .collect();
        for r in readers {
            if let Err(p) = r.join() {
                stop.store(true, Ordering::Release);
                std::panic::resume_unwind(p);
            }
        }
        stop.store(true, Ordering::Release);
        batches = match writer.join() {
            Ok(k) => k,
            Err(p) => std::panic::resume_unwind(p),
        };
    });
    let wall_ns = t0.elapsed().as_nanos() as u64;
    let mut latencies = all.into_inner().unwrap_or_else(|p| p.into_inner());
    (stats_of(&mut latencies, wall_ns, hit_rate_since(store, before)), batches)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_stream_is_deterministic_and_skewed() {
        let a = zipf_stream(15, 1000, ZIPF_S, 7);
        let b = zipf_stream(15, 1000, ZIPF_S, 7);
        assert_eq!(a, b, "same seed, same stream");
        assert_ne!(a, zipf_stream(15, 1000, ZIPF_S, 8), "seed matters");
        assert!(a.iter().all(|&m| m <= 15));
        // Skew: the most popular mask dominates a uniform share.
        let mut counts = [0usize; 16];
        for &m in &a {
            counts[m as usize] += 1;
        }
        let max = counts.iter().max().copied().unwrap_or(0);
        assert!(max > 1000 / 16 * 3, "hottest mask ({max}) should far exceed uniform");
        // Every mask still appears somewhere in a long stream... not
        // guaranteed for the coldest ranks; at least half must.
        assert!(counts.iter().filter(|&&c| c > 0).count() >= 8);
    }

    #[test]
    fn streams_measure_hits_and_throughput() {
        let facts = make_facts(3);
        let store = build_store(&facts, 16 << 20);
        let stream = zipf_stream(store.top(), 120, ZIPF_S, 5);
        let s = run_stream(&store, &stream);
        assert_eq!(s.queries, 120);
        assert!(s.hit_rate > 0.5, "warm cache should mostly hit: {}", s.hit_rate);
        assert!(s.ops_per_sec > 0.0);
        assert!(s.median_ns > 0);
        assert!(s.p95_ns >= s.p50_ns);
        let t = run_stream_threads(&store, &stream, 4);
        assert_eq!(t.queries, 480);
        assert!(t.hit_rate > 0.9, "fully warm shared cache: {}", t.hit_rate);
    }

    #[test]
    fn writer_harness_publishes_batches_while_readers_run() {
        let facts = make_facts(3);
        let store = build_store(&facts, 16 << 20);
        let stream = zipf_stream(store.top(), 60, ZIPF_S, 5);
        let batches = delta_batches(9, 8);
        let (s, published) = run_stream_threads_with_writer(&store, &stream, 2, |k| {
            store.apply_delta(&batches[(k as usize) % batches.len()]).expect("delta");
        });
        assert_eq!(s.queries, 120);
        assert!(s.p99_ns >= s.p95_ns);
        assert!(published > 0, "writer must publish at least one batch");
        assert_eq!(store.generation(), published, "every batch is one publication");
    }

    #[test]
    fn delta_batches_are_deterministic() {
        let a = delta_batches(4, 3);
        let b = delta_batches(4, 3);
        assert_eq!(a, b);
        assert!(a.iter().all(|d| d.len() == DELTA_ROWS));
    }

    #[test]
    fn shard_stream_is_deterministic_and_in_domain() {
        let a = shard_slice_stream(200, 11);
        let b = shard_slice_stream(200, 11);
        assert_eq!(a, b, "same seed, same stream");
        assert_ne!(a, shard_slice_stream(200, 12), "seed matters");
        assert!(a.iter().all(|&(m, v)| m < 16 && (v as usize) < SHARD_CARDS[0]));
        // The value sweep must touch most of the shard-key domain, so a
        // hash router sees traffic on every shard.
        let distinct: std::collections::HashSet<u32> = a.iter().map(|&(_, v)| v).collect();
        assert!(distinct.len() > SHARD_CARDS[0] / 2, "values too clustered: {}", distinct.len());
    }

    #[test]
    fn sharded_serving_answers_slices_completely() {
        let facts = make_shard_facts(3);
        let sharded = build_sharded_store(&facts, SHARD_N);
        assert_eq!(sharded.shard_count(), SHARD_N);
        let stream = shard_slice_stream(24, 7);
        let s = run_shard_stream(&sharded, &stream);
        assert_eq!(s.queries, 24);
        assert_eq!(s.hit_rate, 0.0, "sharded serving store runs uncached");
        assert!(s.ops_per_sec > 0.0);
        // The pinned maintenance stream folds cleanly into every shard.
        for batch in shard_delta_batches(5, 2) {
            let r = sharded.apply_delta(&batch).expect("delta");
            assert_eq!(r.rows, DELTA_ROWS as u64);
            assert_eq!(r.per_shard.len(), SHARD_N);
        }
    }

    #[test]
    fn uncached_baseline_never_hits() {
        let facts = make_facts(3);
        let store = build_store(&facts, 0);
        let stream = zipf_stream(store.top(), 40, ZIPF_S, 5);
        let s = run_stream(&store, &stream);
        assert_eq!(s.hit_rate, 0.0);
        assert_eq!(store.cache_stats().entries, 0);
    }
}
