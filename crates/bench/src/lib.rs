//! # statcube-bench
//!
//! The benchmark harness regenerating every figure and surveyed claim of
//! Shoshani (PODS 1997). Two layers:
//!
//! * **experiment binaries** — `cargo run -p statcube-bench --release --bin
//!   experiments -- <expNN|all>` prints, for each experiment in DESIGN.md's
//!   index, the table whose *shape* the paper reports (who wins, by what
//!   factor, where crossovers fall);
//! * **criterion benches** — `cargo bench -p statcube-bench` measures the
//!   hot paths (CUBE strategies, storage scans, MOLAP/ROLAP, probes).
//!
//! Every experiment module exposes `run() -> String` and is unit-tested on
//! its qualitative claim, so `cargo test` already guards the shapes.

#![warn(missing_docs)]

pub mod report;
pub mod serving;

/// One module per experiment of DESIGN.md's per-experiment index.
pub mod exps {
    pub mod exp01;
    pub mod exp02;
    pub mod exp03;
    pub mod exp04;
    pub mod exp05;
    pub mod exp06;
    pub mod exp07;
    pub mod exp08;
    pub mod exp09;
    pub mod exp10;
    pub mod exp11;
    pub mod exp12;
    pub mod exp13;
    pub mod exp14;
    pub mod exp15;
    pub mod exp16;
    pub mod exp17;
    pub mod exp18;
    pub mod exp19;
    pub mod exp20;
    pub mod exp21;
    pub mod exp22;
    pub mod exp23;
    pub mod exp24;
    pub mod exp25;
    pub mod exp26;
    pub mod exp27;
    pub mod exp28;
    pub mod exp29;
    pub mod exp30;
}

/// One experiment: `(id, title, runner)`.
pub type Experiment = (&'static str, &'static str, fn() -> String);

/// All experiments of DESIGN.md's index, in order.
pub fn all_experiments() -> Vec<Experiment> {
    vec![
        ("exp01", "2-D statistical table with marginals (Figs 1, 9)", exps::exp01::run),
        ("exp02", "the retail data cube (Fig 2)", exps::exp02::run),
        ("exp03", "STORM schema graphs (Figs 3-7)", exps::exp03::run),
        ("exp04", "summarizability verdicts (Fig 8, §3.3.2)", exps::exp04::run),
        ("exp05", "flat relation vs star schema (Figs 10, 11)", exps::exp05::run),
        ("exp06", "SDB ↔ OLAP correspondence (Figs 12, 14)", exps::exp06::run),
        ("exp07", "automatic aggregation (Fig 13)", exps::exp07::run),
        ("exp08", "the CUBE operator (Fig 15)", exps::exp08::run),
        ("exp09", "completeness homomorphism (Fig 16)", exps::exp09::run),
        ("exp10", "classification matching (Fig 17)", exps::exp10::run),
        ("exp11", "transposed files vs row store (Fig 18)", exps::exp11::run),
        ("exp12", "encoding, RLE, bit-transposed files (Fig 19)", exps::exp12::run),
        ("exp13", "array linearization (Fig 20)", exps::exp13::run),
        ("exp14", "header compression (Fig 21)", exps::exp14::run),
        ("exp15", "greedy view materialization (Fig 22)", exps::exp15::run),
        ("exp16", "subcube partitioning (Fig 23)", exps::exp16::run),
        ("exp17", "extendible arrays (Fig 24)", exps::exp17::run),
        ("exp18", "MOLAP vs ROLAP (§6.6)", exps::exp18::run),
        ("exp19", "privacy (§7)", exps::exp19::run),
        ("exp20", "sampling and higher statistics (§5.6)", exps::exp20::run),
        ("exp21", "SQL extensions for OLAP (§5.4)", exps::exp21::run),
        ("exp22", "partition-parallel CUBE speedup curve", exps::exp22::run),
        ("exp23", "degradation cost under injected faults", exps::exp23::run),
        ("exp24", "query-profile observability (spans + metrics)", exps::exp24::run),
        ("exp25", "serving-layer cache hit-rate and speedup curves", exps::exp25::run),
        ("exp26", "planner rewrite ablation — cells scanned on retail", exps::exp26::run),
        ("exp27", "incremental maintenance under concurrent reads", exps::exp27::run),
        ("exp28", "durability cost and recovery replay", exps::exp28::run),
        ("exp29", "vectorized execution: batch kernels vs tuple interpreter", exps::exp29::run),
        ("exp30", "scatter-gather sharding: pruning, overhead, degradation", exps::exp30::run),
    ]
}
