//! Runs the paper-reproduction experiments.
//!
//! ```text
//! cargo run -p statcube-bench --release --bin experiments -- all
//! cargo run -p statcube-bench --release --bin experiments -- exp15 exp18
//! cargo run -p statcube-bench --release --bin experiments          # lists
//! ```

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let experiments = statcube_bench::all_experiments();
    if args.is_empty() {
        eprintln!("usage: experiments <all | expNN ...>\n\navailable:");
        for (id, title, _) in &experiments {
            eprintln!("  {id}  {title}");
        }
        std::process::exit(2);
    }
    let run_all = args.iter().any(|a| a == "all");
    let mut ran = 0;
    for (id, _, runner) in &experiments {
        if run_all || args.iter().any(|a| a == id) {
            println!("{}", runner());
            println!();
            ran += 1;
        }
    }
    if ran == 0 {
        eprintln!("no experiment matched {args:?}");
        std::process::exit(2);
    }
}
