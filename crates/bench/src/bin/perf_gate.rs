//! CI perf-regression gate.
//!
//! Measures a pinned subset of E25 (serving-layer cache throughput), E22
//! (partition-parallel CUBE throughput), E26 (planner-path query
//! throughput through a warm [`CachedSession`]), E27 (incremental
//! delta-maintenance throughput and reader tail latency under a delta
//! writer — since schema 4, measured on a **durable** store so the gated
//! number carries the write-ahead journaling cost), E28 (recovery
//! replay throughput over the journal those folds wrote), since
//! schema 5 E29's planner path through the batched kernel executor, and —
//! since schema 6 — E30's sharded slice serving (block-level scatter with
//! shard pruning at the pinned N=4, plus the N=4/N=1 scaling ratio),
//! writes the numbers to `BENCH_10.json`, and compares them against the
//! committed `bench_baseline.json`:
//!
//! * any throughput metric below `baseline × (1 − tolerance)` fails the
//!   gate (tolerance defaults to 0.25; override with `PERF_GATE_TOLERANCE`);
//! * a hit-rate drop of more than 0.05 absolute fails the gate (hit rate is
//!   deterministic for the pinned stream, so this catches admission-policy
//!   regressions that throughput noise would hide);
//! * `reader_p99_under_writes_ns` is lower-is-better and tail latencies are
//!   noisy, so it fails only above `baseline × (1 + 8 × tolerance)` — a 3×
//!   ceiling at the default tolerance, which still catches a reader
//!   blocking on delta publication (that costs orders of magnitude).
//!
//! ```text
//! cargo run -p statcube-bench --release --bin perf_gate                  # gate
//! cargo run -p statcube-bench --release --bin perf_gate -- --write-baseline
//! cargo run -p statcube-bench --release --bin perf_gate -- --json-only  # measure, no gate
//! ```
//!
//! **Exit codes are stable** (CI scripts may branch on them): `0` — gate
//! passed (or `--write-baseline`/`--json-only` completed); `1` — a gated
//! metric regressed past its floor/ceiling; `2` — environment error
//! (missing/unwritable baseline or output file). `--json-only` prints the
//! measured JSON to stdout and skips both the comparison and all file
//! writes — the mode the CI workflow uses to collect numbers from jobs
//! that must not gate. When `GITHUB_STEP_SUMMARY` is set, the gate
//! appends a per-metric delta table to the job summary.
//!
//! Throughput is taken as the best of three runs, which suppresses most
//! scheduler noise; re-baseline (the second command, then commit the file)
//! when hardware changes or an intentional perf trade lands. Paths default
//! to the working directory and follow `PERF_GATE_BASELINE` /
//! `PERF_GATE_OUT`.
//!
//! **Re-baselining policy:** when a schema bump adds metrics in the same
//! change that is being gated, only the *new* metrics take freshly
//! measured values; every previously-gated metric keeps its committed
//! baseline (take the max of old and newly measured). Re-pinning an old
//! metric from the same run would let that change absorb its own
//! regression — a lower value for an existing metric may only land as a
//! separate, explicitly justified change.

use std::time::Instant;

use statcube_bench::serving::{
    self, build_durable_store, build_sharded_store, build_store, delta_batches, make_facts,
    make_shard_facts, run_shard_stream, run_stream, run_stream_threads,
    run_stream_threads_with_writer, shard_slice_stream, zipf_stream, DELTA_ROWS,
};
use statcube_core::measure::SummaryFunction;
use statcube_cube::cache::CacheConfig;
use statcube_cube::cube_op;
use statcube_cube::input::FactInput;
use statcube_cube::shared::{DurableParts, SharedViewStore};
use statcube_sql::ast::{AggExpr, Grouping, Predicate, Query};
use statcube_sql::CachedSession;
use statcube_workload::retail::{generate, RetailConfig};

/// Rows of the pinned parallel-CUBE workload (E22's shape, sized for CI).
const PAR_ROWS: usize = 100_000;
const PAR_CARDS: [usize; 4] = [50, 20, 10, 8];
/// Throughput measurements take the best of this many runs.
const RUNS: usize = 3;
/// Passes over the pinned planner-path query list per measurement.
const PLANNER_PASSES: usize = 40;

/// Delta batches per maintenance-throughput measurement run.
const DELTA_BATCHES: usize = 30;

struct Measured {
    serving_ops_per_sec: f64,
    serving_hit_rate: f64,
    serving_p50_ns: u64,
    serving_p95_ns: u64,
    threaded_ops_per_sec: f64,
    parallel_cube_rows_per_sec: f64,
    planner_ops_per_sec: f64,
    delta_rows_per_sec: f64,
    recovery_replay_rows_per_sec: f64,
    reader_p99_under_writes_ns: u64,
    sharded_ops_per_sec: f64,
    shard_scaling_n4: f64,
}

/// E30's pinned subset: block-level sharded slice serving at the gate's
/// N=4 (`sharded_ops_per_sec`) and the same stream over an N=1 store for
/// the pruning-scaling ratio (`shard_scaling_n4`). Each store is paged in
/// with a stream prefix before measuring; both take the best of [`RUNS`].
fn measure_sharded() -> (f64, f64) {
    let facts = make_shard_facts(3);
    let stream = shard_slice_stream(serving::SHARD_STREAM_LEN, 7);
    let warm = stream.len().min(40);
    let best_at = |n: usize| {
        let store = build_sharded_store(&facts, n);
        run_shard_stream(&store, &stream[..warm]);
        let mut best = 0.0f64;
        for _ in 0..RUNS {
            best = best.max(run_shard_stream(&store, &stream).ops_per_sec);
        }
        best
    };
    let n1 = best_at(1);
    let n4 = best_at(serving::SHARD_N);
    (n4, n4 / n1.max(1e-9))
}

/// E27/E28's pinned subset: incremental apply throughput (rows folded per
/// second over fresh **durable** stores — since schema 4 the gated write
/// path journals every batch, so this metric carries the full
/// append+sync+fold+commit cost), recovery replay throughput over the
/// resulting journal, and reader p99 while one writer streams delta folds
/// (best of [`RUNS`], uncached readers).
fn measure_maintenance() -> (f64, f64, u64) {
    let facts = make_facts(3);
    let batches = delta_batches(28, DELTA_BATCHES);
    let mut delta_rows_per_sec = 0.0f64;
    let mut recovery_replay_rows_per_sec = 0.0f64;
    for _ in 0..RUNS {
        let parts = DurableParts::new();
        let store = build_durable_store(&facts, 0, parts.clone());
        let t = Instant::now();
        for b in &batches {
            store.apply_delta(b).expect("delta");
        }
        let secs = t.elapsed().as_secs_f64().max(1e-9);
        delta_rows_per_sec = delta_rows_per_sec.max((DELTA_BATCHES * DELTA_ROWS) as f64 / secs);

        // Recovery replay over the journal this run just wrote ("the
        // process dies" — only the devices survive the drop).
        drop(store);
        let t = Instant::now();
        let (_, report) =
            SharedViewStore::recover(&parts, CacheConfig::disabled()).expect("recover");
        let secs = t.elapsed().as_secs_f64().max(1e-9);
        assert_eq!(report.replayed_deltas as usize, DELTA_BATCHES);
        recovery_replay_rows_per_sec =
            recovery_replay_rows_per_sec.max(report.replayed_rows as f64 / secs);
    }

    let mut p99 = u64::MAX;
    for run in 0..RUNS {
        let store = build_store(&facts, 0);
        let stream = zipf_stream(store.top(), serving::STREAM_LEN, serving::ZIPF_S, 5);
        let writer_batches = delta_batches(29 + run as u64, 64);
        let (s, published) = run_stream_threads_with_writer(&store, &stream, 4, |k| {
            store.apply_delta(&writer_batches[(k as usize) % writer_batches.len()]).expect("delta");
        });
        assert!(published > 0, "writer published nothing");
        p99 = p99.min(s.p99_ns);
    }
    (delta_rows_per_sec, recovery_replay_rows_per_sec, p99)
}

/// Planner-path throughput: a pinned SQL mix (plain groupings, a CUBE, a
/// pushed-down filter) served warm through a [`CachedSession`], so every
/// query runs the full plan → rewrite → execute pipeline the unified
/// front-ends share.
fn measure_planner_path() -> f64 {
    let retail = generate(&RetailConfig {
        products: 60,
        categories: 6,
        cities: 4,
        stores_per_city: 3,
        days: 30,
        rows: 20_000,
        seed: 26,
    });
    let obj = &retail.object;
    let from = obj.schema().name().to_owned();
    let product = obj.schema().dimensions()[0].members().values().next().expect("a product");
    let sum = AggExpr { func: SummaryFunction::Sum, arg: Some("quantity sold".into()) };
    let q = |grouping: Grouping, filters: Vec<Predicate>| Query {
        select: vec![sum.clone()],
        from: from.clone(),
        filters,
        grouping,
    };
    let queries = [
        q(Grouping::Plain(vec!["product".into()]), vec![]),
        q(Grouping::Plain(vec!["store".into()]), vec![]),
        q(Grouping::Cube(vec!["product".into(), "store".into()]), vec![]),
        q(
            Grouping::Plain(vec!["store".into()]),
            vec![Predicate { column: "product".into(), value: product.to_owned(), negated: false }],
        ),
    ];
    let session =
        CachedSession::with_views(obj, &[0b011], CacheConfig::default()).expect("session");
    for query in &queries {
        session.execute(query).expect("warm-up"); // warm the answer cache
    }
    let mut best = 0.0f64;
    for _ in 0..RUNS {
        let t = Instant::now();
        for _ in 0..PLANNER_PASSES {
            for query in &queries {
                assert!(!session.execute(query).expect("query").result.rows.is_empty());
            }
        }
        let secs = t.elapsed().as_secs_f64().max(1e-9);
        best = best.max((PLANNER_PASSES * queries.len()) as f64 / secs);
    }
    best
}

fn measure() -> Measured {
    // Serving: the E25 full-budget point, warm, best of RUNS.
    let facts = make_facts(3);
    let store = build_store(&facts, 16 << 20);
    let stream = zipf_stream(store.top(), serving::STREAM_LEN, serving::ZIPF_S, 5);
    run_stream(&store, &stream); // warm
    let mut best = run_stream(&store, &stream);
    for _ in 1..RUNS {
        let s = run_stream(&store, &stream);
        if s.ops_per_sec > best.ops_per_sec {
            best = s;
        }
    }
    let mut threaded = 0.0f64;
    for _ in 0..RUNS {
        threaded = threaded.max(run_stream_threads(&store, &stream, 4).ops_per_sec);
    }

    // Parallel CUBE: E22's workload shape at the hardware thread count.
    let hw = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let mut input = FactInput::new(&PAR_CARDS).expect("input");
    let mut x = 22u64 | 1;
    for _ in 0..PAR_ROWS {
        let coords: Vec<u32> = PAR_CARDS
            .iter()
            .map(|&c| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x % c as u64) as u32
            })
            .collect();
        input.push(&coords, (x % 1000) as f64).expect("push");
    }
    let mut cube_rows_per_sec = 0.0f64;
    for _ in 0..RUNS {
        let t = Instant::now();
        let cube = cube_op::compute_parallel(&input, hw);
        let secs = t.elapsed().as_secs_f64().max(1e-9);
        assert!(cube.total_cells() > 0);
        cube_rows_per_sec = cube_rows_per_sec.max(PAR_ROWS as f64 / secs);
    }

    let (delta_rows_per_sec, recovery_replay_rows_per_sec, reader_p99_under_writes_ns) =
        measure_maintenance();
    let (sharded_ops_per_sec, shard_scaling_n4) = measure_sharded();
    Measured {
        serving_ops_per_sec: best.ops_per_sec,
        serving_hit_rate: best.hit_rate,
        serving_p50_ns: best.p50_ns,
        serving_p95_ns: best.p95_ns,
        threaded_ops_per_sec: threaded,
        parallel_cube_rows_per_sec: cube_rows_per_sec,
        planner_ops_per_sec: measure_planner_path(),
        delta_rows_per_sec,
        recovery_replay_rows_per_sec,
        reader_p99_under_writes_ns,
        sharded_ops_per_sec,
        shard_scaling_n4,
    }
}

fn to_json(m: &Measured) -> String {
    format!(
        "{{\n  \"schema\": 6,\n  \"serving_ops_per_sec\": {:.1},\n  \
         \"serving_hit_rate\": {:.4},\n  \"serving_p50_ns\": {},\n  \
         \"serving_p95_ns\": {},\n  \"threaded_ops_per_sec\": {:.1},\n  \
         \"parallel_cube_rows_per_sec\": {:.1},\n  \
         \"planner_ops_per_sec\": {:.1},\n  \
         \"delta_rows_per_sec\": {:.1},\n  \
         \"recovery_replay_rows_per_sec\": {:.1},\n  \
         \"reader_p99_under_writes_ns\": {},\n  \
         \"sharded_ops_per_sec\": {:.1},\n  \
         \"shard_scaling_n4\": {:.2}\n}}\n",
        m.serving_ops_per_sec,
        m.serving_hit_rate,
        m.serving_p50_ns,
        m.serving_p95_ns,
        m.threaded_ops_per_sec,
        m.parallel_cube_rows_per_sec,
        m.planner_ops_per_sec,
        m.delta_rows_per_sec,
        m.recovery_replay_rows_per_sec,
        m.reader_p99_under_writes_ns,
        m.sharded_ops_per_sec,
        m.shard_scaling_n4,
    )
}

/// Extracts `"key": <number>` from a flat JSON object. Sufficient for the
/// gate's own files; not a general parser.
fn json_num(json: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\"");
    let at = json.find(&pat)? + pat.len();
    let rest = json[at..].trim_start().strip_prefix(':')?.trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Appends a per-metric delta table to `GITHUB_STEP_SUMMARY` when CI
/// provides one; silently does nothing otherwise.
fn write_step_summary(rows: &[(String, f64, Option<f64>, &'static str)], tolerance: f64) {
    let Ok(path) = std::env::var("GITHUB_STEP_SUMMARY") else { return };
    if path.is_empty() {
        return;
    }
    let mut md = String::from(
        "### perf gate\n\n| metric | current | baseline | delta | verdict |\n|---|---:|---:|---:|---|\n",
    );
    for (key, current, base, verdict) in rows {
        match base {
            Some(b) if *b != 0.0 => {
                let delta = (current - b) / b * 100.0;
                md.push_str(&format!(
                    "| {key} | {current:.1} | {b:.1} | {delta:+.1}% | {verdict} |\n"
                ));
            }
            _ => {
                md.push_str(&format!("| {key} | {current:.1} | — | — | {verdict} |\n"));
            }
        }
    }
    md.push_str(&format!("\ntolerance: {tolerance}\n"));
    use std::io::Write as _;
    if let Ok(mut f) = std::fs::OpenOptions::new().create(true).append(true).open(&path) {
        let _ = f.write_all(md.as_bytes());
    }
}

fn main() {
    let write_baseline = std::env::args().any(|a| a == "--write-baseline");
    let json_only = std::env::args().any(|a| a == "--json-only");
    let out_path = std::env::var("PERF_GATE_OUT").unwrap_or_else(|_| "BENCH_10.json".into());
    let baseline_path =
        std::env::var("PERF_GATE_BASELINE").unwrap_or_else(|_| "bench_baseline.json".into());
    let tolerance: f64 =
        std::env::var("PERF_GATE_TOLERANCE").ok().and_then(|v| v.parse().ok()).unwrap_or(0.25);

    eprintln!("perf_gate: measuring pinned E25/E22/E26/E27/E29/E30 subset...");
    let m = measure();
    let json = to_json(&m);
    print!("{json}");

    if json_only {
        return; // measurement only: no files, no gate — exit 0.
    }

    if write_baseline {
        if let Err(e) = std::fs::write(&baseline_path, &json) {
            eprintln!("perf_gate: cannot write {baseline_path}: {e}");
            std::process::exit(2);
        }
        eprintln!("perf_gate: baseline written to {baseline_path}");
        return;
    }

    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("perf_gate: cannot write {out_path}: {e}");
        std::process::exit(2);
    }
    eprintln!("perf_gate: results written to {out_path}");

    let baseline = match std::fs::read_to_string(&baseline_path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!(
                "perf_gate: no baseline at {baseline_path} ({e}); run with \
                 --write-baseline and commit the file"
            );
            std::process::exit(2);
        }
    };
    let mut summary_rows: Vec<(String, f64, Option<f64>, &'static str)> = Vec::new();

    let mut failures = Vec::new();
    for (key, current) in [
        ("serving_ops_per_sec", m.serving_ops_per_sec),
        ("threaded_ops_per_sec", m.threaded_ops_per_sec),
        ("parallel_cube_rows_per_sec", m.parallel_cube_rows_per_sec),
        ("planner_ops_per_sec", m.planner_ops_per_sec),
        ("delta_rows_per_sec", m.delta_rows_per_sec),
        ("recovery_replay_rows_per_sec", m.recovery_replay_rows_per_sec),
        ("sharded_ops_per_sec", m.sharded_ops_per_sec),
        // A ratio, not a rate, but gated the same way: scaling collapsing
        // toward 1 means shard pruning stopped pruning.
        ("shard_scaling_n4", m.shard_scaling_n4),
    ] {
        match json_num(&baseline, key) {
            Some(base) if base > 0.0 => {
                let floor = base * (1.0 - tolerance);
                let verdict = if current < floor { "FAIL" } else { "ok" };
                summary_rows.push((key.to_owned(), current, Some(base), verdict));
                eprintln!(
                    "perf_gate: {key:<28} current {current:>12.1}  baseline {base:>12.1}  \
                     floor {floor:>12.1}  {verdict}"
                );
                if current < floor {
                    failures.push(format!(
                        "{key} regressed: {current:.1} < {floor:.1} \
                         (baseline {base:.1}, tolerance {tolerance})"
                    ));
                }
            }
            _ => {
                summary_rows.push((key.to_owned(), current, None, "no baseline"));
                failures.push(format!("baseline {baseline_path} lacks {key}"));
            }
        }
    }
    match json_num(&baseline, "serving_hit_rate") {
        Some(base_hit) => {
            let verdict = if m.serving_hit_rate + 0.05 < base_hit { "FAIL" } else { "ok" };
            summary_rows.push((
                "serving_hit_rate".to_owned(),
                m.serving_hit_rate,
                Some(base_hit),
                verdict,
            ));
            eprintln!(
                "perf_gate: {:<28} current {:>12.4}  baseline {base_hit:>12.4}  {verdict}",
                "serving_hit_rate", m.serving_hit_rate
            );
            if m.serving_hit_rate + 0.05 < base_hit {
                failures.push(format!(
                    "serving_hit_rate dropped: {:.4} vs baseline {base_hit:.4}",
                    m.serving_hit_rate
                ));
            }
        }
        None => failures.push(format!("baseline {baseline_path} lacks serving_hit_rate")),
    }
    // Lower-is-better tail latency: generous ceiling (see module docs) —
    // the target is "reader blocked on a writer", not scheduler noise.
    match json_num(&baseline, "reader_p99_under_writes_ns") {
        Some(base_p99) if base_p99 > 0.0 => {
            let ceiling = base_p99 * (1.0 + 8.0 * tolerance);
            let current = m.reader_p99_under_writes_ns as f64;
            let verdict = if current > ceiling { "FAIL" } else { "ok" };
            summary_rows.push((
                "reader_p99_under_writes_ns".to_owned(),
                current,
                Some(base_p99),
                verdict,
            ));
            eprintln!(
                "perf_gate: {:<28} current {current:>12.1}  baseline {base_p99:>12.1}  \
                 ceiling {ceiling:>12.1}  {verdict}",
                "reader_p99_under_writes_ns"
            );
            if current > ceiling {
                failures.push(format!(
                    "reader_p99_under_writes_ns regressed: {current:.1} > {ceiling:.1} \
                     (baseline {base_p99:.1})"
                ));
            }
        }
        _ => failures.push(format!("baseline {baseline_path} lacks reader_p99_under_writes_ns")),
    }

    write_step_summary(&summary_rows, tolerance);
    if failures.is_empty() {
        eprintln!("perf_gate: PASS (tolerance {tolerance})");
    } else {
        for f in &failures {
            eprintln!("perf_gate: FAIL: {f}");
        }
        eprintln!(
            "perf_gate: if this regression is intentional, re-baseline with\n  \
             cargo run -p statcube-bench --release --bin perf_gate -- --write-baseline\n\
             and commit {baseline_path}"
        );
        std::process::exit(1);
    }
}
