//! Plain-text table rendering for the experiment harness.
//!
//! Every `exp*` module prints its results through [`Table`] so
//! EXPERIMENTS.md can quote harness output verbatim.

use std::fmt::Write as _;

/// A fixed-width text table with a title and column headers.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|h| (*h).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Adds one row (stringified cells).
    pub fn row<I, S>(&mut self, cells: I)
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(row);
    }

    /// Renders with padded columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "## {}", self.title);
        let line = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", line(&self.headers, &widths));
        let _ = writeln!(out, "{}", "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }
}

/// Formats a float compactly.
pub fn f(v: f64) -> String {
    if v == 0.0 {
        "0".to_owned()
    } else if v.abs() >= 1000.0 {
        format!("{v:.0}")
    } else if v.abs() >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.4}")
    }
}

/// Formats a ratio as `x12.3` style.
pub fn ratio(v: f64) -> String {
    format!("x{v:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(["alpha", "1"]);
        t.row(["b", "1000"]);
        let s = t.render();
        assert!(s.contains("## demo"));
        assert!(s.contains("alpha"));
        assert!(s.lines().count() >= 5);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(["only one"]);
    }

    #[test]
    fn float_formats() {
        assert_eq!(f(0.0), "0");
        assert_eq!(f(1234.6), "1235");
        assert_eq!(f(3.45678), "3.46");
        assert_eq!(f(0.01234), "0.0123");
        assert_eq!(ratio(2.0), "x2.00");
    }
}
