//! E25 — serving-layer cache: hit-rate and speedup curves.
//!
//! The tentpole question: what does the cost-aware answer cache buy a
//! serving workload? A Zipf-skewed query stream (skew [`ZIPF_S`]) runs
//! against one [`SharedViewStore`](statcube_cube::shared::SharedViewStore)
//! under a sweep of cache byte budgets — 0 (the uncached baseline) up to
//! cache-everything — and then under 1–8 reader threads at a fixed budget.
//! Reported per point: hit rate, throughput, p50/p95 latency (log₂
//! histogram), and the exact-median speedup over the uncached baseline.
//!
//! The run ends with a `json:` line carrying the same numbers
//! machine-readably; the CI perf gate (`perf_gate`) re-measures the pinned
//! subset and compares against the committed baseline.

use std::fmt::Write as _;

use crate::report::{ratio, Table};
use crate::serving::{
    self, build_store, make_facts, run_stream, run_stream_threads, zipf_stream, STREAM_LEN, ZIPF_S,
};

/// Budget sweep points, bytes (0 = uncached baseline).
const BUDGETS: [usize; 5] = [0, 64 << 10, 256 << 10, 1 << 20, 16 << 20];

fn fmt_budget(b: usize) -> String {
    match b {
        0 => "uncached".into(),
        b if b >= 1 << 20 => format!("{} MiB", b >> 20),
        b => format!("{} KiB", b >> 10),
    }
}

/// Sweeps cache budgets and reader threads over the pinned Zipf stream.
pub fn run() -> String {
    let facts = make_facts(3);
    let mut out = String::new();
    out.push_str("=== E25: serving-layer cache — hit rate and speedup ===\n\n");
    let _ = writeln!(
        out,
        "workload: {} facts over {:?}, {} greedy views + base, {} Zipf(s={}) queries\n",
        serving::ROWS,
        serving::CARDS,
        serving::GREEDY_VIEWS,
        STREAM_LEN,
        ZIPF_S,
    );

    // --- budget sweep, single thread ------------------------------------
    let mut baseline_median = 0u64;
    let mut json_budget = String::new();
    let mut t = Table::new(
        "cache budget sweep (1 thread)",
        &["budget", "hit rate", "wall (ms)", "queries/s", "p50 (µs)", "p95 (µs)", "median speedup"],
    );
    for &budget in &BUDGETS {
        let store = build_store(&facts, budget);
        let stream = zipf_stream(store.top(), STREAM_LEN, ZIPF_S, 5);
        let s = run_stream(&store, &stream);
        if budget == 0 {
            baseline_median = s.median_ns.max(1);
        }
        let speedup = baseline_median as f64 / s.median_ns.max(1) as f64;
        t.row([
            fmt_budget(budget),
            format!("{:.2}", s.hit_rate),
            format!("{:.1}", s.wall_ns as f64 / 1e6),
            format!("{:.0}", s.ops_per_sec),
            format!("{:.1}", s.p50_ns as f64 / 1e3),
            format!("{:.1}", s.p95_ns as f64 / 1e3),
            if budget == 0 { "1.0x (baseline)".into() } else { ratio(speedup) },
        ]);
        let _ = write!(
            json_budget,
            "{}{{\"budget\":{budget},\"hit_rate\":{:.4},\"ops_per_sec\":{:.1},\
             \"p50_ns\":{},\"p95_ns\":{},\"median_speedup\":{:.2}}}",
            if json_budget.is_empty() { "" } else { "," },
            s.hit_rate,
            s.ops_per_sec,
            s.p50_ns,
            s.p95_ns,
            speedup,
        );
    }
    out.push_str(&t.render());
    out.push('\n');

    // --- thread sweep, fixed budget --------------------------------------
    let store = build_store(&facts, 16 << 20);
    let stream = zipf_stream(store.top(), STREAM_LEN, ZIPF_S, 5);
    run_stream(&store, &stream); // warm the cache once
    let mut base_ops = 0.0f64;
    let mut json_threads = String::new();
    let mut tt = Table::new(
        "reader-thread sweep (16 MiB cache, warm)",
        &["threads", "queries", "hit rate", "queries/s", "scaling vs 1 thread"],
    );
    for threads in [1usize, 2, 4, 8] {
        let s = run_stream_threads(&store, &stream, threads);
        if threads == 1 {
            base_ops = s.ops_per_sec.max(1e-9);
        }
        tt.row([
            threads.to_string(),
            s.queries.to_string(),
            format!("{:.2}", s.hit_rate),
            format!("{:.0}", s.ops_per_sec),
            ratio(s.ops_per_sec / base_ops),
        ]);
        let _ = write!(
            json_threads,
            "{}{{\"threads\":{threads},\"hit_rate\":{:.4},\"ops_per_sec\":{:.1}}}",
            if json_threads.is_empty() { "" } else { "," },
            s.hit_rate,
            s.ops_per_sec,
        );
    }
    out.push_str(&tt.render());

    out.push_str(
        "\na skewed stream concentrates on few cuboids, so even small budgets\n\
         capture most probes; at full budget the store serves from memory and\n\
         the median query collapses from a verified page scan to a cache probe.\n",
    );
    let _ = writeln!(
        out,
        "\njson: {{\"budget_sweep\":[{json_budget}],\"thread_sweep\":[{json_threads}]}}"
    );
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn cache_delivers_the_claimed_speedup() {
        let s = super::run();
        assert!(s.contains("cache budget sweep"));
        assert!(s.contains("reader-thread sweep"));
        assert!(s.contains("json: {"));
        // The acceptance claim: the full-budget row reaches ≥90% hit rate
        // with a ≥5× median speedup over the uncached baseline.
        let json = s.lines().find(|l| l.starts_with("json: ")).expect("json line");
        let sweep: Vec<(f64, f64)> = json
            .split('{')
            .filter(|seg| seg.contains("\"budget\""))
            .map(|seg| {
                let num = |key: &str| -> f64 {
                    let at = seg.find(key).expect(key) + key.len();
                    seg[at..]
                        .trim_start_matches(':')
                        .chars()
                        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
                        .collect::<String>()
                        .parse()
                        .expect("number")
                };
                (num("\"hit_rate\""), num("\"median_speedup\""))
            })
            .collect();
        assert_eq!(sweep.len(), super::BUDGETS.len());
        let (hit, speedup) = sweep[sweep.len() - 1];
        assert!(hit >= 0.90, "full-budget hit rate {hit} < 0.90\n{s}");
        assert!(speedup >= 5.0, "median speedup {speedup} < 5x at {hit} hit rate\n{s}");
        // Hit rate grows monotonically (within noise) along the sweep.
        assert!(sweep[0].0 == 0.0, "uncached baseline must not hit");
    }
}
