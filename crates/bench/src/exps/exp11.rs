//! E11 — Fig 18 / §6.1: transposed files vs the row store.

use statcube_storage::column::TransposedStore;
use statcube_storage::relation::Relation;
use statcube_storage::row::RowStore;
use statcube_workload::census::{generate, CensusConfig};

use crate::report::{ratio, Table};

/// Reproduces the \[THC79\] trade-off: summary queries read only the needed
/// column files (big win, growing with table width), while full-row
/// retrieval pays one page per column file (the penalty).
pub fn run() -> String {
    let census = generate(&CensusConfig { rows: 100_000, ..CensusConfig::default() });
    let rel = Relation::from_micro(&census.micro).expect("relation");

    let mut out = String::new();
    out.push_str("=== E11: transposed files vs row store (Fig 18, [THC79]) ===\n\n");
    let mut t = Table::new(
        "summary query SUM(income) GROUP-style, by predicate width",
        &["predicate columns", "row store pages", "transposed pages", "transposed win"],
    );
    let preds_sets: [&[(&str, &str)]; 3] = [
        &[("sex", "male")],
        &[("sex", "male"), ("race", "white")],
        &[("sex", "male"), ("race", "white"), ("state", "s00")],
    ];
    for preds in preds_sets {
        let row = RowStore::new(rel.clone(), 4096);
        let col = TransposedStore::new(rel.clone(), 4096);
        let p = row.predicates(preds).expect("preds");
        let (rs, rc) = row.sum_where(&p, 0);
        let (cs, cc) = col.sum_where(&p, 0);
        assert!((rs - cs).abs() < 1e-6 && rc == cc, "stores disagree");
        t.row([
            preds.len().to_string(),
            row.io().pages_read().to_string(),
            col.io().pages_read().to_string(),
            ratio(row.io().pages_read() as f64 / col.io().pages_read() as f64),
        ]);
    }
    out.push_str(&t.render());

    let row = RowStore::new(rel.clone(), 4096);
    let col = TransposedStore::new(rel, 4096);
    row.fetch_row(54_321);
    col.fetch_row(54_321);
    let mut t2 =
        Table::new("full-row retrieval (the transposition penalty)", &["layout", "pages read"]);
    t2.row(["row store", &row.io().pages_read().to_string()]);
    t2.row(["transposed (one page per column file)", &col.io().pages_read().to_string()]);
    out.push('\n');
    out.push_str(&t2.render());
    out.push_str(
        "\nshape as in §6.1: transposition wins summary queries by the ratio of\n\
         table width to touched-column width, and loses full-row fetches by a\n\
         factor of the column count.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn transposed_wins_summaries_loses_row_fetch() {
        let s = super::run();
        // Every summary-query win factor is > 1.
        for line in s.lines().filter(|l| l.trim_start().starts_with(['1', '2', '3'])) {
            if let Some(r) = line.split('x').nth(1) {
                let v: f64 = r.trim().parse().unwrap();
                assert!(v > 1.0, "expected transposed win, got x{v}");
            }
        }
        // Row-fetch penalty: transposed pages > row pages.
        let idx = s.find("full-row retrieval").unwrap();
        let tail = &s[idx..];
        let row_pages: u64 = tail
            .lines()
            .find(|l| l.contains("row store"))
            .unwrap()
            .split_whitespace()
            .last()
            .unwrap()
            .parse()
            .unwrap();
        let col_pages: u64 = tail
            .lines()
            .find(|l| l.contains("transposed ("))
            .unwrap()
            .split_whitespace()
            .last()
            .unwrap()
            .parse()
            .unwrap();
        assert!(col_pages > row_pages);
    }
}
