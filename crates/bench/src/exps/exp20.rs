//! E20 — §5.6: higher-level statistics and in-engine sampling.

use statcube_core::stats::{percentile, reservoir_sample, trimmed_mean, Welford};
use statcube_workload::census::{generate, CensusConfig};

use crate::report::{f, ratio, Table};

/// Reproduces §5.6's efficiency argument: sampling inside the database
/// moves `k` values; extracting the collection to sample it in an external
/// statistical package moves all `n`. Then computes the statistics the
/// paper says databases lack (stddev, percentiles, trimmed means) on the
/// in-engine sample.
pub fn run() -> String {
    let census = generate(&CensusConfig { rows: 200_000, ..CensusConfig::default() });
    let micro = &census.micro;
    let n = micro.len();
    let incomes: Vec<f64> = (0..n).map(|r| micro.num_value("income", r).expect("income")).collect();

    let mut out = String::new();
    out.push_str("=== E20: sampling and higher statistics (§5.6, [OR95]) ===\n\n");
    let mut t = Table::new(
        "bytes moved to answer 'trimmed mean over a 1% sample'",
        &["strategy", "values moved", "bytes", "vs in-engine"],
    );
    let k = n / 100;
    let in_engine_bytes = k * 8;
    let extract_bytes = n * 8;
    t.row([
        "in-engine reservoir sample (Algorithm R)".to_owned(),
        k.to_string(),
        in_engine_bytes.to_string(),
        "x1.00".to_owned(),
    ]);
    t.row([
        "extract-then-sample in external package".to_owned(),
        n.to_string(),
        extract_bytes.to_string(),
        ratio(extract_bytes as f64 / in_engine_bytes as f64),
    ]);
    out.push_str(&t.render());

    let sample = reservoir_sample(incomes.iter().copied(), k, 2025);
    let mut whole = Welford::new();
    for &x in &incomes {
        whole.push(x);
    }
    let mut sampled = Welford::new();
    for &x in &sample {
        sampled.push(x);
    }
    let mut t2 = Table::new(
        "statistics: full data vs 1% in-engine sample",
        &["statistic", "full data", "1% sample", "rel. error"],
    );
    let rows: Vec<(&str, f64, f64)> = vec![
        ("mean", whole.mean().unwrap(), sampled.mean().unwrap()),
        ("stddev", whole.stddev_sample().unwrap(), sampled.stddev_sample().unwrap()),
        ("median", percentile(&incomes, 50.0).unwrap(), percentile(&sample, 50.0).unwrap()),
        ("p90", percentile(&incomes, 90.0).unwrap(), percentile(&sample, 90.0).unwrap()),
        (
            "trimmed mean (10%)",
            trimmed_mean(&incomes, 0.10).unwrap(),
            trimmed_mean(&sample, 0.10).unwrap(),
        ),
    ];
    let mut max_err: f64 = 0.0;
    for (name, full, est) in rows {
        let err = (est - full).abs() / full.abs();
        max_err = max_err.max(err);
        t2.row([name.to_owned(), f(full), f(est), format!("{:.2}%", err * 100.0)]);
    }
    out.push('\n');
    out.push_str(&t2.render());
    out.push_str(&format!(
        "\nmax relative error of the 1% sample: {:.2}% — the paper's point: the\n\
         engine ships 1% of the bytes and the external package still gets\n\
         statistically usable answers.\n",
        max_err * 100.0
    ));
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn sample_statistics_are_close() {
        let s = super::run();
        assert!(s.contains("x100.00"));
        let max_line = s.lines().find(|l| l.contains("max relative error")).unwrap();
        let pct: f64 = max_line
            .split(':')
            .nth(1)
            .unwrap()
            .trim()
            .trim_end_matches(|c| c != '%')
            .trim_end_matches('%')
            .parse()
            .unwrap();
        assert!(pct < 10.0, "max error {pct}%");
    }
}
