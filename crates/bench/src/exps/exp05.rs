//! E05 — Figs 10 & 11: flat relation vs star schema.

use statcube_storage::relation::Relation;
use statcube_storage::row::RowStore;
use statcube_storage::star::{DimensionTable, StarSchema};
use statcube_workload::census::{generate, CensusConfig, AGE_GROUPS, RACES, SEXES};

use crate::report::{ratio, Table};

/// Builds the same census summary data as a flat Fig 10 relation and as a
/// Fig 11 star schema, comparing storage bytes and query page counts.
pub fn run() -> String {
    let census = generate(&CensusConfig { rows: 50_000, ..CensusConfig::default() });
    let micro = &census.micro;

    // Flat Fig 10 relation: all category attributes inline per row.
    let rel = Relation::from_micro(micro).expect("relation");
    let flat = RowStore::new(rel, 4096);

    // Fig 11 star schema: a geography dimension table (county, state) plus
    // demographics tables; the fact table holds fks + income.
    let mut geo = DimensionTable::new("geography", &["county", "state"]);
    let mut geo_pk = std::collections::HashMap::new();
    for county in &census.counties {
        let state = &county[..3];
        let pk = geo.push(&[county, state]).expect("geo row");
        geo_pk.insert(county.clone(), pk);
    }
    let mut person = DimensionTable::new("demographics", &["race", "sex", "age_group"]);
    let mut person_pk = std::collections::HashMap::new();
    for r in RACES {
        for s in SEXES {
            for a in AGE_GROUPS {
                let pk = person.push(&[r, s, a]).expect("person row");
                person_pk.insert((r, s, a), pk);
            }
        }
    }
    let mut star = StarSchema::new(vec![geo, person], &["income"], 4096);
    for row in 0..micro.len() {
        let county = micro.cat_value("county", row).expect("col");
        let race = micro.cat_value("race", row).expect("col");
        let sex = micro.cat_value("sex", row).expect("col");
        let age = micro.cat_value("age_group", row).expect("col");
        let income = micro.num_value("income", row).expect("col");
        let g = geo_pk[county];
        let p = person_pk[&(
            RACES.iter().find(|x| **x == race).copied().unwrap(),
            SEXES.iter().find(|x| **x == sex).copied().unwrap(),
            AGE_GROUPS.iter().find(|x| **x == age).copied().unwrap(),
        )];
        star.push_fact(&[g, p], &[income]).expect("fact");
    }

    let mut out = String::new();
    out.push_str("=== E05: flat relation (Fig 10) vs star schema (Fig 11) ===\n\n");
    let mut t = Table::new("storage", &["layout", "bytes", "vs flat"]);
    let flat_bytes = flat.size_bytes();
    t.row(["flat relation (dictionary codes)", &flat_bytes.to_string(), "x1.00"]);
    t.row([
        "star: fact table",
        &star.fact_bytes().to_string(),
        &ratio(star.fact_bytes() as f64 / flat_bytes as f64),
    ]);
    t.row([
        "star: total (fact + dims)",
        &star.size_bytes().to_string(),
        &ratio(star.size_bytes() as f64 / flat_bytes as f64),
    ]);
    t.row([
        "denormalized (strings inline)",
        &star.denormalized_bytes().to_string(),
        &ratio(star.denormalized_bytes() as f64 / flat_bytes as f64),
    ]);
    out.push_str(&t.render());

    // Query: total income of one state, via star vs flat scan.
    let state = &census.states[0];
    let (ssum, scount) = star.query_sum("geography", "state", state, "income").expect("query");
    let star_pages = star.io().pages_read();
    let preds = flat.predicates(&[("state", state)]).expect("preds");
    let (fsum, fcount) = flat.sum_where(&preds, 0);
    let flat_pages = flat.io().pages_read();
    let mut t2 = Table::new(
        format!("query: SUM(income) WHERE state = {state}"),
        &["layout", "answer", "rows", "pages read"],
    );
    t2.row([
        "star (dim scan + fact scan)",
        &format!("{ssum:.0}"),
        &scount.to_string(),
        &star_pages.to_string(),
    ]);
    t2.row([
        "flat relation full scan",
        &format!("{fsum:.0}"),
        &fcount.to_string(),
        &flat_pages.to_string(),
    ]);
    out.push('\n');
    out.push_str(&t2.render());
    out.push_str(&format!(
        "\nanswers agree: {} — the star reads {} of the flat scan's pages\n",
        (ssum - fsum).abs() < 1e-6 && scount == fcount,
        ratio(star_pages as f64 / flat_pages as f64),
    ));
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn star_and_flat_agree_and_star_is_smaller() {
        let s = super::run();
        assert!(s.contains("answers agree: true"));
        // Fact table smaller than the flat relation (2 fks vs 5 codes).
        let fact_line = s.lines().find(|l| l.contains("star: fact table")).unwrap();
        let r: f64 = fact_line.split('x').next_back().unwrap().trim().parse().unwrap();
        assert!(r < 1.0, "fact/flat ratio {r}");
    }
}
