//! E04 — Fig 8 / §3.3.2: the summarizability verdict table.

use statcube_core::dimension::Dimension;
use statcube_core::hierarchy::Hierarchy;
use statcube_core::measure::{MeasureKind, SummaryAttribute, SummaryFunction};
use statcube_core::schema::Schema;
use statcube_core::summarizability::{check_aggregate, check_project, Verdict};

use crate::report::Table;

fn verdict_str(v: &Verdict) -> String {
    match v {
        Verdict::Summarizable => "OK".to_owned(),
        Verdict::NotSummarizable(vs) => format!(
            "REJECTED ({})",
            vs.iter()
                .map(|v| match v {
                    statcube_core::error::Violation::NonStrictHierarchy { .. } => "non-strict",
                    statcube_core::error::Violation::IncompleteHierarchy { .. } => "incomplete",
                    statcube_core::error::Violation::UncoveredMember { .. } => "uncovered",
                    statcube_core::error::Violation::TemporalStock { .. } => "stock-over-time",
                    statcube_core::error::Violation::NonAdditiveMeasure { .. } => "non-additive",
                })
                .collect::<Vec<_>>()
                .join("+")
        ),
    }
}

/// Tabulates every summarizability scenario of §3.3.2 / \[LS97\] against
/// every summary function.
pub fn run() -> String {
    let mut out = String::new();
    out.push_str("=== E04: summarizability verdicts (Fig 8, §3.3.2, [LS97]) ===\n\n");
    let mut t =
        Table::new("scenario × function", &["scenario", "sum", "count", "avg", "min", "max"]);

    // Scenario rows: (name, closure producing a verdict per function).
    type Case = (&'static str, Box<dyn Fn(SummaryFunction) -> Verdict>);
    let strict_geo = Hierarchy::builder("geo")
        .level("city")
        .level("state")
        .edge("sf", "ca")
        .edge("la", "ca")
        .build()
        .unwrap();
    let incomplete_geo = Hierarchy::builder("geo")
        .level("city")
        .level("state")
        .edge("sf", "ca")
        .declare_incomplete()
        .build()
        .unwrap();
    let nonstrict = Hierarchy::builder("disease")
        .level("disease")
        .level("category")
        .edge("lung cancer", "cancer")
        .edge("lung cancer", "respiratory")
        .edge("flu", "respiratory")
        .build()
        .unwrap();

    let agg_case = |h: Hierarchy, kind: MeasureKind| {
        move |f: SummaryFunction| -> Verdict {
            let schema = Schema::builder("t")
                .dimension(Dimension::classified("d", h.clone()))
                .measure(SummaryAttribute::new("m", kind))
                .function(f)
                .build()
                .unwrap();
            Verdict::from_violations(check_aggregate(&schema, 0, &h, 1))
        }
    };
    let proj_case = |role_temporal: bool, kind: MeasureKind| {
        move |f: SummaryFunction| -> Verdict {
            let dim = if role_temporal {
                Dimension::temporal("d", ["a", "b"])
            } else {
                Dimension::categorical("d", ["a", "b"])
            };
            let schema = Schema::builder("t")
                .dimension(dim)
                .measure(SummaryAttribute::new("m", kind))
                .function(f)
                .build()
                .unwrap();
            Verdict::from_violations(check_project(&schema, 0))
        }
    };

    let cases: Vec<Case> = vec![
        (
            "strict complete hierarchy, flow",
            Box::new(agg_case(strict_geo.clone(), MeasureKind::Flow)),
        ),
        (
            "incomplete hierarchy (cities⊂state)",
            Box::new(agg_case(incomplete_geo, MeasureKind::Stock)),
        ),
        ("non-strict hierarchy (lung cancer)", Box::new(agg_case(nonstrict, MeasureKind::Flow))),
        ("flow over time (accident counts)", Box::new(proj_case(true, MeasureKind::Flow))),
        ("stock over time (population)", Box::new(proj_case(true, MeasureKind::Stock))),
        ("stock over space (population)", Box::new(proj_case(false, MeasureKind::Stock))),
        ("value-per-unit (avg income)", Box::new(proj_case(false, MeasureKind::ValuePerUnit))),
    ];

    for (name, case) in &cases {
        let mut row = vec![(*name).to_owned()];
        for f in SummaryFunction::ALL {
            row.push(verdict_str(&case(f)));
        }
        t.row(row);
    }
    out.push_str(&t.render());
    out.push_str("\nnote: min/max survive non-strict hierarchies (duplicate-insensitive); avg\nof a stock over time is meaningful while its sum is not — both as in [LS97].\n");
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn key_verdicts_present() {
        let s = super::run();
        // Stock over time: sum rejected, avg OK.
        let stock_line = s.lines().find(|l| l.contains("stock over time")).unwrap();
        assert!(stock_line.contains("stock-over-time"));
        assert!(stock_line.matches("REJECTED").count() == 1);
        // Non-strict: sum/count/avg rejected, min/max OK.
        let ns = s.lines().find(|l| l.contains("non-strict hierarchy")).unwrap();
        assert_eq!(ns.matches("non-strict").count(), 4); // name + 3 rejections
                                                         // Strict complete flow: everything OK.
        let ok = s.lines().find(|l| l.contains("strict complete")).unwrap();
        assert!(!ok.contains("REJECTED"));
    }
}
