//! E26 — planner rewrite ablation: what each pass buys on retail.
//!
//! The tentpole question: the summary-algebra planner runs two
//! cost-relevant rewrites (lattice-aware source selection, predicate
//! pushdown) plus one validation pass (summarizability). Disabling each
//! one ([`PlannerConfig`]) must leave every answer bit-identical — the
//! safety half is pinned in `tests/plan_rewrites.rs` — but changes what
//! the executor does. This experiment measures each pass where it acts,
//! on the retail workload (Fig 2's cube) served by a [`CachedSession`]
//! with the coarse `product × store` view materialized:
//!
//! * **lattice** — unfiltered grouping queries. With the pass on, coarse
//!   grouping sets derive from the small view; off, every set falls back
//!   to the largest ancestor (the base cuboid), multiplying cells
//!   scanned.
//! * **pushdown** — filtered queries. With the pass on, WHERE predicates
//!   move into the sealed store's scan and the session serves the query
//!   in place; off, the predicates stay at the leaf, which a sealed
//!   store cannot apply, so the session must bypass the cache and
//!   rebuild a cube from the object per query.
//! * **summarizability** — validation only: identical execution by
//!   design (its column never moves).
//!
//! The run asserts in-line that every config returns the same rows, then
//! reports cells scanned and routing per (query, config). A `json:` line
//! carries the numbers machine-readably for the CI smoke test.

use std::fmt::Write as _;
use std::time::Instant;

use statcube_core::measure::SummaryFunction;
use statcube_core::object::StatisticalObject;
use statcube_core::plan::PlannerConfig;
use statcube_cube::cache::CacheConfig;
use statcube_sql::ast::{AggExpr, Grouping, Predicate, Query};
use statcube_sql::{CachedSession, PhysicalAnswer};
use statcube_workload::retail::{generate, RetailConfig};

use crate::report::{ratio, Table};

/// Retail workload shape (sized for CI; the defaults would also work).
const CONFIG: RetailConfig = RetailConfig {
    products: 60,
    categories: 6,
    cities: 4,
    stores_per_city: 3,
    days: 30,
    rows: 20_000,
    seed: 26,
};

/// The coarse view the lattice pass can route to: `product × store`.
const VIEW: u32 = 0b011;

/// Every config variant: all passes on, then each rewrite disabled.
fn configs() -> Vec<(&'static str, PlannerConfig)> {
    let on = PlannerConfig::default();
    vec![
        ("default", on),
        ("no-summarizability", PlannerConfig { summarizability: false, ..on }),
        ("no-lattice", PlannerConfig { lattice: false, ..on }),
        ("no-pushdown", PlannerConfig { pushdown: false, ..on }),
    ]
}

fn query(grouping: Grouping, filters: Vec<Predicate>, from: &str) -> Query {
    Query {
        select: vec![AggExpr { func: SummaryFunction::Sum, arg: Some("quantity sold".into()) }],
        from: from.to_owned(),
        filters,
        grouping,
    }
}

/// Runs one query under one config on a fresh (cold) session, so cells
/// scanned measures the scan rather than a cache hit.
fn run_one(obj: &StatisticalObject, q: &Query, config: PlannerConfig) -> (PhysicalAnswer, u128) {
    let session = CachedSession::with_views(obj, &[VIEW], CacheConfig::default())
        .expect("session")
        .with_planner_config(config);
    let t = Instant::now();
    let ans = session.execute(q).expect("cached path");
    (ans, t.elapsed().as_micros())
}

/// Sorted printable rows (sums rounded to 9 significant digits — merge
/// order follows `HashMap` iteration).
fn row_key(ans: &PhysicalAnswer) -> Vec<String> {
    let mut v: Vec<String> = ans
        .result
        .rows
        .iter()
        .map(|r| {
            let vals: Vec<String> = r
                .values
                .iter()
                .map(|v| v.map_or("NULL".to_owned(), |x| format!("{x:.8e}")))
                .collect();
            format!("{:?} {:?}", r.group, vals)
        })
        .collect();
    v.sort();
    v
}

/// Measures the planner's rewrite passes on retail.
pub fn run() -> String {
    let retail = generate(&CONFIG);
    let obj = &retail.object;
    let from = obj.schema().name().to_owned();
    let dims = obj.schema().dimensions();
    let a_product = dims[0].members().values().next().expect("a product").to_owned();
    let a_store = dims[1].members().values().next().expect("a store").to_owned();

    let mut out = String::new();
    out.push_str("=== E26: planner rewrite ablation — what each pass buys on retail ===\n\n");
    let _ = writeln!(
        out,
        "workload: retail, {} products x {} stores x {} days, {} rows;\n\
         every session materializes the product x store view ({:#b}) plus the base\n",
        CONFIG.products,
        CONFIG.cities * CONFIG.stores_per_city,
        CONFIG.days,
        CONFIG.rows,
        VIEW,
    );

    // --- lattice: cells scanned on unfiltered groupings ------------------
    let lattice_queries = [
        ("GROUP BY product", query(Grouping::Plain(vec!["product".into()]), vec![], &from)),
        ("GROUP BY store", query(Grouping::Plain(vec!["store".into()]), vec![], &from)),
        (
            "CUBE(product, store)",
            query(Grouping::Cube(vec!["product".into(), "store".into()]), vec![], &from),
        ),
    ];
    let mut t = Table::new(
        "lattice pass: cells scanned per config (answers verified identical)",
        &["query", "default", "no-summarizability", "no-lattice", "lattice win"],
    );
    let mut json_lattice = String::new();
    for (label, q) in &lattice_queries {
        let mut cells = Vec::new();
        let mut reference: Option<Vec<String>> = None;
        for (name, config) in configs() {
            let (ans, _) = run_one(obj, q, config);
            let rows = row_key(&ans);
            match &reference {
                None => reference = Some(rows),
                Some(r) => assert_eq!(&rows, r, "{label}: answers diverged under {name}"),
            }
            cells.push(ans.cells_scanned);
        }
        t.row([
            (*label).to_owned(),
            cells[0].to_string(),
            cells[1].to_string(),
            cells[2].to_string(),
            ratio(cells[2] as f64 / cells[0].max(1) as f64),
        ]);
        let _ = write!(
            json_lattice,
            "{}{{\"query\":\"{label}\",\"default\":{},\"no_summarizability\":{},\
             \"no_lattice\":{}}}",
            if json_lattice.is_empty() { "" } else { "," },
            cells[0],
            cells[1],
            cells[2],
        );
    }
    out.push_str(&t.render());
    out.push('\n');

    // --- pushdown: store serviceability of filtered queries ---------------
    let pushdown_queries = [
        (
            "WHERE product=.. GROUP BY store",
            query(
                Grouping::Plain(vec!["store".into()]),
                vec![Predicate { column: "product".into(), value: a_product, negated: false }],
                &from,
            ),
        ),
        (
            "WHERE store=.. CUBE(product, day)",
            query(
                Grouping::Cube(vec!["product".into(), "day".into()]),
                vec![Predicate { column: "store".into(), value: a_store, negated: false }],
                &from,
            ),
        ),
    ];
    let mut tp = Table::new(
        "pushdown pass: WHERE placement on the sealed store",
        &["query", "config", "route", "cells scanned", "wall (µs)"],
    );
    let mut json_pushdown = String::new();
    for (label, q) in &pushdown_queries {
        let mut reference: Option<Vec<String>> = None;
        let mut bypassed = Vec::new();
        for (name, config) in
            [("default", PlannerConfig::default()), ("no-pushdown", configs()[3].1)]
        {
            let (ans, micros) = run_one(obj, q, config);
            let rows = row_key(&ans);
            match &reference {
                None => reference = Some(rows),
                Some(r) => assert_eq!(&rows, r, "{label}: answers diverged under {name}"),
            }
            tp.row([
                (*label).to_owned(),
                name.to_owned(),
                if ans.bypassed_cache {
                    "bypass: rebuild cube from object".to_owned()
                } else {
                    "served by sealed store".to_owned()
                },
                ans.cells_scanned.to_string(),
                micros.to_string(),
            ]);
            bypassed.push(ans.bypassed_cache);
        }
        let _ = write!(
            json_pushdown,
            "{}{{\"query\":\"{label}\",\"default_bypassed\":{},\"no_pushdown_bypassed\":{}}}",
            if json_pushdown.is_empty() { "" } else { "," },
            bypassed[0],
            bypassed[1],
        );
    }
    out.push_str(&tp.render());

    out.push_str(
        "\nthe lattice pass routes coarse grouping sets to the materialized view\n\
         instead of the base cuboid — an order-of-magnitude fewer cells scanned\n\
         at identical answers; summarizability is validation-only, so its column\n\
         never moves. pushdown decides *where* a WHERE predicate runs: pushed\n\
         into the sealed store's scan the session answers in place (and wins\n\
         clearly on selective queries); left at the leaf the store cannot\n\
         apply it, so every such query rebuilds a cube from the object — a\n\
         rebuild that only amortizes on wide filtered CUBEs, where the\n\
         filtered cube is much smaller than the sealed base.\n",
    );
    let _ =
        writeln!(out, "\njson: {{\"lattice\":[{json_lattice}],\"pushdown\":[{json_pushdown}]}}");
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn rewrites_deliver_measurable_wins() {
        let s = super::run();
        assert!(s.contains("lattice pass: cells scanned"));
        assert!(s.contains("pushdown pass: WHERE placement"));
        let json = s.lines().find(|l| l.starts_with("json: ")).expect("json line");
        let num = |seg: &str, key: &str| -> u64 {
            let at = seg.find(key).expect(key) + key.len();
            seg[at..]
                .trim_start_matches(':')
                .chars()
                .take_while(char::is_ascii_digit)
                .collect::<String>()
                .parse()
                .expect("number")
        };
        // The acceptance claim: the lattice pass shows a measurable
        // cells-scanned reduction on every pinned retail grouping, and the
        // validation pass never changes the scan.
        let lattice: Vec<(u64, u64, u64)> = json
            .split('{')
            .filter(|seg| seg.contains("\"no_lattice\""))
            .map(|seg| {
                (
                    num(seg, "\"default\""),
                    num(seg, "\"no_summarizability\""),
                    num(seg, "\"no_lattice\""),
                )
            })
            .collect();
        assert_eq!(lattice.len(), 3);
        for &(d, summ, l) in &lattice {
            assert!(l > d, "lattice pass shows no scan reduction ({l} vs {d})\n{s}");
            assert_eq!(d, summ, "summarizability ablation changed the scan\n{s}");
        }
        // Pushdown keeps filtered queries on the sealed store; the ablation
        // forces a per-query rebuild.
        let pushdown: Vec<(&str, &str)> = json
            .split('{')
            .filter(|seg| seg.contains("\"default_bypassed\""))
            .map(|seg| {
                let flag = |key: &str| {
                    let at = seg.find(key).expect(key) + key.len();
                    if seg[at..].trim_start_matches(':').starts_with("true") {
                        "true"
                    } else {
                        "false"
                    }
                };
                (flag("\"default_bypassed\""), flag("\"no_pushdown_bypassed\""))
            })
            .collect();
        assert_eq!(pushdown.len(), 2);
        for &(d, n) in &pushdown {
            assert_eq!(d, "false", "default config bypassed the store\n{s}");
            assert_eq!(n, "true", "no-pushdown still served from the store\n{s}");
        }
    }
}
