//! E23 — degradation cost under injected faults.
//!
//! The fault-injected page store (checksums + retry + lattice fallback)
//! promises that queries stay *exact* under corruption, at a price paid in
//! extra I/O: a failed source forces a detour to a larger healthy ancestor.
//! This experiment sweeps the injected fault rate over a materialized-view
//! workload and reports that price — extra pages read, retries, simulated
//! backoff, degraded answers, and typed refusals — so the robustness bill
//! is a measured curve rather than a claim.

use std::time::Instant;

use statcube_cube::input::FactInput;
use statcube_cube::query::ViewStore;
use statcube_storage::page_store::FaultPlan;

use crate::report::Table;

fn make_input(cards: &[usize], rows: usize, seed: u64) -> FactInput {
    let mut input = FactInput::new(cards).expect("input");
    let mut x = seed | 1;
    for _ in 0..rows {
        let coords: Vec<u32> = cards
            .iter()
            .map(|&c| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x % c as u64) as u32
            })
            .collect();
        input.push(&coords, (x % 1000) as f64).expect("push");
    }
    input
}

/// One sweep cell: answers every cuboid `repeat` times under `plan`,
/// returning `(pages_read, degraded, errors, wall_ms, retries, backoff_us)`.
fn sweep(input: &FactInput, selected: &[u32], plan: FaultPlan, repeat: usize) -> SweepRow {
    let store = ViewStore::build(input, selected).expect("build");
    store.arm_faults(plan);
    let top = (1u32 << input.dim_count()) - 1;
    let t0 = Instant::now();
    let mut degraded = 0u64;
    let mut errors = 0u64;
    for _ in 0..repeat {
        for mask in 0..=top {
            match store.answer(mask) {
                Ok(a) if a.degraded.is_some() => degraded += 1,
                Ok(_) => {}
                Err(_) => errors += 1,
            }
        }
    }
    let wall_ms = t0.elapsed().as_secs_f64() * 1000.0;
    let stats = store.fault_stats();
    SweepRow {
        pages_read: store.page_store().io().pages_read(),
        degraded,
        errors,
        wall_ms,
        retries: stats.retries,
        backoff_us: stats.backoff_us,
    }
}

struct SweepRow {
    pages_read: u64,
    degraded: u64,
    errors: u64,
    wall_ms: f64,
    retries: u64,
    backoff_us: u64,
}

/// Sweeps the injected fault rate and reports the degradation cost curve.
pub fn run() -> String {
    let cards = [24usize, 12, 6, 4];
    let rows = 40_000;
    let input = make_input(&cards, rows, 23);
    // The four 3-dim cuboids: every coarser mask has several covering
    // ancestors, so a failed source has somewhere to fall back *to*.
    let selected = [0b0111u32, 0b1011, 0b1101, 0b1110];
    let repeat = 3;

    let mut out = String::new();
    out.push_str("=== E23: degradation cost under injected faults ===\n\n");
    out.push_str(&format!(
        "workload: {rows} facts over {cards:?}, views {selected:?} + base, \
         {} queries per rate (uniform fault plan, seed = rate index)\n\n",
        (1 << cards.len()) * repeat,
    ));

    let rates = [0.0, 0.005, 0.01, 0.02, 0.05];
    let baseline = sweep(&input, &selected, FaultPlan::fault_free(0), repeat);
    let mut t = Table::new(
        "fault-rate sweep",
        &[
            "fault rate",
            "pages read",
            "extra pages",
            "degraded answers",
            "typed errors",
            "retries",
            "backoff (us)",
            "wall (ms)",
        ],
    );
    for (i, &rate) in rates.iter().enumerate() {
        let r = sweep(&input, &selected, FaultPlan::uniform(i as u64, rate), repeat);
        t.row([
            format!("{:.1}%", rate * 100.0),
            r.pages_read.to_string(),
            format!("{:+}", r.pages_read as i64 - baseline.pages_read as i64),
            r.degraded.to_string(),
            r.errors.to_string(),
            r.retries.to_string(),
            r.backoff_us.to_string(),
            format!("{:.1}", r.wall_ms),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(
        "\nevery answered query is bit-identical to the fault-free oracle (the\n\
         chaos suite asserts this across 120 seeds). Low fault rates buy\n\
         retries and fallback detours to larger ancestors (positive extra\n\
         pages, degraded answers); past the regime where even the fallbacks\n\
         fault, queries refuse with typed errors instead — aborted reads,\n\
         so pages read *drop* while refusals climb. Never a silently wrong\n\
         aggregate at any rate.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn fault_free_is_clean_and_faults_cost_io() {
        let cards = [6usize, 4, 3];
        let input = super::make_input(&cards, 2000, 9);
        let selected = [0b011u32, 0b101];
        let clean = super::sweep(&input, &selected, super::FaultPlan::fault_free(0), 2);
        assert_eq!(clean.degraded, 0);
        assert_eq!(clean.errors, 0);
        assert_eq!(clean.retries, 0);
        let faulty = super::sweep(&input, &selected, super::FaultPlan::uniform(1, 0.15), 2);
        // A 15% uniform plan must visibly cost something: retries, detours,
        // or refusals.
        assert!(faulty.retries + faulty.degraded + faulty.errors > 0);
        assert!(faulty.pages_read >= clean.pages_read);
    }

    #[test]
    fn report_renders() {
        let s = super::run();
        assert!(s.contains("fault-rate sweep"));
        assert!(s.contains("degraded answers"));
    }
}
