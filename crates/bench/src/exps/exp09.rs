//! E09 — Fig 16 / §5.5: the completeness homomorphism.

use statcube_core::hierarchy::Hierarchy;
use statcube_core::measure::SummaryFunction;
use statcube_core::microdata::{
    homomorphism_aggregate, homomorphism_project, homomorphism_select, homomorphism_union,
};
use statcube_workload::census::{generate, CensusConfig};

use crate::report::Table;

/// Checks the Fig 16 square — relational algebra on micro-data followed by
/// summarization equals statistical algebra on macro-data — for
/// select/project/union across all five summary functions on census data.
pub fn run() -> String {
    let census = generate(&CensusConfig { rows: 8_000, ..CensusConfig::default() });
    let micro = &census.micro;
    let a = micro.select_eq("state", "s00").expect("subset a");
    let b = micro.select_eq("state", "s01").expect("subset b");

    let mut out = String::new();
    out.push_str("=== E09: completeness homomorphism (Fig 16, [MRS92]) ===\n\n");
    out.push_str("square checked: summarize(RA-op(micro)) == S-op(summarize(micro))\n\n");
    let mut t = Table::new("commutes?", &["RA op / S-op", "sum", "count", "avg", "min", "max"]);
    let group = ["state", "sex", "race"];
    let mut all_ok = true;
    {
        let mut row = vec!["select σ(sex=female) / S-select".to_owned()];
        for f in SummaryFunction::ALL {
            let ok = homomorphism_select(micro, &group, Some("income"), f, "sex", "female")
                .expect("select square");
            all_ok &= ok;
            row.push(ok.to_string());
        }
        t.row(row);
    }
    {
        let mut row = vec!["project π(drop race) / S-project".to_owned()];
        for f in SummaryFunction::ALL {
            let ok = homomorphism_project(micro, &group, Some("income"), f, "race")
                .expect("project square");
            all_ok &= ok;
            row.push(ok.to_string());
        }
        t.row(row);
    }
    {
        let mut row = vec!["union (s00 ∪ s01) / S-union".to_owned()];
        for f in SummaryFunction::ALL {
            let ok = homomorphism_union(&a, &b, &group, Some("income"), f).expect("union square");
            all_ok &= ok;
            row.push(ok.to_string());
        }
        t.row(row);
    }
    {
        // Count-measure variant (no numeric column).
        let mut row = vec!["select, COUNT(*) measure".to_owned()];
        for f in SummaryFunction::ALL {
            let ok =
                homomorphism_select(micro, &group, None, f, "race", "asian").expect("count square");
            all_ok &= ok;
            row.push(ok.to_string());
        }
        t.row(row);
    }
    {
        // Roll-up square: reclassify micro to regions vs S-aggregate macro.
        let mut geo = Hierarchy::builder("geo").level("state").level("region");
        for s in 0..10 {
            geo = geo.edge(&format!("s{s:02}"), if s < 5 { "east" } else { "west" });
        }
        let geo = geo.build().expect("geo hierarchy");
        let mut row = vec!["roll-up (states→regions) / S-aggregation".to_owned()];
        for f in SummaryFunction::ALL {
            let ok = homomorphism_aggregate(micro, &group, Some("income"), f, "state", &geo)
                .expect("aggregate square");
            all_ok &= ok;
            row.push(ok.to_string());
        }
        t.row(row);
    }
    out.push_str(&t.render());
    out.push_str(&format!("\nall {} squares commute: {all_ok}\n", 5 * SummaryFunction::ALL.len()));
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn every_square_commutes() {
        let s = super::run();
        assert!(s.contains("all 25 squares commute: true"));
        assert!(!s.contains("false"));
    }
}
