//! E10 — Fig 17 / §5.7: classification matching.

use statcube_core::dimension::Dimension;
use statcube_core::matching::{realign, IntervalClassification, VersionedClassification};
use statcube_core::measure::{MeasureKind, SummaryAttribute};
use statcube_core::object::StatisticalObject;
use statcube_core::schema::Schema;

use crate::report::{f, Table};

/// Reruns both Fig 17 scenarios: realigning two incompatible age-group
/// classifications (with the interpolation documented), and diffing a
/// time-varying industry classification.
pub fn run() -> String {
    let mut out = String::new();
    out.push_str("=== E10: classification matching (Fig 17, §5.7) ===\n\n");

    // Non-overlapping granularities: DB1 0-5,6-10,11-15,16-20 vs
    // DB2 0-1,2-10,11-20 (modeled as half-open decades of years).
    let db1 =
        IntervalClassification::from_boundaries("db1 age groups", &[0.0, 6.0, 11.0, 16.0, 21.0])
            .expect("db1");
    let db2 = IntervalClassification::from_boundaries("db2 age groups", &[0.0, 2.0, 11.0, 21.0])
        .expect("db2");
    let combined = db1.combine(&db2).expect("combined");
    out.push_str(&format!(
        "combined classification (split at all boundaries): {:?}\n\n",
        combined.labels()
    ));

    let schema = Schema::builder("population by age group (db1)")
        .dimension(Dimension::categorical("age group", db1.labels()))
        .measure(SummaryAttribute::new("population", MeasureKind::Stock))
        .build()
        .expect("schema");
    let mut obj = StatisticalObject::empty(schema);
    let counts = [600.0, 500.0, 450.0, 380.0];
    for (label, &v) in db1.labels().iter().zip(&counts) {
        obj.insert(&[label], v).expect("cell");
    }
    let (aligned, report) = realign(&obj, "age group", &db1, &db2).expect("realign");
    let mut t = Table::new(
        "db1 population realigned onto db2 bins",
        &["db2 bin", "population", "from (db1 bin × fraction)"],
    );
    for (label, sources) in &report.provenance {
        let v = aligned.get(&[label]).expect("cell").unwrap_or(0.0);
        let prov =
            sources.iter().map(|(s, w)| format!("{s}×{w:.2}")).collect::<Vec<_>>().join(" + ");
        t.row([label.clone(), f(v), prov]);
    }
    out.push_str(&t.render());
    out.push_str(&format!(
        "\nmethod recorded with the data: {}\ntotal preserved: {} = {}\n",
        report.method,
        f(obj.grand_total(0).unwrap()),
        f(aligned.grand_total(0).unwrap()),
    ));

    // Time-varying categories: internet added in 1991.
    let mut v = VersionedClassification::new();
    v.add_version("1990", ["agriculture", "automobiles"]);
    v.add_version("1991", ["agriculture", "automobiles", "internet"]);
    let d = v.diff("1990", "1991").expect("diff");
    out.push_str("\n--- time-varying industry classification ---\n");
    out.push_str(&format!(
        "retained: {:?}\nadded in 1991: {:?}\nremoved: {:?}\n",
        d.retained, d.added, d.removed
    ));
    out.push_str(&format!(
        "cross-year summary domain: {:?}; `internet` existed in 1990: {}\n",
        v.union_categories(),
        v.existed("internet", "1990"),
    ));
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn totals_preserved_and_diff_reported() {
        let s = super::run();
        assert!(s.contains("total preserved: 1930 = 1930"));
        assert!(s.contains("added in 1991: [\"internet\"]"));
        assert!(s.contains("uniform-within-bin"));
    }
}
