//! E17 — Fig 24 / §6.5: extendible arrays.

use statcube_storage::cubetree::CubeTree;
use statcube_storage::extendible::ExtendibleArray;
use statcube_storage::io_stats::IoStats;

use crate::report::{ratio, Table};

/// Reproduces the \[RZ86\] claim: daily appends write only the increment,
/// versus a restructure that rewrites the whole array each time; range
/// queries stay correct across the accumulated increments.
pub fn run() -> String {
    const PRODUCTS: usize = 2_000;
    const DAYS: usize = 90;
    let mut out = String::new();
    out.push_str("=== E17: extendible arrays (Fig 24, [RZ86]) ===\n\n");

    // Incremental appends.
    let mut arr = ExtendibleArray::new(&[PRODUCTS, 1], 4096).expect("array");
    for p in 0..PRODUCTS {
        arr.set(&[p, 0], p as f64).expect("set");
    }
    let before = arr.io().pages_written();
    let mut restructure_pages = 0u64;
    let restructure_io = IoStats::new(4096);
    for day in 1..DAYS {
        arr.extend(1, 1).expect("extend");
        for p in (0..PRODUCTS).step_by(3) {
            arr.set(&[p, day], (p * day) as f64).expect("set");
        }
        // What a restructure-based layout would write for the same append:
        // the entire (products × days) array so far.
        restructure_io.charge_seq_write(arr.restructure_bytes());
        restructure_pages = restructure_io.pages_written();
    }
    let append_pages = arr.io().pages_written() - before;
    let mut t = Table::new(
        format!("{} daily appends of a {}-product slice", DAYS - 1, PRODUCTS),
        &["strategy", "pages written", "vs extendible"],
    );
    t.row(["extendible array (increments only)", &append_pages.to_string(), "x1.00"]);
    t.row([
        "restructure per append (dense rewrite)",
        &restructure_pages.to_string(),
        &ratio(restructure_pages as f64 / append_pages as f64),
    ]);
    out.push_str(&t.render());
    out.push_str(&format!(
        "\nsegments accumulated: {}; final shape {:?}\n",
        arr.segment_count(),
        arr.dims()
    ));

    // Range query across the increment boundary stays correct.
    arr.io().reset();
    let (sum, count) = arr.range_sum(&[0, DAYS - 5], &[PRODUCTS, DAYS]).expect("range");
    let expected: f64 = (DAYS - 5..DAYS)
        .skip(1) // day 0 column never falls in this range; days ≥ 1 only
        .map(|_| 0.0)
        .sum::<f64>()
        + (DAYS - 5..DAYS)
            .map(|day| {
                if day == 0 {
                    0.0
                } else {
                    (0..PRODUCTS).step_by(3).map(|p| (p * day) as f64).sum::<f64>()
                }
            })
            .sum::<f64>();
    out.push_str(&format!(
        "range query over the last 5 days: sum {sum:.0} (expected {expected:.0}, match: {}), \
         {count} cells, {} segment reads charged\n",
        (sum - expected).abs() < 1e-6,
        arr.io().pages_read(),
    ));
    out.push_str(
        "\nshape as in [RZ86]: append cost is O(increment) instead of O(array),\n\
         a gap that widens linearly with the array's age.\n",
    );

    // §6.5's other citation: [RKR97]'s Cubetree — bulk updates on a packed
    // R-tree by merge-packing instead of record-at-a-time inserts.
    let mut x = 3u64;
    let mut pts = |n: usize| -> Vec<(Vec<u32>, f64)> {
        (0..n)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (vec![(x % 500) as u32, ((x >> 9) % 500) as u32], (x % 100) as f64)
            })
            .collect()
    };
    let mut tree = CubeTree::bulk_load(pts(100_000), 2, 4096).expect("bulk load");
    tree.io().reset();
    let batch = pts(5_000);
    let batch_len = batch.len() as u64;
    tree.bulk_update(batch).expect("bulk update");
    let merge_pages = tree.io().pages_read() + tree.io().pages_written();
    // A dynamic R-tree insert touches ~height pages per record, read+write.
    let per_record_pages = batch_len * 2 * tree.height() as u64;
    out.push_str(&format!(
        "\n[RKR97] cubetree: merging a 5k-record batch into a 100k-point packed\n\
         R-tree costs {merge_pages} sequential pages vs ~{per_record_pages} for record-at-a-time\n\
         inserts ({}); a 10x10 range query then touches {} of {} pages.\n",
        ratio(per_record_pages as f64 / merge_pages as f64),
        {
            tree.io().reset();
            let _ = tree.range_sum(&[100, 100], &[110, 110]).expect("range");
            tree.io().pages_read()
        },
        tree.page_count(),
    ));
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn appends_beat_restructure_and_queries_match() {
        let s = super::run();
        assert!(s.contains("match: true"));
        let line = s.lines().find(|l| l.contains("restructure per append")).unwrap();
        let factor: f64 = line.rsplit('x').next().unwrap().trim().parse().unwrap();
        assert!(factor > 20.0, "restructure should be far costlier: x{factor}");
        assert!(s.contains("segments accumulated: 90"));
    }
}
