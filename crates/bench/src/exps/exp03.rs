//! E03 — Figs 3–7: STORM schema graphs.

use statcube_core::dimension::Dimension;
use statcube_core::hierarchy::Hierarchy;
use statcube_core::measure::{MeasureKind, SummaryAttribute, SummaryFunction};
use statcube_core::schema::Schema;
use statcube_core::schema_graph::SchemaGraph;

/// Renders the Fig 4 schema graph, the Fig 5 grouped variant, checks the
/// Fig 6 equivalence, and captures the Fig 7 2-D layout.
pub fn run() -> String {
    let profession = Hierarchy::builder("profession")
        .level("Profession")
        .level("Professional class")
        .edge("chemical engineer", "engineer")
        .edge("civil engineer", "engineer")
        .edge("junior secretary", "secretary")
        .build()
        .expect("valid hierarchy");
    let schema = Schema::builder("Average Income in California")
        .dimension(Dimension::categorical("Sex", ["M", "F"]))
        .dimension(Dimension::categorical("Race", ["white", "black", "asian"]))
        .dimension(Dimension::categorical("Age", ["young", "mid", "old"]))
        .dimension(Dimension::temporal("Year", ["88", "89", "90"]))
        .dimension(Dimension::classified("Profession", profession))
        .measure(SummaryAttribute::new("Average Income", MeasureKind::ValuePerUnit))
        .function(SummaryFunction::Avg)
        .context("state", "California")
        .build()
        .expect("valid schema");

    let g = SchemaGraph::from_schema(&schema);
    let mut out = String::new();
    out.push_str("=== E03: STORM schema graphs (Figs 3-7) ===\n\n");
    out.push_str("--- Fig 4: schema graph derived from the statistical object ---\n");
    out.push_str(&g.render());

    let grouped = g.group("Socio-Economic Categories", &["Sex", "Race", "Age"]).expect("grouping");
    out.push_str("\n--- Fig 5: X-node grouping for semantic clarity ---\n");
    out.push_str(&grouped.render());
    out.push_str(&format!("\nFig 6 equivalence (grouped ≡ flat): {}\n", g.equivalent(&grouped)));
    let twice = grouped.group("Everything", &["Socio-Economic Categories"]).expect("regroup");
    out.push_str(&format!("iterated grouping still equivalent: {}\n", g.equivalent(&twice)));

    let layout =
        g.two_d_layout(&["Sex", "Year"], &["Profession", "Race", "Age"]).expect("2-D layout");
    out.push_str("\n--- Fig 7: ordered 2-D layout capture ---\n");
    out.push_str(&layout.render());
    out.push_str(&format!(
        "layout is NOT equivalent to the unordered graph (order matters): {}\n",
        !g.equivalent(&layout)
    ));
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn reports_equivalences() {
        let s = super::run();
        assert!(s.contains("Fig 6 equivalence (grouped ≡ flat): true"));
        assert!(s.contains("iterated grouping still equivalent: true"));
        assert!(s.contains("order matters): true"));
        assert!(s.contains("C: Professional class"));
    }
}
