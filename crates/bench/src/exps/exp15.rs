//! E15 — Fig 22 / §6.3: greedy view materialization.

use statcube_cube::lattice::Lattice;
use statcube_cube::materialize::{greedy_select, space_used, total_cost};

use crate::report::{f, ratio, Table};

/// Reruns the \[HUR96\] experiment on the Fig 22 lattice shape
/// (product × location × day): per-step greedy benefits, and average
/// query cost for none / greedy-k / full materialization.
pub fn run() -> String {
    // Fig 22's dimensions with realistic cardinalities, 1M base facts.
    let lattice = Lattice::new(&[1000, 50, 365], 1_000_000).expect("lattice");
    let names = ["product", "location", "day"];
    let mut out = String::new();
    out.push_str("=== E15: greedy view materialization (Fig 22, [HUR96]) ===\n\n");
    out.push_str("the lattice (cuboid = estimated cells):\n");
    out.push_str(&lattice.render(&names));

    let greedy = greedy_select(&lattice, 6).expect("greedy");
    let mut t = Table::new("greedy selection order", &["step", "view", "size", "benefit"]);
    for (i, (&mask, &benefit)) in greedy.selected.iter().zip(&greedy.benefits).enumerate() {
        let name: Vec<&str> = (0..3).filter(|d| mask & (1 << d) != 0).map(|d| names[d]).collect();
        let label = if name.is_empty() { "(apex)".to_owned() } else { name.join(",") };
        t.row([(i + 1).to_string(), label, lattice.size(mask).to_string(), benefit.to_string()]);
    }
    out.push('\n');
    out.push_str(&t.render());

    let top = lattice.top();
    let mut t2 = Table::new(
        "average query cost (cells scanned, uniform workload)",
        &["materialized set", "space (cells)", "avg query cost", "vs base only"],
    );
    let base_cost = total_cost(&lattice, &[top]) as f64 / 8.0;
    let mut rows: Vec<(String, Vec<u32>)> = vec![("base only".into(), vec![top])];
    for k in [1usize, 2, 4, 6] {
        let g = greedy_select(&lattice, k).expect("greedy");
        let mut views = vec![top];
        views.extend(g.selected);
        rows.push((format!("base + greedy {k}"), views));
    }
    rows.push(("full materialization".into(), (0..8).collect()));
    for (label, views) in rows {
        let cost = total_cost(&lattice, &views) as f64 / 8.0;
        t2.row([label, space_used(&lattice, &views).to_string(), f(cost), ratio(base_cost / cost)]);
    }
    out.push('\n');
    out.push_str(&t2.render());
    out.push_str(
        "\nshape as in [HUR96]: benefits diminish per step and most of the gain\n\
         of full materialization arrives within the first few greedy views.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn benefits_diminish_and_costs_improve() {
        let s = super::run();
        let idx = s.find("greedy selection order").unwrap();
        let benefits: Vec<u64> = s[idx..]
            .lines()
            .skip(3)
            .take(6)
            .filter_map(|l| l.split_whitespace().last()?.parse().ok())
            .collect();
        assert_eq!(benefits.len(), 6);
        assert!(benefits.windows(2).all(|w| w[0] >= w[1]), "{benefits:?}");
        // greedy-6 reaches a large share of full materialization's speedup.
        let parse_ratio = |label: &str| -> f64 {
            s.lines()
                .find(|l| l.contains(label))
                .unwrap()
                .rsplit('x')
                .next()
                .unwrap()
                .trim()
                .parse()
                .unwrap()
        };
        let g6 = parse_ratio("base + greedy 6");
        let full = parse_ratio("full materialization");
        assert!(g6 >= 0.8 * full, "greedy 6 {g6} vs full {full}");
        assert!(full > 1.5);
    }
}
