//! E13 — Fig 20 / §6.2: array linearization.

use statcube_core::measure::SummaryFunction;
use statcube_storage::linear::LinearizedArray;
use statcube_workload::retail::{generate, RetailConfig};

use crate::report::{f, ratio, Table};

/// Reproduces the MOLAP storage argument: the dense linearized array
/// stores each dimension's values once and beats the relational layout
/// while the space is dense, then loses as density falls.
pub fn run() -> String {
    let mut out = String::new();
    out.push_str("=== E13: array linearization (Fig 20, MOLAP storage) ===\n\n");
    let mut t = Table::new(
        "dense array vs relational bytes across density",
        &["facts", "density", "array bytes", "relational bytes", "array/relational"],
    );
    let mut crossover_seen = (false, false);
    for rows in [500usize, 5_000, 50_000, 400_000] {
        let retail = generate(&RetailConfig {
            products: 50,
            categories: 10,
            cities: 4,
            stores_per_city: 3,
            days: 40,
            rows,
            seed: 13,
        });
        let arr = LinearizedArray::from_object(&retail.object, 0, SummaryFunction::Sum)
            .expect("linearize");
        let r = arr.size_bytes() as f64 / arr.relational_bytes() as f64;
        if r < 1.0 {
            crossover_seen.1 = true;
        } else {
            crossover_seen.0 = true;
        }
        t.row([
            rows.to_string(),
            f(arr.density()),
            arr.size_bytes().to_string(),
            arr.relational_bytes().to_string(),
            ratio(r),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(&format!(
        "\ncrossover observed (relational wins sparse, array wins dense): {}\n",
        crossover_seen.0 && crossover_seen.1
    ));

    // The position calculation itself.
    let arr = LinearizedArray::new(&[5, 6]).expect("array");
    out.push_str(&format!(
        "\nFig 20 position function on a 5x6 array: (0,0)→{}, (1,0)→{}, (4,5)→{}\n",
        arr.offset_of(&[0, 0]).unwrap(),
        arr.offset_of(&[1, 0]).unwrap(),
        arr.offset_of(&[4, 5]).unwrap(),
    ));
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn crossover_and_offsets() {
        let s = super::run();
        assert!(s.contains("crossover observed (relational wins sparse, array wins dense): true"));
        assert!(s.contains("(0,0)→0, (1,0)→6, (4,5)→29"));
    }
}
