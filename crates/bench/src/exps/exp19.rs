//! E19 — §7: privacy mechanisms and attacks.

use statcube_privacy::overlap::OverlapAuditedDatabase;
use statcube_privacy::perturb::{accuracy_report, input_perturb, OutputPerturbedDatabase};
use statcube_privacy::restrict::{demo_database, Pred, ProtectedDatabase};
use statcube_privacy::suppress::{apply_suppression, line_safe, plan_suppression};
use statcube_privacy::tracker::{difference_attack, general_tracker};

use crate::report::{f, Table};

/// Walks §7 end to end: restriction, the tracker defeating it, overlap
/// control blocking the tracker, cell suppression with complementary
/// protection, and the accuracy-vs-privacy table for perturbation.
pub fn run() -> String {
    let mut out = String::new();
    out.push_str("=== E19: privacy in summary databases (§7, [DS80]) ===\n\n");

    // 1. Restriction denies the direct query.
    let db = ProtectedDatabase::new(demo_database(), 3).lower_bound_only();
    let direct = db.sum(&[Pred::eq("age_group", "65")], "salary");
    out.push_str(&format!(
        "1. query-set restriction (k=3): SUM(salary | age=65) → {}\n",
        match &direct {
            Ok(v) => format!("{v}"),
            Err(e) => format!("DENIED ({e})"),
        }
    ));

    // 2. The tracker defeats it with only legal queries.
    let attack = difference_attack(&db, &[], &Pred::eq("age_group", "65"), "salary")
        .expect("attack succeeds");
    out.push_str(&format!(
        "2. tracker attack [DS80]: {} legal queries infer the individual's\n   salary exactly: {} (count {})\n",
        attack.queries_used.len(),
        attack.value,
        attack.count
    ));

    // 2b. The general tracker: survives even the stronger k that blocks
    // the individual tracker's padding.
    let strict = ProtectedDatabase::new(demo_database(), 5).lower_bound_only();
    let blocked = difference_attack(&strict, &[], &Pred::eq("age_group", "65"), "salary");
    let general = general_tracker(
        &strict,
        &[Pred::eq("age_group", "65")],
        &[Pred::eq("dept", "eng")],
        "salary",
    );
    out.push_str(&format!(
        "2b. at k=5 the difference attack is {}, but the GENERAL tracker\n    (T = dept=eng) still infers {} — [DS80]'s full negative result\n",
        if blocked.is_err() { "blocked" } else { "possible" },
        match &general {
            Ok(c) => format!("${}", c.value),
            Err(e) => format!("(failed: {e})"),
        }
    ));

    // 3. Overlap control blocks the same attack.
    let mut audited = OverlapAuditedDatabase::new(
        ProtectedDatabase::new(demo_database(), 3).lower_bound_only(),
        2,
    );
    let step1 = audited.sum(&[], "salary");
    let step2 = audited.sum(&[Pred::ne("age_group", "65")], "salary");
    out.push_str(&format!(
        "3. overlap auditing (max overlap 2): broad query {}, padded tracker\n   query {}\n",
        if step1.is_ok() { "answered" } else { "denied" },
        match step2 {
            Ok(_) => "answered (attack would succeed!)".to_owned(),
            Err(e) => format!("DENIED ({e})"),
        }
    ));

    // 4. Cell suppression on a published count table.
    let table = vec![vec![1u64, 9, 14], vec![8, 2, 12], vec![12, 11, 3]];
    let plan = plan_suppression(&table, 5);
    let (published, row_totals, _, grand) = apply_suppression(&table, &plan);
    let mut t = Table::new(
        "4. cell suppression (threshold 5): published table",
        &["row", "c0", "c1", "c2", "total"],
    );
    for (r, row) in published.iter().enumerate() {
        let cells: Vec<String> = row
            .iter()
            .map(|c| c.map(|v| v.to_string()).unwrap_or_else(|| "*".to_owned()))
            .collect();
        t.row([
            format!("r{r}"),
            cells[0].clone(),
            cells[1].clone(),
            cells[2].clone(),
            row_totals[r].to_string(),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(&format!(
        "   primary {} + complementary {} suppressions; grand total {} still\n   published; line-subtraction safe: {}\n",
        plan.primary.len(),
        plan.complementary.len(),
        grand,
        line_safe(&table, &plan)
    ));

    // 5. Perturbation: accuracy vs privacy.
    let truth_db = ProtectedDatabase::new(demo_database(), 3).lower_bound_only();
    let queries: Vec<Vec<Pred>> = vec![
        vec![Pred::eq("dept", "eng")],
        vec![Pred::eq("dept", "sales")],
        vec![Pred::eq("age_group", "30-39")],
        vec![],
    ];
    let truths: Vec<f64> =
        queries.iter().map(|q| truth_db.avg(q, "salary").expect("truth")).collect();
    let mut t2 = Table::new(
        "5. perturbation: accuracy vs attack error (avg salary queries)",
        &["mechanism", "noise", "RMSE of answers", "tracker error on target"],
    );
    for &mag in &[1_000.0f64, 5_000.0, 20_000.0] {
        // Output perturbation.
        let mut noisy = OutputPerturbedDatabase::new(
            ProtectedDatabase::new(demo_database(), 3).lower_bound_only(),
            mag,
            99,
        );
        let answers: Vec<f64> =
            queries.iter().map(|q| noisy.avg(q, "salary").expect("answer")).collect();
        let (_, rmse) = accuracy_report(&truths, &answers);
        // Input perturbation, attacked.
        let perturbed = input_perturb(&demo_database(), "salary", mag, 99).expect("perturb");
        let pdb = ProtectedDatabase::new(perturbed, 3).lower_bound_only();
        let atk = difference_attack(&pdb, &[], &Pred::eq("age_group", "65"), "salary")
            .expect("attack runs");
        t2.row(["output + input".to_owned(), f(mag), f(rmse), f((atk.value - 180_000.0).abs())]);
    }
    out.push_str(&t2.render());
    out.push_str(
        "\nshape as in §7: restriction alone falls to trackers; every remedy\n\
         (overlap auditing, suppression, perturbation) buys privacy with either\n\
         refusals or noise — 'an imperfect solution is better than none'.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn narrative_holds() {
        let s = super::run();
        assert!(s.contains("DENIED"), "direct query must be denied");
        assert!(s.contains("salary exactly: 180000"));
        assert!(s.contains("GENERAL tracker\n    (T = dept=eng) still infers $180000"));
        assert!(!s.contains("attack would succeed!"));
        assert!(s.contains("line-subtraction safe: true"));
        assert!(s.contains('*'), "suppressed cells rendered");
    }
}
