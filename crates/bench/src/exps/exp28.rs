//! E28 — durability cost and recovery replay.
//!
//! The crash-consistency layer's two bills, measured on the pinned serving
//! workload ([`serving`]):
//!
//! 1. **What does journaling cost the write path?** Sequentially applying
//!    the same pinned delta batches on an in-memory store vs a durable one
//!    (append + sync + commit stamp per batch). The fold dominates; the
//!    journal appends a few hundred bytes per 20-row batch.
//! 2. **What does recovery cost, as a function of the journal tail?**
//!    Replay time after a "crash" with 5, 20, and 80 un-checkpointed
//!    batches in the journal — recovery is linear in the tail, which is
//!    exactly what [`SharedViewStore::checkpoint`] bounds: after a
//!    checkpoint, the same journal replays zero deltas.

use std::fmt::Write as _;
use std::time::Instant;

use statcube_cube::shared::{DurableParts, SharedViewStore};

use crate::report::{ratio, Table};
use crate::serving::{
    self, build_durable_store, build_store, delta_batches, make_facts, DELTA_ROWS,
};

/// Batches for the overhead comparison (same count as the perf gate).
const APPLY_BATCHES: usize = 30;
/// Journal tail lengths (batches) for the recovery sweep.
const TAILS: [usize; 3] = [5, 20, 80];
/// Best-of runs for the timed paths.
const RUNS: usize = 3;

/// Runs the measurements and renders the tables + `json:` line.
pub fn run() -> String {
    let facts = make_facts(3);
    let mut out = String::new();
    out.push_str("=== E28: durability cost and recovery replay ===\n\n");
    let _ = writeln!(
        out,
        "workload: {} facts over {:?}, {} greedy views + base, {}-row delta batches\n",
        serving::ROWS,
        serving::CARDS,
        serving::GREEDY_VIEWS,
        DELTA_ROWS,
    );

    // --- 1: journal append overhead on the fold path ----------------------
    let batches = delta_batches(28, APPLY_BATCHES);
    let mut mem_rows_per_sec = 0.0f64;
    for _ in 0..RUNS {
        let store = build_store(&facts, 0);
        let t = Instant::now();
        for b in &batches {
            store.apply_delta(b).expect("delta");
        }
        let secs = t.elapsed().as_secs_f64().max(1e-9);
        mem_rows_per_sec = mem_rows_per_sec.max((APPLY_BATCHES * DELTA_ROWS) as f64 / secs);
    }
    let mut durable_rows_per_sec = 0.0f64;
    let mut journal_bytes_per_batch = 0u64;
    for _ in 0..RUNS {
        let parts = DurableParts::new();
        let store = build_durable_store(&facts, 0, parts.clone());
        let before = parts.journal().len();
        let t = Instant::now();
        for b in &batches {
            store.apply_delta(b).expect("delta");
        }
        let secs = t.elapsed().as_secs_f64().max(1e-9);
        durable_rows_per_sec = durable_rows_per_sec.max((APPLY_BATCHES * DELTA_ROWS) as f64 / secs);
        journal_bytes_per_batch = (parts.journal().len() - before) / APPLY_BATCHES as u64;
    }
    let overhead_pct = (mem_rows_per_sec / durable_rows_per_sec.max(1e-9) - 1.0) * 100.0;
    let mut t = Table::new(
        "incremental apply throughput, in-memory vs journaled (sequential)",
        &["write path", "rows/s", "vs in-memory"],
    );
    t.row(["in-memory fold".into(), format!("{mem_rows_per_sec:.0}"), "1.0x (baseline)".into()]);
    t.row([
        "journaled fold (append+sync+commit)".into(),
        format!("{durable_rows_per_sec:.0}"),
        ratio(durable_rows_per_sec / mem_rows_per_sec.max(1e-9)),
    ]);
    out.push_str(&t.render());
    let _ = writeln!(
        out,
        "\njournal footprint: {journal_bytes_per_batch} bytes per {DELTA_ROWS}-row batch \
         (delta record + commit record); overhead {overhead_pct:.1}% on the fold path.\n",
    );

    // --- 2: recovery time vs journal tail length --------------------------
    let mut t = Table::new(
        "recovery replay vs un-checkpointed journal tail",
        &["tail (batches)", "replayed rows", "recovery (ms)", "replay rows/s"],
    );
    let mut recovery_replay_rows_per_sec = 0.0f64;
    let mut tail80_ms = 0.0f64;
    let mut tail80_rows = 0u64;
    for tail in TAILS {
        let parts = DurableParts::new();
        {
            let store = build_durable_store(&facts, 0, parts.clone());
            for b in delta_batches(31, tail) {
                store.apply_delta(&b).expect("delta");
            }
            // The store drops here: the simulated process death. Only the
            // journal + manifest (the `parts`) survive.
        }
        let mut best_secs = f64::MAX;
        let mut replayed_rows = 0u64;
        for _ in 0..RUNS {
            let fresh = DurableParts::from_journal_image(parts.journal().image());
            let t0 = Instant::now();
            let (_, report) =
                SharedViewStore::recover(&fresh, Default::default()).expect("recover");
            best_secs = best_secs.min(t0.elapsed().as_secs_f64().max(1e-9));
            assert_eq!(report.replayed_deltas as usize, tail, "tail {tail}");
            replayed_rows = report.replayed_rows;
        }
        let rows_per_sec = replayed_rows as f64 / best_secs;
        if tail == TAILS[TAILS.len() - 1] {
            recovery_replay_rows_per_sec = rows_per_sec;
            tail80_ms = best_secs * 1e3;
            tail80_rows = replayed_rows;
        }
        t.row([
            tail.to_string(),
            replayed_rows.to_string(),
            format!("{:.2}", best_secs * 1e3),
            format!("{rows_per_sec:.0}"),
        ]);
    }
    out.push_str(&t.render());
    out.push('\n');

    // --- 3: a checkpoint bounds the tail ----------------------------------
    let (checkpoint_replayed, checkpoint_ms) = {
        let parts = DurableParts::new();
        {
            let store = build_durable_store(&facts, 0, parts.clone());
            for b in delta_batches(31, TAILS[2]) {
                store.apply_delta(&b).expect("delta");
            }
            store.checkpoint().expect("checkpoint");
            for b in delta_batches(37, 5) {
                store.apply_delta(&b).expect("delta");
            }
        }
        let t0 = Instant::now();
        let (_, report) = SharedViewStore::recover(&parts, Default::default()).expect("recover");
        (report.replayed_deltas, t0.elapsed().as_secs_f64() * 1e3)
    };
    let _ = writeln!(
        out,
        "checkpoint bound: after checkpointing the {}-batch tail, the same journal\n\
         recovers replaying only the {checkpoint_replayed} post-checkpoint batches \
         ({checkpoint_ms:.2} ms) —\nreplay work is bounded by the checkpoint interval, \
         not the journal's age.",
        TAILS[2],
    );

    let _ = writeln!(
        out,
        "\njson: {{\"delta_rows_per_sec_memory\":{mem_rows_per_sec:.1},\
         \"delta_rows_per_sec_durable\":{durable_rows_per_sec:.1},\
         \"journal_overhead_pct\":{overhead_pct:.2},\
         \"journal_bytes_per_batch\":{journal_bytes_per_batch},\
         \"recovery_tail_batches\":{},\
         \"recovery_replayed_rows\":{tail80_rows},\
         \"recovery_ms\":{tail80_ms:.2},\
         \"recovery_replay_rows_per_sec\":{recovery_replay_rows_per_sec:.1},\
         \"checkpoint_replayed_deltas\":{checkpoint_replayed}}}",
        TAILS[2],
    );
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn durability_costs_are_bounded_and_checkpoints_bound_replay() {
        let s = super::run();
        assert!(s.contains("incremental apply throughput"));
        assert!(s.contains("recovery replay vs un-checkpointed journal tail"));
        let json = s.lines().find(|l| l.starts_with("json: ")).expect("json line");
        let num = |key: &str| -> f64 {
            let at = json.find(key).expect(key) + key.len();
            json[at..]
                .trim_start_matches(':')
                .chars()
                .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
                .collect::<String>()
                .parse()
                .expect("number")
        };
        // Journaling must not dominate the fold: the durable path keeps at
        // least a fifth of the in-memory throughput (in practice ~parity;
        // the loose bound absorbs loaded CI machines).
        let mem = num("\"delta_rows_per_sec_memory\"");
        let dur = num("\"delta_rows_per_sec_durable\"");
        assert!(dur > mem * 0.2, "journaling overhead too high: {dur} vs {mem}\n{s}");
        // Recovery replays the full tail and reports real throughput.
        assert_eq!(num("\"recovery_replayed_rows\"") as u64, 80 * 20);
        assert!(num("\"recovery_replay_rows_per_sec\"") > 0.0);
        // The checkpoint bounds replay to the post-checkpoint batches.
        assert_eq!(num("\"checkpoint_replayed_deltas\"") as u64, 5);
        // A 20-row batch journals as delta + commit records: more than the
        // raw fact bytes, far less than a page.
        let per_batch = num("\"journal_bytes_per_batch\"");
        assert!((100.0..4096.0).contains(&per_batch), "journal bytes/batch: {per_batch}");
    }
}
