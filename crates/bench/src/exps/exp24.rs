//! E24 — query-profile observability across the physical organizations.
//!
//! The tracing layer (`statcube_core::trace`) exists so the experiments can
//! *show their work*: an `EXPLAIN ANALYZE`-style span tree for one query and
//! a metrics registry whose labeled I/O counters split page traffic by
//! physical organization (§6 of the paper). This experiment demonstrates
//! both:
//!
//! 1. one `GROUP BY CUBE` statement through the *physical* SQL path, with
//!    the resulting [`QueryProfile`] covering all three layers — sql
//!    (tokenize/parse/plan/eval), cube (one `cube.answer` per grouping
//!    set), storage (checksummed page reads);
//! 2. the same logical array stored in every §6 organization, each
//!    load/query stage timed under spans and its page traffic captured by
//!    the organization's labeled `IoStats`;
//! 3. the cost of the observability itself: the identical query with
//!    tracing disabled, where every probe is one relaxed atomic load.

use std::time::Instant;

use statcube_core::prelude::*;
use statcube_core::trace;
use statcube_sql::execute_physical_str;
use statcube_storage::chunked::ChunkedArray;
use statcube_storage::column::TransposedStore;
use statcube_storage::cubetree::CubeTree;
use statcube_storage::extendible::ExtendibleArray;
use statcube_storage::relation::Relation;
use statcube_storage::row::RowStore;
use statcube_storage::star::{DimensionTable, StarSchema};

use crate::report::Table;

const CUBE_SQL: &str = "SELECT SUM(amount) FROM sales GROUP BY CUBE(product, store, month)";

fn retail() -> StatisticalObject {
    let schema = Schema::builder("sales")
        .dimension(Dimension::categorical("product", ["apple", "pear", "plum", "quince"]))
        .dimension(Dimension::categorical("store", ["s1", "s2", "s3"]))
        .dimension(Dimension::categorical("month", ["jan", "feb", "mar"]))
        .measure(SummaryAttribute::new("amount", MeasureKind::Flow))
        .function(SummaryFunction::Sum)
        .build()
        .expect("schema");
    let mut o = StatisticalObject::empty(schema);
    let products = ["apple", "pear", "plum", "quince"];
    let stores = ["s1", "s2", "s3"];
    let months = ["jan", "feb", "mar"];
    let mut x = 24u64 | 1;
    for p in products {
        for s in stores {
            for m in months {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                // ~70% populated, skewed values.
                if x % 10 < 7 {
                    o.insert(&[p, s, m], (x % 97) as f64).expect("insert");
                }
            }
        }
    }
    o
}

/// Deterministic populated cells of a `cards`-shaped array: ~40% fill.
fn cells(cards: &[usize], seed: u64) -> Vec<(Vec<usize>, f64)> {
    let mut out = Vec::new();
    let mut x = seed | 1;
    let total: usize = cards.iter().product();
    for flat in 0..total {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        if x % 10 < 4 {
            let mut rest = flat;
            let mut coords = vec![0usize; cards.len()];
            for (d, &c) in cards.iter().enumerate().rev() {
                coords[d] = rest % c;
                rest /= c;
            }
            out.push((coords, (x % 1000) as f64));
        }
    }
    out
}

/// Times `f` under a completed span named `stage`, tagged with the org.
fn staged<T>(stage: &'static str, f: impl FnOnce() -> T) -> T {
    let t0 = Instant::now();
    let out = f();
    trace::record_complete(stage, t0.elapsed(), &[]);
    out
}

/// Runs load + full-range query for one organization under tracing and
/// returns `(load, query, pages_read, cells)` from the profile + registry.
fn profile_org<T>(
    label: &str,
    load: impl FnOnce() -> T,
    query: impl FnOnce(&T) -> u64,
) -> (f64, f64, u64, u64) {
    trace::reset_metrics();
    let cells = {
        let _root = trace::span("exp24.org");
        let store = staged("exp24.load", load);
        staged("exp24.query", || query(&store))
    };
    let profile = trace::take_profile();
    let ms = |name: &str| profile.total_elapsed(name).as_secs_f64() * 1000.0;
    let pages = trace::snapshot().counter(&format!("storage.{label}.pages_read"));
    (ms("exp24.load"), ms("exp24.query"), pages, cells)
}

/// Prints the three-layer profile of a CUBE query, the per-organization
/// per-stage breakdown with labeled page counters, and the disabled-mode
/// cost of the probes themselves.
pub fn run() -> String {
    let mut out = String::new();
    out.push_str("=== E24: query-profile observability (spans + metrics) ===\n\n");

    // --- Part 1: one CUBE query, three layers of spans. -----------------
    let obj = retail();
    trace::enable();
    trace::reset_metrics();
    let ans = execute_physical_str(&obj, CUBE_SQL).expect("physical query");
    let snap = trace::snapshot();
    trace::disable();

    out.push_str(&format!("query: {CUBE_SQL}\n"));
    out.push_str(&format!(
        "rows: {}; grouping sets answered: {}; degraded answers: {}\n\n",
        ans.result.rows.len(),
        ans.profile.as_ref().map_or(0, |p| {
            let mut n = 0;
            p.each(&mut |node| n += u32::from(node.name == "cube.answer"));
            n
        }),
        ans.degraded_answers,
    ));
    let profile = ans.profile.as_ref().expect("tracing was enabled");
    out.push_str(&profile.render());

    let mut t = Table::new("registry counters for the query above", &["counter", "value"]);
    for (name, v) in snap.counters_with_prefix("") {
        t.row([name.to_owned(), v.to_string()]);
    }
    out.push('\n');
    out.push_str(&t.render());

    // --- Part 2: per-organization per-stage breakdown. -------------------
    // The same ~40%-populated [16, 12, 8] logical array in every §6
    // organization; each one loads then answers its full-range aggregate
    // under spans, and the labeled IoStats splits the page traffic.
    let cards = [16usize, 12, 8];
    let data = cells(&cards, 24);
    let page = 4096;
    trace::enable();

    let mut t2 = Table::new(
        "per-organization stages, one full-range aggregate",
        &["organization", "load (ms)", "query (ms)", "pages read", "cells"],
    );
    let mut add = |org: &str, (load, query, pages, n): (f64, f64, u64, u64)| {
        t2.row([
            org.to_owned(),
            format!("{load:.2}"),
            format!("{query:.2}"),
            pages.to_string(),
            n.to_string(),
        ]);
    };

    {
        let rel = {
            let mut rel = Relation::new(&["d0", "d1", "d2"], &["v"]);
            let names: Vec<Vec<String>> =
                cards.iter().map(|&c| (0..c).map(|i| format!("m{i}")).collect()).collect();
            for (coords, v) in &data {
                let cats: Vec<&str> =
                    coords.iter().enumerate().map(|(d, &i)| names[d][i].as_str()).collect();
                rel.push(&cats, &[*v]).expect("push");
            }
            rel
        };
        add(
            "row",
            profile_org(
                "row",
                || RowStore::new(rel.clone(), page),
                |r| {
                    let preds = r.predicates(&[]).expect("preds");
                    r.sum_where(&preds, 0).1
                },
            ),
        );
        add(
            "transposed",
            profile_org(
                "transposed",
                || TransposedStore::new(rel.clone(), page),
                |c| {
                    let preds = c.predicates(&[]).expect("preds");
                    c.sum_where(&preds, 0).1
                },
            ),
        );
    }
    add(
        "chunked",
        profile_org(
            "chunked",
            || {
                let mut arr = ChunkedArray::symmetric(&cards, 8, page).expect("chunked");
                for (coords, v) in &data {
                    arr.set(coords, *v).expect("set");
                }
                arr
            },
            |a| a.range_sum(&[0, 0, 0], &cards).expect("range").1,
        ),
    );
    add(
        "extendible",
        profile_org(
            "extendible",
            || {
                let mut arr = ExtendibleArray::new(&cards, page).expect("extendible");
                for (coords, v) in &data {
                    arr.set(coords, *v).expect("set");
                }
                arr
            },
            |a| a.range_sum(&[0, 0, 0], &cards).expect("range").1,
        ),
    );
    let hi: Vec<u32> = cards.iter().map(|&c| c as u32).collect();
    add(
        "cubetree",
        profile_org(
            "cubetree",
            || {
                let points = data
                    .iter()
                    .map(|(c, v)| (c.iter().map(|&i| i as u32).collect::<Vec<u32>>(), *v));
                CubeTree::bulk_load(points, cards.len(), page).expect("cubetree")
            },
            |a| a.range_sum(&[0, 0, 0], &hi).expect("range").1,
        ),
    );
    add(
        "star",
        profile_org(
            "star",
            || {
                let mut dims = Vec::new();
                for (d, &c) in cards.iter().enumerate() {
                    let mut dt = DimensionTable::new(format!("d{d}"), &["name"]);
                    for i in 0..c {
                        dt.push(&[&format!("m{i}")]).expect("dim row");
                    }
                    dims.push(dt);
                }
                let mut s = StarSchema::new(dims, &["v"], page);
                for (coords, v) in &data {
                    let fks: Vec<u32> = coords.iter().map(|&i| i as u32).collect();
                    s.push_fact(&fks, &[*v]).expect("fact");
                }
                s
            },
            |s| {
                // One dimension-restricted star query per member of d0
                // covers the full range.
                (0..cards[0])
                    .map(|i| s.query_sum("d0", "name", &format!("m{i}"), "v").expect("query").1)
                    .sum()
            },
        ),
    );
    trace::disable();
    out.push('\n');
    out.push_str(&t2.render());

    // --- Part 3: what the probes cost when tracing is off. ---------------
    let iters = 40;
    let timed = |enabled: bool| {
        if enabled {
            trace::enable();
        } else {
            trace::disable();
        }
        let t0 = Instant::now();
        for _ in 0..iters {
            let a = execute_physical_str(&obj, CUBE_SQL).expect("physical query");
            assert!(!a.result.rows.is_empty());
            if enabled {
                let _ = trace::take_profile();
            }
        }
        let ms = t0.elapsed().as_secs_f64() * 1000.0 / iters as f64;
        trace::disable();
        ms
    };
    // Warm up, then measure both modes.
    timed(false);
    let off = timed(false);
    let on = timed(true);
    trace::reset_metrics();
    out.push_str(&format!(
        "\ntracing cost on the query above ({iters} iters): disabled {off:.3} ms/query, \
         enabled {on:.3} ms/query ({:+.1}%)\n\
         disabled-mode probes are single relaxed atomic loads, charged per\n\
         query stage (never per row), which keeps the disabled overhead on\n\
         E22's hot loop inside its <2% budget.\n",
        (on / off - 1.0) * 100.0,
    ));
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn profile_covers_three_layers_and_all_organizations() {
        let s = super::run();
        // The span tree reaches every layer.
        for span in ["sql.query", "sql.parse", "sql.execute", "cube.answer", "storage.read"] {
            assert!(s.contains(span), "missing span {span}");
        }
        // Labeled page counters attribute I/O to the page store.
        assert!(s.contains("storage.page_store.pages_read"));
        // Every §6 organization reports a stage row.
        for org in ["row", "transposed", "chunked", "extendible", "cubetree", "star"] {
            assert!(s.lines().any(|l| l.trim_start().starts_with(org)), "missing org {org}");
        }
        assert!(s.contains("tracing cost"));
    }
}
