//! E29 — vectorized execution: batch kernels vs the tuple interpreter.
//!
//! The tentpole measurement for the batched executor. Three questions,
//! each answered on retail-shaped data:
//!
//! * **kernels vs interpreter** — the same [`PlannedQuery`](statcube_core::plan)
//!   executed by the batched kernels ([`plan::execute`]) and by the frozen
//!   tuple-at-a-time oracle ([`plan::execute_interpreter`]), answers
//!   verified identical, throughput compared. The kernel path fuses scan +
//!   filter + aggregate over sorted blocks; the oracle re-hashes every
//!   tuple.
//! * **batch-size sweep** — storage-side chunked aggregation
//!   ([`statcube_storage::chunks`]) at chunk sizes from 64 to 16k rows,
//!   locating the cache-residency plateau the kernel's `BATCH` constant
//!   sits on.
//! * **RLE-aware vs decompress-then-aggregate** — the run-aware kernel
//!   (one `merge_run` per run) against decoding the column and scanning
//!   dense, on a sorted (run-friendly) column; cost scales with runs, not
//!   cells.
//!
//! A `json:` line carries the numbers machine-readably; the unit test pins
//! the qualitative claims (identical answers, run-aware wins, sweep is
//! answer-invariant).

use std::fmt::Write as _;
use std::time::Instant;

use statcube_core::measure::AggState;
use statcube_core::plan::{
    self, AggRequest, GroupingSpec, ObjectSource, Plan, PlanExecution, Planner,
};
use statcube_storage::chunks::{aggregate_chunks, aggregate_dense, aggregate_runs, dense_chunks};
use statcube_storage::rle::Rle;
use statcube_workload::retail::{generate, RetailConfig};

use crate::report::{ratio, Table};

/// Retail workload shape (sized for CI).
const CONFIG: RetailConfig = RetailConfig {
    products: 40,
    categories: 5,
    cities: 3,
    stores_per_city: 3,
    days: 30,
    rows: 30_000,
    seed: 29,
};

/// Executor-comparison passes per measurement (best-of-3 runs).
const EXEC_PASSES: usize = 5;
const RUNS: usize = 3;

/// Fingerprint for answer identity: per-set cell count plus count-sum
/// totals (order-free and exact; float sums are checked rounded).
fn fingerprint(exec: &PlanExecution) -> Vec<String> {
    exec.sets
        .iter()
        .map(|s| {
            let b = &s.cells;
            let counts: u64 = (0..b.len()).map(|i| b.cell_count(i)).sum();
            let sums: f64 = (0..b.len()).map(|i| b.state(0, i).sum).sum();
            format!("{:#b}:{}:{}:{:.8e}", s.target, b.len(), counts, sums)
        })
        .collect()
}

/// Measures one executor's passes/sec, best of [`RUNS`].
fn throughput(mut f: impl FnMut()) -> f64 {
    let mut best = 0.0f64;
    for _ in 0..RUNS {
        let t = Instant::now();
        for _ in 0..EXEC_PASSES {
            f();
        }
        best = best.max(EXEC_PASSES as f64 / t.elapsed().as_secs_f64().max(1e-9));
    }
    best
}

/// Runs E29 and renders its tables.
pub fn run() -> String {
    let retail = generate(&CONFIG);
    let obj = &retail.object;
    let mut out = String::new();
    out.push_str("=== E29: vectorized execution — batch kernels vs tuple interpreter ===\n\n");
    let _ = writeln!(
        out,
        "workload: retail, {} products x {} stores x {} days, {} rows ({} base cells)\n",
        CONFIG.products,
        CONFIG.cities * CONFIG.stores_per_city,
        CONFIG.days,
        CONFIG.rows,
        obj.cell_count(),
    );

    // --- kernels vs interpreter ------------------------------------------
    let dims: Vec<String> = obj.schema().dimensions().iter().map(|d| d.name().to_owned()).collect();
    let aggs = vec![AggRequest {
        func: obj.schema().function(0),
        measure: Some(obj.schema().measures()[0].name().to_owned()),
        label: "sum".into(),
    }];
    let plans = [
        (
            "CUBE(product, store, day)",
            Plan::scan(obj.schema().name()).grouping_sets(
                dims.clone(),
                GroupingSpec::Cube,
                aggs.clone(),
            ),
        ),
        (
            "ROLLUP(product, store)",
            Plan::scan(obj.schema().name()).grouping_sets(
                dims[..2].to_vec(),
                GroupingSpec::Rollup,
                aggs,
            ),
        ),
    ];
    let mut t = Table::new(
        "executor throughput (plan executions/sec, answers verified identical)",
        &["plan", "interpreter", "batched kernels", "speedup"],
    );
    let mut json_exec = String::new();
    for (label, p) in &plans {
        let planned = Planner::for_object(obj.schema()).plan(p).expect("plan");
        let mut base = obj.clone();
        for (d, dim) in obj.schema().dimensions().iter().enumerate() {
            if planned.base_mask() >> d & 1 == 0 {
                base = statcube_core::ops::s_project_unchecked(&base, dim.name()).expect("project");
            }
        }
        let src = ObjectSource::new(&base, planned.base_mask()).expect("source");
        let batched = plan::execute(&planned, &src).expect("batched");
        let oracle = plan::execute_interpreter(&planned, &src).expect("oracle");
        assert_eq!(fingerprint(&batched), fingerprint(&oracle), "{label}: answers diverged");
        let kernel_ops = throughput(|| {
            assert!(!plan::execute(&planned, &src).expect("batched").sets.is_empty());
        });
        let interp_ops = throughput(|| {
            assert!(!plan::execute_interpreter(&planned, &src).expect("oracle").sets.is_empty());
        });
        let speedup = kernel_ops / interp_ops.max(1e-9);
        t.row([
            (*label).to_owned(),
            format!("{interp_ops:.1}"),
            format!("{kernel_ops:.1}"),
            ratio(speedup),
        ]);
        let _ = write!(
            json_exec,
            "{}{{\"plan\":\"{label}\",\"interpreter\":{interp_ops:.1},\
             \"kernels\":{kernel_ops:.1},\"speedup\":{speedup:.2}}}",
            if json_exec.is_empty() { "" } else { "," },
        );
    }
    out.push_str(&t.render());
    out.push('\n');

    // --- batch-size sweep -------------------------------------------------
    let mut rows: Vec<(Vec<u32>, f64)> = obj.cells().map(|(k, s)| (k.to_vec(), s[0].sum)).collect();
    rows.sort_by(|a, b| a.0.cmp(&b.0));
    let values: Vec<f64> = rows.iter().map(|&(_, v)| v).collect();
    let reference = aggregate_dense(&values);
    let mut ts = Table::new(
        "batch-size sweep: chunked dense aggregation (same answer at every size)",
        &["chunk rows", "Mcells/sec"],
    );
    let mut json_sweep = String::new();
    for chunk in [64usize, 256, 1024, 2048, 8192, 16384] {
        let mut best = 0.0f64;
        for _ in 0..RUNS {
            let t = Instant::now();
            let s = aggregate_chunks(dense_chunks(&values, chunk));
            let secs = t.elapsed().as_secs_f64().max(1e-9);
            assert_eq!(s, reference, "chunk size {chunk} changed the answer");
            best = best.max(values.len() as f64 / secs / 1e6);
        }
        ts.row([chunk.to_string(), format!("{best:.1}")]);
        let _ = write!(
            json_sweep,
            "{}{{\"chunk\":{chunk},\"mcells_per_sec\":{best:.1}}}",
            if json_sweep.is_empty() { "" } else { "," },
        );
    }
    out.push_str(&ts.render());
    out.push('\n');

    // --- RLE-aware vs decompress-then-aggregate ---------------------------
    // Sort by store then day: quantities repeat, runs form.
    let mut sorted_vals: Vec<f64> = values.clone();
    sorted_vals.sort_by(f64::total_cmp);
    let rle = Rle::encode(&sorted_vals);
    let run_aware = aggregate_runs(rle.runs());
    let decoded = aggregate_dense(&rle.decode());
    assert_eq!(run_aware, decoded, "RLE-aware kernel diverged from decode-then-scan");
    let mut aware_ops = 0.0f64;
    let mut decode_ops = 0.0f64;
    for _ in 0..RUNS {
        let t = Instant::now();
        let mut acc = AggState::EMPTY;
        for _ in 0..EXEC_PASSES * 10 {
            acc.merge(&aggregate_runs(rle.runs()));
        }
        let secs = t.elapsed().as_secs_f64().max(1e-9);
        std::hint::black_box(&acc);
        aware_ops = aware_ops.max((EXEC_PASSES * 10) as f64 / secs);
        let t = Instant::now();
        let mut acc = AggState::EMPTY;
        for _ in 0..EXEC_PASSES * 10 {
            acc.merge(&aggregate_dense(&rle.decode()));
        }
        let secs = t.elapsed().as_secs_f64().max(1e-9);
        std::hint::black_box(&acc);
        decode_ops = decode_ops.max((EXEC_PASSES * 10) as f64 / secs);
    }
    let mut tr = Table::new(
        "RLE: run-aware kernel vs decompress-then-aggregate",
        &["path", "scans/sec", "units touched"],
    );
    tr.row(["run-aware".into(), format!("{aware_ops:.1}"), format!("{} runs", rle.run_count())]);
    tr.row(["decode+scan".into(), format!("{decode_ops:.1}"), format!("{} cells", rle.len())]);
    out.push_str(&tr.render());
    let _ = writeln!(
        out,
        "\nruns/cells = {}/{} ({}); run-aware speedup {}\n",
        rle.run_count(),
        rle.len(),
        ratio(rle.run_count() as f64 / rle.len().max(1) as f64),
        ratio(aware_ops / decode_ops.max(1e-9)),
    );

    out.push_str(
        "the batched executor amortizes per-tuple dispatch into per-batch\n\
         kernels: one selection vector, one hash per selected key, sorted-run\n\
         accumulation when the target is a key prefix. the RLE kernel shows\n\
         the same idea one layer down — cost follows the compressed shape\n\
         (runs), not the logical cell count.\n",
    );
    let _ = writeln!(
        out,
        "\njson: {{\"executor\":[{json_exec}],\"sweep\":[{json_sweep}],\
         \"rle\":{{\"runs\":{},\"cells\":{},\"aware_per_sec\":{aware_ops:.1},\
         \"decode_per_sec\":{decode_ops:.1}}}}}",
        rle.run_count(),
        rle.len(),
    );
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn kernels_match_oracle_and_rle_scales_with_runs() {
        let s = super::run();
        // Identity assertions live in run() itself; here pin the shape and
        // the qualitative claims.
        assert!(s.contains("executor throughput"));
        assert!(s.contains("batch-size sweep"));
        let json = s.lines().find(|l| l.starts_with("json: ")).expect("json line");
        let num = |key: &str| -> f64 {
            let at = json.find(key).expect(key) + key.len();
            json[at..]
                .trim_start_matches(':')
                .chars()
                .take_while(|c| c.is_ascii_digit() || *c == '.')
                .collect::<String>()
                .parse()
                .expect("number")
        };
        // The tentpole claim: batched kernels outrun the tuple interpreter
        // on every pinned plan.
        for seg in json.split('{').filter(|seg| seg.contains("\"speedup\"")) {
            let sp: f64 = {
                let at = seg.find("\"speedup\"").expect("speedup") + "\"speedup\"".len();
                seg[at..]
                    .trim_start_matches(':')
                    .chars()
                    .take_while(|c| c.is_ascii_digit() || *c == '.')
                    .collect::<String>()
                    .parse()
                    .expect("number")
            };
            assert!(sp > 1.0, "batched executor slower than the interpreter\n{s}");
        }
        // RLE-aware aggregation touches runs, not cells, and a sorted
        // column compresses well — so it must win.
        assert!(num("\"runs\"") < num("\"cells\""), "column did not compress\n{s}");
        assert!(
            num("\"aware_per_sec\"") > num("\"decode_per_sec\""),
            "run-aware kernel lost to decode-then-scan\n{s}"
        );
    }
}
