//! E27 — incremental maintenance under concurrent reads.
//!
//! The tentpole questions of the delta-maintenance layer, measured on the
//! pinned serving workload ([`serving`]):
//!
//! 1. **Do writers stall readers?** Reader throughput and tail latency for
//!    4 threads on a read-only store vs the same stream while one writer
//!    continuously publishes 20-row delta folds, vs while it runs full
//!    rebuilds. Uncached stores, so cache effects don't confound the
//!    blocking question — every query walks the verified page path.
//! 2. **What does the incremental fold save?** Sequentially applying the
//!    same batches via `apply_delta` vs rebuilding every view from the
//!    accumulated facts per batch (the pre-incremental maintenance path).
//! 3. **What does targeted invalidation keep?** Cell entries for slices a
//!    delta didn't touch must keep hitting across many deltas.
//! 4. **What does the extendible base avoid?** Bytes appended by \[RZ86\]
//!    increment segments on a growth delta vs a dense restructure.

use std::fmt::Write as _;
use std::time::Instant;

use statcube_cube::input::FactInput;

use crate::report::{ratio, Table};
use crate::serving::{
    self, build_store, delta_batches, make_facts, run_stream_threads,
    run_stream_threads_with_writer, zipf_stream, DELTA_ROWS, STREAM_LEN, ZIPF_S,
};

/// Reader threads in the mixed runs.
const READERS: usize = 4;
/// Inter-batch arrival interval of the paced delta stream, milliseconds.
/// A maintenance stream has an arrival rate (§6.5 daily appends); the
/// saturated writer row stresses the no-blocking property instead.
const PACE_MS: u64 = 10;
/// Batches for the sequential apply-cost comparison.
const APPLY_BATCHES: usize = 30;
/// Rebuild-baseline batches (full rebuilds are slow; a few suffice).
const REBUILD_BATCHES: usize = 6;

fn extend_with(acc: &mut FactInput, batch: &FactInput) {
    for row in 0..batch.len() {
        acc.push(&batch.coords(row), batch.measure()[row]).expect("push");
    }
}

/// Runs the four measurements and renders the tables + `json:` line.
pub fn run() -> String {
    let facts = make_facts(3);
    let mut out = String::new();
    out.push_str("=== E27: incremental maintenance under concurrent reads ===\n\n");
    let _ = writeln!(
        out,
        "workload: {} facts over {:?}, {} greedy views + base, {} Zipf(s={}) queries,\n\
         {READERS} reader threads, {DELTA_ROWS}-row delta batches\n",
        serving::ROWS,
        serving::CARDS,
        serving::GREEDY_VIEWS,
        STREAM_LEN,
        ZIPF_S,
    );

    // --- 1: reader throughput, read-only vs under a writer ---------------
    let stream = {
        let probe = build_store(&facts, 0);
        zipf_stream(probe.top(), STREAM_LEN, ZIPF_S, 5)
    };
    let read_only = {
        let store = build_store(&facts, 0);
        run_stream_threads(&store, &stream, READERS)
    };
    let (mixed_inc, inc_published) = {
        let store = build_store(&facts, 0);
        let batches = delta_batches(27, 64);
        run_stream_threads_with_writer(&store, &stream, READERS, |k| {
            std::thread::sleep(std::time::Duration::from_millis(PACE_MS));
            store.apply_delta(&batches[(k as usize) % batches.len()]).expect("delta");
        })
    };
    let (saturated_inc, sat_published) = {
        let store = build_store(&facts, 0);
        let batches = delta_batches(27, 64);
        run_stream_threads_with_writer(&store, &stream, READERS, |k| {
            store.apply_delta(&batches[(k as usize) % batches.len()]).expect("delta");
        })
    };
    let (mixed_reb, reb_published) = {
        let store = build_store(&facts, 0);
        let writer_store = store.clone();
        let batches = delta_batches(27, 64);
        let mut acc = facts.clone();
        run_stream_threads_with_writer(&store, &stream, READERS, move |k| {
            extend_with(&mut acc, &batches[(k as usize) % batches.len()]);
            writer_store.rebuild(&acc).expect("rebuild");
        })
    };
    let retention = mixed_inc.ops_per_sec / read_only.ops_per_sec.max(1e-9);
    let mut t = Table::new(
        "reader throughput while a writer streams maintenance (uncached)",
        &["writer", "queries/s", "p50 (µs)", "p99 (µs)", "vs read-only", "batches published"],
    );
    for (label, s, published) in [
        ("none (read-only)", &read_only, None),
        ("incremental deltas, paced", &mixed_inc, Some(inc_published)),
        ("incremental deltas, saturated", &saturated_inc, Some(sat_published)),
        ("full rebuilds, saturated", &mixed_reb, Some(reb_published)),
    ] {
        t.row([
            label.to_string(),
            format!("{:.0}", s.ops_per_sec),
            format!("{:.1}", s.p50_ns as f64 / 1e3),
            format!("{:.1}", s.p99_ns as f64 / 1e3),
            ratio(s.ops_per_sec / read_only.ops_per_sec.max(1e-9)),
            published.map_or("-".into(), |p| p.to_string()),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(
        "\nreaders never wait on a publication (the fold runs off-lock, the swap is\n\
         one pointer store); any shortfall vs read-only is CPU time the writer\n\
         itself burns, so the paced stream — batches arriving every 10 ms — is the\n\
         realistic row and the saturated rows are the stress bound.\n\n",
    );

    // --- 2: apply cost, incremental fold vs full rebuild ------------------
    let batches = delta_batches(28, APPLY_BATCHES);
    let inc_ns = {
        let store = build_store(&facts, 0);
        let t0 = Instant::now();
        for b in &batches {
            store.apply_delta(b).expect("delta");
        }
        t0.elapsed().as_nanos() as u64
    };
    let reb_ns = {
        let store = build_store(&facts, 0);
        let mut acc = facts.clone();
        let t0 = Instant::now();
        for b in &batches[..REBUILD_BATCHES] {
            extend_with(&mut acc, b);
            store.rebuild(&acc).expect("rebuild");
        }
        t0.elapsed().as_nanos() as u64
    };
    let inc_per_batch = inc_ns as f64 / APPLY_BATCHES as f64;
    let reb_per_batch = reb_ns as f64 / REBUILD_BATCHES as f64;
    let apply_speedup = reb_per_batch / inc_per_batch.max(1.0);
    let delta_rows_per_sec = (APPLY_BATCHES * DELTA_ROWS) as f64 / (inc_ns as f64 / 1e9).max(1e-12);
    let mut t = Table::new(
        "maintenance cost per batch (sequential, no readers)",
        &["path", "batches", "ms/batch", "speedup"],
    );
    t.row([
        "full rebuild".into(),
        REBUILD_BATCHES.to_string(),
        format!("{:.2}", reb_per_batch / 1e6),
        "1.0x (baseline)".into(),
    ]);
    t.row([
        "incremental fold".into(),
        APPLY_BATCHES.to_string(),
        format!("{:.2}", inc_per_batch / 1e6),
        ratio(apply_speedup),
    ]);
    out.push_str(&t.render());
    out.push('\n');

    // --- 3: targeted invalidation keeps untouched cell entries ------------
    // Prime one cell entry per d0 slice, then stream deltas confined to
    // slice 0; the other slices' entries must keep hitting throughout.
    let untouched_hit_rate = {
        let store = build_store(&facts, 16 << 20);
        let d0_card = serving::CARDS[0] as u32;
        for d0 in 0..d0_card {
            store.answer_cell(&[Some(d0), None, None, None]).expect("prime");
        }
        let mut probes = 0u64;
        let mut hits = 0u64;
        for round in 0..20u64 {
            let mut d = FactInput::new(&serving::CARDS).expect("delta");
            d.push(&[0, (round % 8) as u32, (round % 5) as u32, (round % 4) as u32], 1.0)
                .expect("push");
            store.apply_delta(&d).expect("delta");
            for d0 in 1..d0_card {
                let cell = store.answer_cell(&[Some(d0), None, None, None]).expect("probe");
                probes += 1;
                hits += u64::from(cell.cache_hit);
            }
        }
        hits as f64 / probes as f64
    };
    let _ = writeln!(
        out,
        "targeted invalidation: cell entries for slices a delta never touched kept\n\
         hitting across 20 deltas confined to slice 0 — survivor hit rate {untouched_hit_rate:.2}\n\
         (a clear-the-cache policy would score 0.00)\n",
    );

    // --- 4: extendible growth vs restructure ------------------------------
    let (appended_bytes, restructure_bytes) = {
        let store = build_store(&facts, 0);
        let mut grown_cards = serving::CARDS.to_vec();
        grown_cards[0] += 2;
        let mut d = FactInput::new(&grown_cards).expect("grown delta");
        d.push(&[serving::CARDS[0] as u32, 0, 0, 0], 7.0).expect("push");
        d.push(&[serving::CARDS[0] as u32 + 1, 1, 1, 1], 9.0).expect("push");
        let before_cells: usize = serving::CARDS.iter().product();
        let report = store.apply_delta(&d).expect("growth delta");
        assert_eq!(report.extended_dims, vec![(0, 2)]);
        let snap = store.snapshot();
        let dense = snap.store().dense_base().expect("dense base");
        ((dense.len() - before_cells) * 8, dense.restructure_bytes())
    };
    let _ = writeln!(
        out,
        "extendible base growth: a delta with 2 unseen dim-0 values appended\n\
         {appended_bytes} bytes of increment segments; a dense restructure would have\n\
         rewritten {restructure_bytes} bytes ({}).",
        ratio(restructure_bytes as f64 / appended_bytes.max(1) as f64),
    );

    let _ = writeln!(
        out,
        "\njson: {{\"reader_only_ops\":{:.1},\"mixed_incremental_ops\":{:.1},\
         \"mixed_incremental_p99_ns\":{},\"saturated_incremental_ops\":{:.1},\
         \"mixed_rebuild_ops\":{:.1},\
         \"reader_retention\":{:.3},\"writer_batches_incremental\":{inc_published},\
         \"writer_batches_saturated\":{sat_published},\
         \"writer_batches_rebuild\":{reb_published},\"apply_speedup\":{apply_speedup:.2},\
         \"delta_rows_per_sec\":{delta_rows_per_sec:.1},\
         \"untouched_hit_rate\":{untouched_hit_rate:.4},\
         \"growth_appended_bytes\":{appended_bytes},\
         \"growth_restructure_bytes\":{restructure_bytes}}}",
        read_only.ops_per_sec,
        mixed_inc.ops_per_sec,
        mixed_inc.p99_ns,
        saturated_inc.ops_per_sec,
        mixed_reb.ops_per_sec,
        retention,
    );
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn incremental_maintenance_delivers_the_claimed_wins() {
        let s = super::run();
        assert!(s.contains("reader throughput while a writer streams maintenance"));
        assert!(s.contains("maintenance cost per batch"));
        let json = s.lines().find(|l| l.starts_with("json: ")).expect("json line");
        let num = |key: &str| -> f64 {
            let at = json.find(key).expect(key) + key.len();
            json[at..]
                .trim_start_matches(':')
                .chars()
                .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
                .collect::<String>()
                .parse()
                .expect("number")
        };
        // The acceptance claims: a small-delta fold beats a full rebuild by
        // ≥5×, and targeted invalidation keeps every untouched cell entry.
        let speedup = num("\"apply_speedup\"");
        assert!(speedup >= 5.0, "incremental apply only {speedup}x over rebuild\n{s}");
        let untouched = num("\"untouched_hit_rate\"");
        assert!(untouched >= 1.0, "untouched cell entries were invalidated\n{s}");
        // Readers must not collapse while the paced writer streams deltas.
        // The headline claim is ~parity (within 10%); the assertion leaves
        // headroom for loaded single-core CI machines, where even the paced
        // writer's CPU share is taken out of the readers' hide.
        let retention = num("\"reader_retention\"");
        assert!(retention >= 0.6, "reader throughput collapsed under writes: {retention}\n{s}");
        assert!(num("\"writer_batches_incremental\"") >= 1.0);
        assert!(num("\"writer_batches_saturated\"") >= 1.0);
        // Increment segments append strictly less than a restructure writes.
        assert!(num("\"growth_appended_bytes\"") < num("\"growth_restructure_bytes\""));
    }
}
