//! E06 — Figs 12 & 14: terminology and operator correspondence.

use statcube_core::ops::{self, olap};
use statcube_workload::retail::{generate, RetailConfig};

use crate::report::Table;

/// Prints the Fig 12 terminology table and verifies the Fig 14 operator
/// correspondence by running each OLAP operator and its SDB equivalent on
/// the same object and comparing results.
pub fn run() -> String {
    let mut out = String::new();
    out.push_str("=== E06: SDB ↔ OLAP correspondence (Figs 12, 14) ===\n\n");

    let mut terms = Table::new("Fig 12: terminology", &["OLAP", "Statistical DB"]);
    for (o, s) in [
        ("Dimension", "Category Attribute"),
        ("Dimension Hierarchy (Table)", "Category Hierarchy"),
        ("Measures (fact column)", "Summary Attribute"),
        ("Data Cube (fact table)", "Statistical Object"),
        ("Multidimensionality", "Cross Product"),
        ("Dimension Value", "Category Value"),
        ("Table / Data Cube", "Summary Table"),
    ] {
        terms.row([o, s]);
    }
    out.push_str(&terms.render());

    let retail = generate(&RetailConfig {
        products: 30,
        categories: 5,
        cities: 3,
        stores_per_city: 2,
        days: 40,
        rows: 5_000,
        seed: 14,
    });
    let obj = &retail.object;

    let mut t = Table::new(
        "Fig 14: operators, executed and compared",
        &["OLAP operator", "SDB operator", "results equal"],
    );
    // Slice (summarize interpretation) ≡ S-projection.
    let a = olap::slice_sum(obj, "store").expect("slice");
    let b = ops::s_project(obj, "store").expect("project");
    t.row(["Slice (summarize)", "S-projection", &(a == b).to_string()]);
    // Dice ≡ S-selection.
    let keep: Vec<&str> = retail.products[..5].iter().map(String::as_str).collect();
    let a = olap::dice(obj, &[("product", &keep)]).expect("dice");
    let b = ops::s_select(obj, "product", &keep).expect("select");
    t.row(["Dice", "S-selection", &(a == b).to_string()]);
    // Roll up ≡ S-aggregation.
    let a = olap::roll_up(obj, "store", "city").expect("roll up");
    let b = ops::s_aggregate(obj, "store", "city").expect("aggregate");
    t.row(["Roll up (consolidation)", "S-aggregation", &(a == b).to_string()]);
    // Drill down ≡ S-disaggregation: roll up, then drill back via the
    // retained base (Navigator) and compare to the original.
    let mut nav = ops::navigator::Navigator::new(obj.clone());
    nav.roll_up("store").expect("nav up");
    nav.drill_down("store").expect("nav down");
    let restored = nav.view().expect("view");
    t.row(["Drill down", "S-disaggregation", &(restored == *obj).to_string()]);
    // S-union has no OLAP counterpart in Fig 14 ("---").
    let left = ops::s_select(obj, "store", &["city00/s0"]).expect("left");
    let right = ops::s_select(obj, "store", &["city01/s0"]).expect("right");
    let u = ops::s_union(&left, &right, ops::UnionPolicy::MergeStates).expect("union");
    t.row([
        "---".to_owned(),
        "S-union".to_owned(),
        format!(
            "(combines {} + {} = {} cells)",
            left.cell_count(),
            right.cell_count(),
            u.cell_count()
        ),
    ]);
    out.push('\n');
    out.push_str(&t.render());
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn all_correspondences_hold() {
        let s = super::run();
        assert_eq!(s.matches("true").count(), 4, "{s}");
        assert!(!s.contains("false"));
        assert!(s.contains("Statistical Object"));
    }
}
