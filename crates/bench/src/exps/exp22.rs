//! E22 — the partition-parallel CUBE speedup curve.
//!
//! Gray et al. frame CUBE computation as embarrassingly parallel: disjoint
//! row partitions aggregate independently and the partial cuboids merge
//! losslessly because `(sum, count, min, max)` states form a commutative
//! monoid. This experiment sweeps thread counts over one workload and
//! reports the wall-clock curve plus the engine's own per-cuboid stats, so
//! the scaling (or the lack of it on few-core machines) is visible.

use std::time::Instant;

use statcube_cube::cube_op::{self, DerivationSource};
use statcube_cube::input::FactInput;

use crate::report::{ratio, Table};

fn make_input(cards: &[usize], rows: usize, seed: u64) -> FactInput {
    let mut input = FactInput::new(cards).expect("input");
    let mut x = seed | 1;
    for _ in 0..rows {
        let coords: Vec<u32> = cards
            .iter()
            .map(|&c| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x % c as u64) as u32
            })
            .collect();
        input.push(&coords, (x % 1000) as f64).expect("push");
    }
    input
}

/// Sweeps `compute_parallel` over thread counts on a 4-dimension workload
/// and reports speedup over the sequential lattice engine.
pub fn run() -> String {
    let hw = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    // Big enough to show scaling where cores exist, small enough to keep
    // `experiments all` quick; the criterion bench (`bench_parallel`) runs
    // the full 1M-row workload.
    let cards = [50usize, 20, 10, 8];
    let rows = 200_000;
    let input = make_input(&cards, rows, 22);

    let mut out = String::new();
    out.push_str("=== E22: partition-parallel CUBE speedup curve ===\n\n");
    out.push_str(&format!(
        "workload: {rows} facts over {cards:?} ({} cuboids); hardware threads: {hw}\n\n",
        1 << cards.len(),
    ));

    let t0 = Instant::now();
    let seq = cube_op::compute_parallel(&input, 1);
    let seq_ms = t0.elapsed().as_secs_f64() * 1000.0;

    let mut threads: Vec<usize> = vec![1, 2, 4, 8];
    if !threads.contains(&hw) {
        threads.push(hw);
    }
    threads.sort_unstable();

    let mut t = Table::new(
        "thread sweep",
        &["threads", "base partitions", "wall (ms)", "speedup vs 1 thread", "agrees"],
    );
    for &k in &threads {
        let t1 = Instant::now();
        let par = cube_op::compute_parallel(&input, k);
        let ms = t1.elapsed().as_secs_f64() * 1000.0;
        let partitions = match par.stats_for((1 << cards.len()) - 1).map(|s| s.source) {
            Some(DerivationSource::BaseFacts { partitions }) => partitions,
            _ => 0,
        };
        t.row([
            k.to_string(),
            partitions.to_string(),
            format!("{ms:.1}"),
            ratio(seq_ms / ms.max(1e-9)),
            (par == seq).to_string(),
        ]);
    }
    out.push_str(&t.render());

    // Where the sequential time goes, from the engine's own telemetry: the
    // base scan dominates, which is exactly the phase the partitioning
    // attacks.
    let base_wall = seq
        .stats()
        .iter()
        .filter(|s| matches!(s.source, DerivationSource::BaseFacts { .. }))
        .map(|s| s.wall.as_secs_f64())
        .sum::<f64>();
    let total_wall = seq.total_work().as_secs_f64();
    out.push_str(&format!(
        "\nsequential work split: base scan {:.0}%, lattice derivations {:.0}% \
         (of {:.1} ms total work)\n",
        100.0 * base_wall / total_wall.max(1e-12),
        100.0 * (total_wall - base_wall) / total_wall.max(1e-12),
        total_wall * 1000.0,
    ));
    out.push_str(
        "every thread count computes the identical cube (the partial-\n\
         aggregation merge is lossless); speedup tracks the core count.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn all_thread_counts_agree() {
        let s = super::run();
        // The `agrees` column must be uniformly true.
        assert!(!s.contains("false"), "{s}");
        assert!(s.contains("thread sweep"));
        assert!(s.contains("sequential work split"));
    }
}
