//! E14 — Fig 21 / §6.2: header compression.

use statcube_storage::header::HeaderCompressed;
use statcube_storage::io_stats::IoStats;
use statcube_storage::lzw;

use crate::report::{f, ratio, Table};

fn clustered(total: usize, density: f64, cluster: usize) -> Vec<f64> {
    // Non-null values appear in runs of `cluster` (the [EOA81] regime:
    // non-producing counties yield long null stretches).
    let mut v = vec![f64::NAN; total];
    let filled = (total as f64 * density) as usize;
    let clusters = filled / cluster.max(1);
    let spacing = total / clusters.max(1);
    let mut written = 0;
    for c in 0..clusters {
        let start = c * spacing;
        for k in 0..cluster {
            if start + k < total && written < filled {
                v[start + k] = (start + k) as f64;
                written += 1;
            }
        }
    }
    v
}

/// Reproduces the \[EOA81\] claims: compression ratio grows with null
/// density *and* null clustering; forward and inverse mappings both run in
/// a handful of page probes through the B-tree over the accumulated
/// header.
pub fn run() -> String {
    const TOTAL: usize = 1_000_000;
    let mut out = String::new();
    out.push_str("=== E14: header compression (Fig 21, [EOA81]) ===\n\n");
    let mut t = Table::new(
        "compression vs density and clustering (1M logical cells)",
        &[
            "density",
            "cluster len",
            "runs",
            "stored bytes",
            "ratio vs dense",
            "LZW ratio",
            "probe pages",
        ],
    );
    for &density in &[0.5f64, 0.1, 0.01, 0.001] {
        for &cluster in &[1000usize, 10] {
            let dense = clustered(TOTAL, density, cluster);
            let h = HeaderCompressed::from_dense(&dense);
            let io = IoStats::new(4096);
            let _ = h.get_with_io(TOTAL / 2, &io);
            // §6.2's "other compression methods … such as the well known
            // LZW" as the general-purpose comparison (sampled prefix to
            // keep the harness quick; LZW ratio is length-stable here).
            let lzw_ratio = lzw::compression_ratio(&lzw::dense_to_bytes(&dense[..TOTAL / 10]));
            t.row([
                f(density),
                cluster.to_string(),
                h.run_count().to_string(),
                h.size_bytes().to_string(),
                ratio(h.compression_ratio()),
                ratio(lzw_ratio),
                io.pages_read().to_string(),
            ]);
        }
    }
    out.push_str(&t.render());
    out.push_str(
        "\nLZW compresses the null bytes too, but a point lookup would have to\n\
         decompress the stream; header compression keeps O(log) random access.\n",
    );

    // Forward/inverse round trip on one instance.
    let dense = clustered(TOTAL, 0.01, 100);
    let h = HeaderCompressed::from_dense(&dense);
    let mut ok = true;
    for p in (0..h.value_count()).step_by(997) {
        let logical = h.logical_of(p).expect("inverse");
        ok &= h.get(logical) == Some(dense[logical]);
    }
    out.push_str(&format!(
        "\nforward(inverse(p)) round-trips for sampled physical positions: {ok}\n"
    ));
    out.push_str(
        "shape as in [EOA81]: the sparser and more clustered the nulls, the more\n\
         dramatic the reduction; lookups stay at B-tree-height page probes.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn ratios_grow_with_sparsity_and_clustering() {
        let s = super::run();
        assert!(s.contains("round-trips for sampled physical positions: true"));
        let ratios: Vec<f64> = s
            .lines()
            .filter(|l| {
                l.contains("x")
                    && (l.trim_start().starts_with("0.") || l.trim_start().starts_with("0 "))
            })
            .filter_map(|l| {
                l.split_whitespace()
                    .find(|c| c.starts_with('x'))
                    .and_then(|c| c[1..].parse::<f64>().ok())
            })
            .collect();
        assert!(ratios.len() >= 8, "parsed {ratios:?}");
        // Clustered 0.001-density beats clustered 0.5-density.
        assert!(ratios[ratios.len() - 2] > ratios[0]);
        // Within each density, clustered (first) ≥ scattered (second).
        for pair in ratios.chunks(2) {
            assert!(pair[0] >= pair[1] * 0.99, "{pair:?}");
        }
    }
}
