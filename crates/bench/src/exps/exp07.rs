//! E07 — Fig 13 / §5.1: automatic aggregation.

use statcube_core::auto_agg::{execute, Query};
use statcube_core::dimension::Dimension;
use statcube_core::hierarchy::Hierarchy;
use statcube_core::measure::{MeasureKind, SummaryAttribute, SummaryFunction};
use statcube_core::object::StatisticalObject;
use statcube_core::schema::Schema;

/// Reruns the paper's Fig 13 query — "find the average income of engineers
/// in 1980" expressed as just two circled nodes — and prints the inference
/// trace the engine derived.
pub fn run() -> String {
    let profession = Hierarchy::builder("profession")
        .level("profession")
        .level("professional class")
        .edge("chemical engineer", "engineer")
        .edge("civil engineer", "engineer")
        .edge("junior secretary", "secretary")
        .edge("executive secretary", "secretary")
        .build()
        .expect("hierarchy");
    let schema = Schema::builder("average income of professionals")
        .dimension(Dimension::categorical("sex", ["M", "F"]))
        .dimension(Dimension::temporal("year", ["80", "87", "88"]))
        .dimension(Dimension::classified("profession", profession))
        .measure(SummaryAttribute::new("income", MeasureKind::ValuePerUnit).with_unit("dollars"))
        .function(SummaryFunction::Avg)
        .build()
        .expect("schema");
    let mut obj = StatisticalObject::empty(schema);
    let data: &[(&str, &str, &str, f64)] = &[
        ("M", "80", "chemical engineer", 31_000.0),
        ("M", "80", "civil engineer", 35_000.0),
        ("F", "80", "chemical engineer", 29_000.0),
        ("F", "80", "civil engineer", 33_000.0),
        ("M", "80", "junior secretary", 18_000.0),
        ("M", "87", "civil engineer", 42_000.0),
        ("F", "87", "junior secretary", 21_000.0),
    ];
    for (s, y, p, v) in data {
        obj.insert(&[s, y, p], *v).expect("cell");
    }

    let mut out = String::new();
    out.push_str("=== E07: automatic aggregation (Fig 13, [S82]) ===\n\n");
    out.push_str("query as circled on the schema graph: {year = 80},\n");
    out.push_str("{professional class = engineer} — nothing else.\n\n");
    let q = Query::new().members("year", ["80"]).at_level(
        "profession",
        "professional class",
        "engineer",
    );
    let r = execute(&obj, &q).expect("query");
    out.push_str("inferred steps:\n");
    for (i, step) in r.inference.iter().enumerate() {
        out.push_str(&format!("  {}. {step}\n", i + 1));
    }
    out.push_str(&format!(
        "\nanswer: average income of engineers in 1980 = {:?} dollars\n",
        r.scalar()
    ));
    out.push_str(&format!(
        "(expected by hand: (31000+35000+29000+33000)/4 = {})\n",
        (31_000.0 + 35_000.0 + 29_000.0 + 33_000.0) / 4.0
    ));

    // And the failure path: an automatic query that would silently be
    // wrong is refused.
    let bad_schema = Schema::builder("population")
        .dimension(Dimension::temporal("year", ["80", "81"]))
        .dimension(Dimension::spatial("state", ["CA", "NV"]))
        .measure(SummaryAttribute::new("population", MeasureKind::Stock))
        .build()
        .expect("schema");
    let mut pop = StatisticalObject::empty(bad_schema);
    pop.insert(&["80", "CA"], 100.0).expect("cell");
    pop.insert(&["81", "CA"], 110.0).expect("cell");
    let q = Query::new().members("state", ["CA"]);
    match execute(&pop, &q) {
        Err(e) => out.push_str(&format!(
            "\nguard: query {{state = CA}} over a stock refused rather than\nsilently summing populations over years:\n  {e}\n"
        )),
        Ok(_) => out.push_str("\nguard FAILED: stock-over-time query was answered\n"),
    }
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn fig13_answer_and_guard() {
        let s = super::run();
        assert!(s.contains("Some(32000.0)"));
        assert!(s.contains("S-aggregation"));
        assert!(s.contains("not selected"));
        assert!(s.contains("refused"));
        assert!(!s.contains("guard FAILED"));
    }
}
