//! E01 — Figs 1 & 9: the 2-D statistical table with marginals.

use statcube_core::dimension::Dimension;
use statcube_core::measure::{MeasureKind, SummaryAttribute};
use statcube_core::object::StatisticalObject;
use statcube_core::schema::Schema;
use statcube_core::table2d::Table2D;

/// Builds the paper's "Employment in California" table (Fig 1 numbers) and
/// renders it with marginals (Fig 9), verifying marginal consistency and
/// the \[OOM85\] attribute split/merge.
pub fn run() -> String {
    let schema = Schema::builder("Employment in California")
        .dimension(Dimension::categorical("sex", ["male", "female"]))
        .dimension(Dimension::temporal("year", ["91", "92"]))
        .dimension(Dimension::categorical(
            "profession",
            [
                "chemical engineer",
                "civil engineer",
                "junior secretary",
                "executive secretary",
                "elementary teacher",
                "high school teacher",
            ],
        ))
        .measure(SummaryAttribute::new("employment", MeasureKind::Stock))
        .context("state", "California")
        .build()
        .expect("valid schema");
    let mut obj = StatisticalObject::empty(schema);
    let data: &[(&str, &str, &str, f64)] = &[
        ("male", "91", "chemical engineer", 197_700.0),
        ("male", "91", "civil engineer", 241_100.0),
        ("male", "91", "junior secretary", 534_300.0),
        ("male", "91", "executive secretary", 154_100.0),
        ("male", "91", "elementary teacher", 212_943.0),
        ("male", "91", "high school teacher", 123_740.0),
        ("male", "92", "chemical engineer", 209_900.0),
        ("male", "92", "civil engineer", 278_000.0),
        ("male", "92", "junior secretary", 542_100.0),
        ("male", "92", "executive secretary", 169_800.0),
        ("male", "92", "elementary teacher", 213_521.0),
        ("male", "92", "high school teacher", 145_766.0),
        ("female", "91", "chemical engineer", 25_800.0),
        ("female", "91", "civil engineer", 112_000.0),
        ("female", "91", "junior secretary", 667_300.0),
        ("female", "91", "executive secretary", 162_300.0),
        ("female", "91", "elementary teacher", 216_071.0),
        ("female", "91", "high school teacher", 275_123.0),
        ("female", "92", "chemical engineer", 28_900.0),
        ("female", "92", "civil engineer", 127_600.0),
        ("female", "92", "junior secretary", 692_500.0),
        ("female", "92", "executive secretary", 174_400.0),
        ("female", "92", "elementary teacher", 217_520.0),
        ("female", "92", "high school teacher", 299_344.0),
    ];
    for (s, y, p, v) in data {
        obj.insert(&[s, y, p], *v).expect("valid cell");
    }

    let table = Table2D::layout(&obj, &["sex", "year"], &["profession"]).expect("layout");
    let mut out = String::new();
    out.push_str("=== E01: 2-D statistical table with marginals (Figs 1, 9) ===\n\n");
    out.push_str(&table.render());
    out.push_str(&format!(
        "\nmarginals consistent (row sums = column sums = grand total): {}\n",
        table.marginals_consistent()
    ));
    let split = table
        .move_to_rows("profession")
        .and_then(|t| t.move_to_cols("year"))
        .expect("attribute split/merge");
    out.push_str(&format!(
        "after [OOM85] attribute split/merge (profession→rows, year→cols): grand total {} (unchanged: {})\n",
        split.grand_total().unwrap_or(0.0),
        split.grand_total() == table.grand_total(),
    ));
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn runs_and_reports_consistency() {
        let s = super::run();
        assert!(s.contains("consistent"));
        assert!(s.contains("true"));
        assert!(s.contains("civil engineer"));
    }
}
