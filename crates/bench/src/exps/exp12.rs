//! E12 — Fig 19 / §6.1: encoding, RLE, and bit-transposed files.

use statcube_storage::bittransposed::BitSlicedColumn;
use statcube_storage::encoding::EncodedColumn;
use statcube_storage::io_stats::IoStats;
use statcube_storage::rle::Rle;
use statcube_workload::census::{generate, CensusConfig};

use crate::report::{ratio, Table};

/// Reproduces the \[WL+85\] simulation shape: per category column, storage
/// bytes and equality-scan pages for raw `u32` codes, bit-packed codes,
/// RLE over the sorted column, and bit-sliced planes.
pub fn run() -> String {
    let census = generate(&CensusConfig { rows: 200_000, ..CensusConfig::default() });
    let micro = &census.micro;
    let mut out = String::new();
    out.push_str("=== E12: encoding + RLE + bit-transposed files (Fig 19, [WL+85]) ===\n\n");

    let mut t = Table::new(
        "per-column storage (bytes) — 200k rows",
        &["column", "card", "bits", "raw u32", "bit-packed", "RLE (sorted)", "bit-sliced"],
    );
    let mut scan = Table::new(
        "equality-scan pages (4 KiB pages)",
        &["column", "raw u32", "bit-sliced planes", "win"],
    );
    for col in ["sex", "race", "age_group", "county"] {
        let dict = micro.dictionary(col).expect("column");
        let codes: Vec<u32> = (0..micro.len())
            .map(|r| dict.id_of(micro.cat_value(col, r).expect("value")).expect("id"))
            .collect();
        let bits = dict.code_bits();
        let packed = EncodedColumn::pack(&codes, bits).expect("pack");
        let mut sorted = codes.clone();
        sorted.sort_unstable();
        let rle = Rle::encode(&sorted);
        let sliced = BitSlicedColumn::build(&codes, bits).expect("slice");
        t.row([
            col.to_owned(),
            dict.len().to_string(),
            bits.to_string(),
            (codes.len() * 4).to_string(),
            packed.size_bytes().to_string(),
            rle.size_bytes(4).to_string(),
            sliced.size_bytes().to_string(),
        ]);

        let io = IoStats::new(4096);
        let bm = sliced.eq_scan(0, &io);
        let _ = BitSlicedColumn::count_ones(&bm);
        let raw_pages = io.pages_of(codes.len() * 4);
        scan.row([
            col.to_owned(),
            raw_pages.to_string(),
            io.pages_read().to_string(),
            ratio(raw_pages as f64 / io.pages_read() as f64),
        ]);
    }
    out.push_str(&t.render());
    out.push('\n');
    out.push_str(&scan.render());
    out.push_str(
        "\nshape as in [WL+85]: low-cardinality columns compress dramatically\n\
         (sex: 32x under bit-packing, far more under sorted RLE), and equality\n\
         scans touch only `code_bits` planes instead of 32-bit words.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn compression_and_scan_wins() {
        let s = super::run();
        // The sex row: raw 800000, packed 100000-ish (1 bit → 25000 B).
        let sex = s.lines().find(|l| l.trim_start().starts_with("sex")).unwrap();
        let cells: Vec<&str> = sex.split_whitespace().collect();
        let raw: usize = cells[3].parse().unwrap();
        let packed: usize = cells[4].parse().unwrap();
        assert!(raw >= 30 * packed, "raw {raw} packed {packed}");
        // Every scan win is > 1.
        for line in s.lines().filter(|l| l.contains('x') && l.contains('.')) {
            if let Some(r) = line.rsplit('x').next() {
                if let Ok(v) = r.trim().parse::<f64>() {
                    assert!(v >= 1.0, "scan win {v} in {line}");
                }
            }
        }
    }
}
