//! E02 — Fig 2: the retail data cube.

use statcube_workload::retail::{generate, RetailConfig};

use crate::report::{f, Table};

/// Builds the Fig 2 `quantity sold` cube from synthetic retail data,
/// exercises point lookups, slices, and the three classification
/// hierarchies.
pub fn run() -> String {
    let retail = generate(&RetailConfig::default());
    let obj = &retail.object;
    let mut out = String::new();
    out.push_str("=== E02: the retail data cube (Fig 2) ===\n\n");

    let mut t = Table::new("cube shape", &["property", "value"]);
    t.row(["dimensions", &format!("{:?}", obj.schema().cardinalities())]);
    t.row(["cross product cells", &obj.schema().cross_product_size().to_string()]);
    t.row(["populated cells", &obj.cell_count().to_string()]);
    t.row(["density", &f(obj.density())]);
    t.row(["grand total ($)", &f(obj.grand_total(0).unwrap_or(0.0))]);
    out.push_str(&t.render());

    // Point lookup (the "56" cell of Fig 2), slice, dice, roll-ups.
    let p = &retail.products[0];
    let s = &retail.stores[0];
    let d = &retail.days[0];
    let cell = obj.get(&[p, s, d]).expect("valid coords");
    out.push_str(&format!("\npoint lookup ({p}, {s}, {d}): {cell:?}\n"));

    let slice = obj.slice("day", d).expect("slice");
    out.push_str(&format!(
        "slice day={d}: {} cells, total {}\n",
        slice.cell_count(),
        f(slice.grand_total(0).unwrap_or(0.0))
    ));

    let by_city = obj.roll_up("store", "city").expect("roll-up store→city");
    let by_cat = by_city.roll_up("product", "category").expect("roll-up product→category");
    let by_month = by_cat.roll_up("day", "month").expect("roll-up day→month");
    let mut t2 = Table::new("roll-ups preserve totals", &["level", "cells", "total"]);
    for (name, o) in [
        ("base (product,store,day)", obj),
        ("store→city", &by_city),
        ("product→category", &by_cat),
        ("day→month", &by_month),
    ] {
        t2.row([name.to_owned(), o.cell_count().to_string(), f(o.grand_total(0).unwrap_or(0.0))]);
    }
    out.push('\n');
    out.push_str(&t2.render());
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn totals_are_preserved_across_rollups() {
        let s = super::run();
        let totals: Vec<&str> = s
            .lines()
            .filter(|l| {
                l.contains("base (")
                    || l.contains("store→city")
                    || l.contains("product→category")
                    || l.contains("day→month")
            })
            .map(|l| l.split_whitespace().last().unwrap())
            .collect();
        assert_eq!(totals.len(), 4);
        assert!(totals.windows(2).all(|w| w[0] == w[1]), "totals differ: {totals:?}");
    }
}
