//! E08 — Fig 15 / §5.4: the CUBE operator.

use std::time::Instant;

use statcube_core::measure::SummaryFunction;
use statcube_cube::cube_op::{compute_naive, compute_parallel, compute_shared, DerivationSource};
use statcube_cube::input::FactInput;
use statcube_workload::retail::{generate, RetailConfig};

use crate::report::{ratio, Table};

/// Computes `GROUP BY CUBE(product, store, day)` over retail facts two
/// ways — the union-of-group-bys baseline vs the shared-derivation CUBE —
/// and prints Fig 15-style `ALL` rows.
pub fn run() -> String {
    let retail = generate(&RetailConfig {
        products: 40,
        categories: 8,
        cities: 4,
        stores_per_city: 3,
        days: 50,
        rows: 60_000,
        seed: 8,
    });
    let facts = FactInput::from_object(&retail.object).expect("facts");

    let t0 = Instant::now();
    let naive = compute_naive(&facts);
    let naive_ms = t0.elapsed().as_secs_f64() * 1000.0;
    let t1 = Instant::now();
    let shared = compute_shared(&facts);
    let shared_ms = t1.elapsed().as_secs_f64() * 1000.0;
    let hw = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let t2 = Instant::now();
    let parallel = compute_parallel(&facts, hw);
    let parallel_ms = t2.elapsed().as_secs_f64() * 1000.0;

    let mut out = String::new();
    out.push_str("=== E08: the CUBE operator (Fig 15, [GB+96]) ===\n\n");
    let mut t = Table::new("computation", &["strategy", "cuboids", "cells", "time (ms)"]);
    t.row([
        "naive: 2^n independent GROUP BYs".to_owned(),
        naive.masks().len().to_string(),
        naive.total_cells().to_string(),
        format!("{naive_ms:.1}"),
    ]);
    t.row([
        "shared lattice derivation (CUBE)".to_owned(),
        shared.masks().len().to_string(),
        shared.total_cells().to_string(),
        format!("{shared_ms:.1}"),
    ]);
    t.row([
        format!("partition-parallel CUBE ({hw} threads)"),
        parallel.masks().len().to_string(),
        parallel.total_cells().to_string(),
        format!("{parallel_ms:.1}"),
    ]);
    out.push_str(&t.render());
    out.push_str(&format!(
        "\nspeedup of CUBE over union-of-group-bys: {}\n",
        ratio(naive_ms / shared_ms.max(1e-9))
    ));
    out.push_str(&format!(
        "speedup of parallel CUBE over sequential CUBE: {}\n",
        ratio(shared_ms / parallel_ms.max(1e-9))
    ));

    // The derivation plan the pipeline scheduler chose, from the stats the
    // engine records per cuboid.
    let mut plan = Table::new(
        "derivation plan (per-cuboid stats)",
        &["cuboid", "source", "rows scanned", "cells", "wall (µs)"],
    );
    for s in parallel.stats() {
        let source = match s.source {
            DerivationSource::BaseFacts { partitions } => {
                format!("base facts, {partitions} partition(s)")
            }
            DerivationSource::Ancestor { parent } => format!("parent {parent:03b}"),
            DerivationSource::FallbackAncestor { parent, failed } => {
                format!("parent {parent:03b} (fallback, {failed:03b} corrupt)")
            }
        };
        plan.row([
            format!("{:03b}", s.mask),
            source,
            s.rows_scanned.to_string(),
            s.cells.to_string(),
            format!("{:.0}", s.wall.as_secs_f64() * 1e6),
        ]);
    }
    out.push('\n');
    out.push_str(&plan.render());

    // Verify agreement and render a few ALL rows (Fig 15's shape).
    let agree = naive.masks().iter().all(|&m| {
        let a = naive.cuboid(m).unwrap();
        [shared.cuboid(m).unwrap(), parallel.cuboid(m).unwrap()].iter().all(|b| {
            a.len() == b.len()
                && a.iter().all(|(k, s)| {
                    b.get(k)
                        .map(|x| (x.sum - s.sum).abs() < 1e-6 && x.count == s.count)
                        .unwrap_or(false)
                })
        })
    });
    out.push_str(&format!("strategies agree on every cuboid: {agree}\n\n"));

    let labels = vec![retail.products.clone(), retail.stores.clone(), retail.days.clone()];
    let rows = shared.to_rows_with_all(&labels, SummaryFunction::Sum).expect("ALL rows");
    let mut sample = Table::new(
        "sample of the relation with ALL (Fig 15)",
        &["product", "store", "day", "SUM(quantity sold)"],
    );
    // Show the grand total, two single-ALL rows, and one base row.
    for (row, v) in rows.iter().filter(|(r, _)| r.iter().filter(|c| *c == "ALL").count() == 3) {
        sample.row([row[0].clone(), row[1].clone(), row[2].clone(), format!("{v:.0}")]);
    }
    for (row, v) in
        rows.iter().filter(|(r, _)| r.iter().filter(|c| *c == "ALL").count() == 2).take(3)
    {
        sample.row([row[0].clone(), row[1].clone(), row[2].clone(), format!("{v:.0}")]);
    }
    for (row, v) in rows.iter().filter(|(r, _)| !r.contains(&"ALL".to_owned())).take(2) {
        sample.row([row[0].clone(), row[1].clone(), row[2].clone(), format!("{v:.0}")]);
    }
    out.push_str(&sample.render());
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn cube_agrees_and_emits_all_rows() {
        let s = super::run();
        assert!(s.contains("strategies agree on every cuboid: true"));
        assert!(s.contains("ALL"));
        assert!(s.contains("cuboids"));
        assert!(s.contains("partition-parallel CUBE"));
        assert!(s.contains("derivation plan"));
        assert!(s.contains("base facts"));
    }
}
