//! E16 — Fig 23 / §6.4: subcube partitioning.

use statcube_storage::chunked::ChunkedArray;

use crate::report::{ratio, Table};

fn fill(a: &mut ChunkedArray) {
    let dims = a.dims().to_vec();
    for i in 0..dims[0] {
        for j in 0..dims[1] {
            a.set(&[i, j], (i * dims[1] + j) as f64).expect("set");
        }
    }
    a.io().reset();
}

/// Reproduces the \[SS94\]/\[CD+95\] shape: range-query pages vs chunk size
/// for symmetric partitioning, and the win of a workload-tuned
/// non-symmetric shape when queries are row-shaped.
pub fn run() -> String {
    const N: usize = 256;
    let mut out = String::new();
    out.push_str("=== E16: subcube partitioning (Fig 23, [SS94], [CD+95]) ===\n\n");

    // Square query region 32x32 on a 256x256 cube, symmetric chunk sweep.
    let mut t = Table::new(
        "32x32 range query on a 256x256 cube, symmetric chunks",
        &["chunk side", "chunks touched", "pages read", "vs unpartitioned"],
    );
    let mut unchunked_pages = 0u64;
    for side in [256usize, 64, 32, 16, 8] {
        let mut a = ChunkedArray::symmetric(&[N, N], side, 4096).expect("chunked");
        fill(&mut a);
        let (sum, count) = a.range_sum(&[100, 100], &[132, 132]).expect("range");
        assert_eq!(count, 32 * 32);
        assert!(sum > 0.0);
        let pages = a.io().pages_read();
        if side == 256 {
            unchunked_pages = pages;
        }
        t.row([
            side.to_string(),
            a.chunks_overlapping(&[100, 100], &[132, 132]).to_string(),
            pages.to_string(),
            ratio(unchunked_pages as f64 / pages as f64),
        ]);
    }
    out.push_str(&t.render());

    // Non-symmetric tuning for row-shaped queries.
    let mut t2 = Table::new(
        "row-shaped query (2x256) — symmetric vs workload-tuned chunks",
        &["chunk shape", "chunks touched", "pages read"],
    );
    for shape in [[16usize, 16], [2, 256], [256, 2]] {
        let mut a = ChunkedArray::new(&[N, N], &shape, 4096).expect("chunked");
        fill(&mut a);
        let (_, count) = a.range_sum(&[64, 0], &[66, 256]).expect("range");
        assert_eq!(count, 2 * 256);
        t2.row([
            format!("{}x{}", shape[0], shape[1]),
            a.chunks_overlapping(&[64, 0], &[66, 256]).to_string(),
            a.io().pages_read().to_string(),
        ]);
    }
    out.push('\n');
    out.push_str(&t2.render());
    out.push_str(
        "\nshape as in §6.4: chunks near the query size minimize pages; a chunk\n\
         shape aligned with the typical query (2x256 for row scans) beats the\n\
         symmetric default, and a mis-aligned one (256x2) is the worst case.\n",
    );

    // Ablation for DESIGN.md's starred I/O-layer decision: the page size
    // scales absolute counts but not the orderings the claims rest on.
    let mut t3 = Table::new(
        "ablation: page size does not change the chunking verdict",
        &["page size", "chunk 256 pages", "chunk 32 pages", "ordering"],
    );
    for page in [1024usize, 4096, 16384] {
        let read = |side: usize| {
            let mut a = ChunkedArray::symmetric(&[N, N], side, page).expect("chunked");
            fill(&mut a);
            a.range_sum(&[100, 100], &[132, 132]).expect("range");
            a.io().pages_read()
        };
        let big = read(256);
        let small = read(32);
        t3.row([
            page.to_string(),
            big.to_string(),
            small.to_string(),
            (if small < big { "32 wins" } else { "inverted!" }).to_owned(),
        ]);
    }
    out.push('\n');
    out.push_str(&t3.render());
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn chunking_reduces_pages_and_tuning_wins() {
        let s = super::run();
        // Chunk side 32 must beat unpartitioned by a large factor.
        let line32 = s.lines().find(|l| l.trim_start().starts_with("32 ")).unwrap();
        let win: f64 = line32.rsplit('x').next().unwrap().trim().parse().unwrap();
        assert!(win > 10.0, "win {win}");
        // Tuned 2x256 touches exactly 1 chunk; 256x2 touches 128.
        let tuned = s.lines().find(|l| l.trim_start().starts_with("2x256")).unwrap();
        assert_eq!(tuned.split_whitespace().nth(1).unwrap(), "1");
        let bad = s.lines().find(|l| l.trim_start().starts_with("256x2")).unwrap();
        assert_eq!(bad.split_whitespace().nth(1).unwrap(), "128");
        // The page-size ablation never inverts the ordering.
        assert!(s.contains("ablation"));
        assert!(!s.contains("inverted!"));
    }
}
