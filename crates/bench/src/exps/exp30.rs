//! E30 — scatter-gather sharding: pruning payoff, scatter overhead, and
//! dead-shard degradation.
//!
//! The tentpole measurement for the sharded execution layer. Four
//! questions, each on the pinned sharded serving workload
//! ([`serving::SHARD_CARDS`], hash-routed on dimension 0, base view only,
//! cache disabled so every query pays its scan):
//!
//! * **slice pruning** — a shard-key slice stream through
//!   [`serving::run_shard_stream`] at N ∈ {1, 2, 4, 8}: a filter on the
//!   router dimension proves non-owning shards empty, so only the owning
//!   shard scans. Cost falls to ~1/N of the cells — the
//!   subcube-partitioning payoff of §6.4, and the machine this repo runs
//!   on has **one core**, so this is a work-reduction win, not a
//!   parallelism win.
//! * **unfiltered scatter** — the same masks with no filter: every shard
//!   scans its partition and the merge folds N partial blocks. On one
//!   core the total work is unchanged, so throughput holds near the
//!   unsharded reference minus scatter/merge overhead — reported
//!   honestly, not hidden.
//! * **delta ingest** — the pinned maintenance stream routed and folded
//!   per shard, rows/sec against shard count.
//! * **dead-shard degradation** — kill one of four shards: every
//!   unfiltered answer degrades to a typed partial (`missing_shards`
//!   names exactly the dead shard), throughput over the survivors, then
//!   `heal()` restores complete answers.
//!
//! A `json:` line carries the numbers machine-readably; the release build
//! asserts the headline claim (≥2.5× slice throughput at N=4), and the
//! unit test pins the qualitative claims on a scaled-down run.

use std::fmt::Write as _;
use std::time::Instant;

use statcube_core::plan::{self, Plan, Planner, PlannerConfig, PrivacyPolicy};
use statcube_cube::cache::CacheConfig;
use statcube_cube::input::FactInput;
use statcube_cube::sharded::{ShardNode, ShardRouter, ShardedViewStore};
use statcube_cube::shared::SharedViewStore;

use crate::report::{ratio, Table};
use crate::serving::{
    self, shard_delta_batches, shard_slice_stream, zipf_stream, DELTA_ROWS, SHARD_CARDS, SHARD_N,
    ZIPF_S,
};

/// Shard counts under test.
const SWEEP: [usize; 4] = [1, 2, 4, 8];
/// Delta batches folded per shard count.
const DELTA_BATCHES: usize = 20;

/// The sharded serving fact table at an arbitrary row count — the same
/// xorshift recurrence as [`serving::make_shard_facts`], so the scaled
/// unit-test run measures the same distribution the release run does.
fn facts_of(rows: usize, seed: u64) -> FactInput {
    let mut input = FactInput::new(&SHARD_CARDS).expect("input");
    let mut x = seed | 1;
    for _ in 0..rows {
        let coords: Vec<u32> = SHARD_CARDS
            .iter()
            .map(|&c| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x % c as u64) as u32
            })
            .collect();
        input.push(&coords, (x % 1000) as f64).expect("push");
    }
    input
}

/// Unfiltered scatter throughput at the block level (the same layer
/// [`serving::run_shard_stream`] measures): answers every mask in
/// `stream` through the sharded path, requiring complete answers.
fn scatter_ops(store: &ShardedViewStore, stream: &[u32]) -> f64 {
    let t = Instant::now();
    for &mask in stream {
        let (exec, _) = store
            .execute_filtered(mask, &[], &PrivacyPolicy::none(), PlannerConfig::default())
            .expect("answer");
        assert_eq!(exec.missing_shards, 0, "healthy scatter must be complete");
    }
    stream.len() as f64 / t.elapsed().as_secs_f64().max(1e-9)
}

/// Runs E30 at the pinned release sizes.
pub fn run() -> String {
    run_with(serving::SHARD_ROWS, serving::SHARD_STREAM_LEN)
}

/// The measurement body, parameterized so the debug unit test can run a
/// scaled-down copy of the identical procedure.
fn run_with(rows: usize, stream_len: usize) -> String {
    let facts = facts_of(rows, 3);
    let slices = shard_slice_stream(stream_len, 7);
    let masks = zipf_stream((1u32 << SHARD_CARDS.len()) - 1, stream_len, ZIPF_S, 7);
    let mut out = String::new();
    out.push_str("=== E30: scatter-gather sharding — pruning, overhead, degradation ===\n\n");
    let _ = writeln!(
        out,
        "workload: {:?} cards, {} rows, {} slice + {} scatter queries, hash router on dim 0\n",
        SHARD_CARDS, rows, stream_len, stream_len,
    );

    let warm = slices.len().min(40);

    // Unsharded block-level reference for the scatter columns: plan and
    // execute per query, same as the sharded path does per shard.
    let unsharded = SharedViewStore::build(&facts, &[], CacheConfig::disabled()).expect("store");
    let reference = {
        let catalog = ShardNode::catalog(&unsharded);
        let src = unsharded.plan_source();
        let run = || {
            let t = Instant::now();
            for &mask in &masks {
                let logical = Plan::scan("cube").aggregate_mask(mask);
                let planned =
                    Planner::for_store(SHARD_CARDS.len(), &catalog).plan(&logical).expect("plan");
                std::hint::black_box(plan::execute(&planned, &src).expect("execute"));
            }
            masks.len() as f64 / t.elapsed().as_secs_f64().max(1e-9)
        };
        run();
        run()
    };

    // --- shard-count sweep ------------------------------------------------
    let mut t = Table::new(
        "shard-count sweep (single core: pruning is a work win, scatter is overhead)",
        &["shards", "slice ops/sec", "slice speedup", "scatter ops/sec", "delta rows/sec"],
    );
    let mut json_sweep = String::new();
    let mut slice_at = [0.0f64; SWEEP.len()];
    for (i, &n) in SWEEP.iter().enumerate() {
        let store = ShardedViewStore::build(
            &facts,
            &[],
            ShardRouter::Hash { dim: 0 },
            n,
            CacheConfig::disabled(),
        )
        .expect("sharded store");
        // Page the store in before measuring (cold first-touch decode
        // would otherwise be charged to the first queries), then take the
        // better of two passes — this box has one noisy shared core.
        serving::run_shard_stream(&store, &slices[..warm]);
        let slice_a = serving::run_shard_stream(&store, &slices);
        let slice_b = serving::run_shard_stream(&store, &slices);
        let slice = if slice_a.ops_per_sec >= slice_b.ops_per_sec { slice_a } else { slice_b };
        slice_at[i] = slice.ops_per_sec;
        let scatter = scatter_ops(&store, &masks);
        let batches = shard_delta_batches(11, DELTA_BATCHES);
        let dt = Instant::now();
        for b in &batches {
            store.apply_delta(b).expect("delta");
        }
        let delta_rows = (DELTA_BATCHES * DELTA_ROWS) as f64 / dt.elapsed().as_secs_f64().max(1e-9);
        t.row([
            n.to_string(),
            format!("{:.1}", slice.ops_per_sec),
            ratio(slice.ops_per_sec / slice_at[0].max(1e-9)),
            format!("{scatter:.1}"),
            format!("{delta_rows:.0}"),
        ]);
        let _ = write!(
            json_sweep,
            "{}{{\"n\":{n},\"slice_ops\":{:.1},\"scatter_ops\":{scatter:.1},\
             \"delta_rows_per_sec\":{delta_rows:.0}}}",
            if json_sweep.is_empty() { "" } else { "," },
            slice.ops_per_sec,
        );
    }
    out.push_str(&t.render());
    let _ = writeln!(out, "\nunsharded scatter reference: {reference:.1} ops/sec\n");
    let scaling_n4 = slice_at[2] / slice_at[0].max(1e-9);

    // --- dead-shard degradation ------------------------------------------
    let store = ShardedViewStore::build(
        &facts,
        &[],
        ShardRouter::Hash { dim: 0 },
        SHARD_N,
        CacheConfig::disabled(),
    )
    .expect("sharded store");
    serving::run_shard_stream(&store, &slices[..warm]);
    let healthy = scatter_ops(&store, &masks);
    store.kill_shard(2).expect("kill");
    let td = Instant::now();
    for &mask in &masks {
        let (exec, failed) = store
            .execute_filtered(mask, &[], &PrivacyPolicy::none(), PlannerConfig::default())
            .expect("partial answer, never an error");
        assert_eq!(exec.missing_shards, 1 << 2, "the mask names exactly the dead shard");
        assert_eq!(failed.len(), 1, "one typed error for the one dead shard");
    }
    let degraded = masks.len() as f64 / td.elapsed().as_secs_f64().max(1e-9);
    store.heal().expect("heal");
    let healed = store.answer(store.top()).expect("answer");
    assert!(!healed.is_partial(), "heal must restore complete answers");
    let mut td_table = Table::new(
        "dead-shard degradation (N=4, shard 2 killed, unfiltered scatter)",
        &["state", "ops/sec", "answers"],
    );
    td_table.row(["healthy".into(), format!("{healthy:.1}"), "complete".into()]);
    td_table.row([
        "one shard dead".into(),
        format!("{degraded:.1}"),
        "partial, missing_shards=0b0100".into(),
    ]);
    td_table.row(["healed".to_owned(), "-".to_owned(), "complete".to_owned()]);
    out.push_str(&td_table.render());

    let _ = writeln!(
        out,
        "\nslice scaling at N=4: {} — a shard-key filter proves three of four\n\
         shards empty before they are planned, so the slice costs one shard's\n\
         scan (~1/N of the cells). the unfiltered scatter pays the same total\n\
         scan on this one-core machine plus merge overhead, and a dead shard\n\
         degrades answers to typed partials instead of failing.\n",
        ratio(scaling_n4),
    );
    // The headline acceptance claim, asserted only under optimization —
    // debug-build constant factors would make it meaningless.
    #[cfg(not(debug_assertions))]
    assert!(
        scaling_n4 >= 2.5,
        "slice pruning must deliver >=2.5x at N=4, measured {scaling_n4:.2}x"
    );
    let _ = writeln!(
        out,
        "\njson: {{\"sweep\":[{json_sweep}],\"scaling_n4\":{scaling_n4:.2},\
         \"unsharded_scatter_ops\":{reference:.1},\"dead\":{{\"healthy_ops\":{healthy:.1},\
         \"degraded_ops\":{degraded:.1},\"missing_mask\":4}}}}",
    );
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn pruned_slices_outrun_full_scatter_and_dead_shards_degrade() {
        // Scaled-down copy of the release procedure (debug builds are slow;
        // the shape of the claims is size-invariant).
        let s = super::run_with(6_000, 48);
        assert!(s.contains("shard-count sweep"));
        assert!(s.contains("dead-shard degradation"));
        assert!(s.contains("missing_shards=0b0100"));
        let json = s.lines().find(|l| l.starts_with("json: ")).expect("json line");
        let num = |key: &str| -> f64 {
            let at = json.find(key).expect(key) + key.len();
            json[at..]
                .trim_start_matches(':')
                .chars()
                .take_while(|c| c.is_ascii_digit() || *c == '.')
                .collect::<String>()
                .parse()
                .expect("number")
        };
        // Pruning reduces work even without optimization: N=4 slices must
        // beat N=1 (the release run asserts the full >=2.5x claim).
        assert!(
            num("\"scaling_n4\"") > 1.2,
            "shard-key slices did not get cheaper with pruning\n{s}"
        );
        // Degradation answered every query (throughput is finite and
        // positive), and the partial/heal assertions in run_with passed.
        assert!(num("\"degraded_ops\"") > 0.0);
    }
}
