//! E18 — §6.6: MOLAP vs ROLAP across density.

use std::time::Instant;

use statcube_cube::input::FactInput;
use statcube_cube::{cube_op, molap, rolap};

use crate::report::{f, Table};

fn make_input(cards: &[usize], rows: usize, seed: u64) -> FactInput {
    let mut input = FactInput::new(cards).expect("input");
    let mut x = seed | 1;
    for _ in 0..rows {
        let coords: Vec<u32> = cards
            .iter()
            .map(|&c| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x % c as u64) as u32
            })
            .collect();
        input.push(&coords, (x % 1000) as f64).expect("push");
    }
    input
}

/// Reproduces the §6.6 / \[ZDN97\] shape: dense-array MOLAP beats the
/// relational engines when the cube is dense, loses when it is sparse, and
/// the crossover sits in between.
pub fn run() -> String {
    let cards = [32usize, 32, 32]; // 32k-cell cross product
    let space: usize = cards.iter().product();
    let mut out = String::new();
    out.push_str("=== E18: MOLAP vs ROLAP cube computation (§6.6, [ZDN97]) ===\n\n");
    let hw = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let mut t = Table::new(
        "full-cube computation time (ms) over a 32x32x32 space",
        &[
            "facts",
            "density",
            "MOLAP (array)",
            "ROLAP (sort)",
            "ROLAP (hash)",
            "hash parallel",
            "winner",
        ],
    );
    let mut dense_winner = String::new();
    let mut sparse_winner = String::new();
    for &rows in &[100usize, 1_000, 10_000, 100_000, 400_000] {
        let input = make_input(&cards, rows, 42);
        let reps = if rows <= 1_000 { 20 } else { 3 };
        let time = |f: &dyn Fn()| -> f64 {
            let t0 = Instant::now();
            for _ in 0..reps {
                f();
            }
            t0.elapsed().as_secs_f64() * 1000.0 / reps as f64
        };
        let m = time(&|| {
            molap::compute_molap(&input).expect("molap");
        });
        let rs = time(&|| {
            rolap::compute_rolap(&input);
        });
        let rh = time(&|| {
            cube_op::compute_shared(&input);
        });
        let rp = time(&|| {
            cube_op::compute_parallel(&input, hw);
        });
        // The §6.6 winner call stays between the sequential engines; the
        // parallel column shows what thread fan-out buys the hash engine.
        let winner = if m < rs.min(rh) { "MOLAP" } else { "ROLAP" };
        let density = rows as f64 / space as f64;
        if density >= 3.0 {
            dense_winner = winner.to_owned();
        }
        if density <= 0.01 {
            sparse_winner = winner.to_owned();
        }
        t.row([
            rows.to_string(),
            f(density),
            format!("{m:.2}"),
            format!("{rs:.2}"),
            format!("{rh:.2}"),
            format!("{rp:.2}"),
            winner.to_owned(),
        ]);
    }
    out.push_str(&t.render());

    // Correctness cross-check on one mid-density input.
    let input = make_input(&cards, 10_000, 7);
    let m = molap::compute_molap(&input).expect("molap").to_cube_result();
    let r = rolap::compute_rolap(&input).to_cube_result();
    let p = cube_op::compute_parallel(&input, hw);
    let h = cube_op::compute_shared(&input);
    let agree = h.masks().iter().all(|&mask| {
        let hc = h.cuboid(mask).unwrap();
        [m.cuboid(mask).unwrap(), r.cuboid(mask).unwrap(), p.cuboid(mask).unwrap()].iter().all(
            |c| {
                c.len() == hc.len()
                    && hc.iter().all(|(k, s)| {
                        c.get(k)
                            .map(|x| (x.sum - s.sum).abs() < 1e-6 && x.count == s.count)
                            .unwrap_or(false)
                    })
            },
        )
    });
    out.push_str(&format!("\nall four engines agree on every cuboid: {agree}\n"));
    out.push_str(&format!(
        "observed: sparse end won by {sparse_winner}, dense end won by {dense_winner} —\n\
         the §6.6 claim ('MOLAP performs better', substantiated by [ZDN97] on\n\
         dense data) with the sparse caveat ROLAP proponents raise.\n"
    ));
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn engines_agree() {
        let s = super::run();
        assert!(s.contains("all four engines agree on every cuboid: true"));
    }

    #[test]
    fn dense_end_prefers_molap() {
        let s = super::run();
        assert!(s.contains("dense end won by MOLAP"), "{s}");
    }
}
