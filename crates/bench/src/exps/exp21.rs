//! E21 — §5.4: SQL extensions for OLAP.

use statcube_sql::{execute_str, expand_cube_to_unions, parse};
use statcube_workload::retail::{generate, RetailConfig};

use crate::report::Table;

/// Demonstrates both §5.4 points in code: (1) the CUBE query that replaces
/// an "awkward and verbose" union of `2^n` GROUP BYs — printed side by
/// side with its expansion; (2) SQL over a *statistical object* keeps the
/// semantics a bare relation lacks — summarizability enforced per
/// aggregate.
pub fn run() -> String {
    let retail = generate(&RetailConfig {
        products: 10,
        categories: 3,
        cities: 2,
        stores_per_city: 2,
        days: 20,
        rows: 3_000,
        seed: 4,
    });
    let mut out = String::new();
    out.push_str("=== E21: SQL extensions for OLAP (§5.4, [GB+96]) ===\n\n");

    let cube_sql = "SELECT SUM(\"quantity sold\") FROM sales \
                    WHERE product <> 'p0000' GROUP BY CUBE(store, day)";
    out.push_str(&format!("the CUBE query:\n  {cube_sql}\n\n"));
    let parsed = parse(cube_sql).expect("parse");
    let unions = expand_cube_to_unions(&parsed).expect("expand");
    out.push_str(&format!(
        "what it replaces — {} separate GROUP BY queries plus a union\n\
         (the paper: \"awkward and verbose\"):\n",
        unions.len()
    ));
    for u in &unions {
        out.push_str(&format!("  {u}\n"));
    }
    let cube_chars = cube_sql.len();
    let union_chars: usize =
        unions.iter().map(String::len).sum::<usize>() + (unions.len() - 1) * " UNION ALL ".len();
    out.push_str(&format!(
        "\nquery-text size: {cube_chars} chars with CUBE vs {union_chars} expanded (x{:.1})\n",
        union_chars as f64 / cube_chars as f64
    ));

    // Execute the CUBE query and each expansion; the union of the pieces
    // must equal the CUBE result row-for-row.
    let rs = execute_str(&retail.object, cube_sql).expect("execute");
    let mut union_rows = 0;
    let mut union_values: Vec<f64> = Vec::new();
    for u in &unions {
        let part = execute_str(&retail.object, u).expect("execute part");
        union_rows += part.rows.len();
        union_values.extend(part.rows.iter().filter_map(|r| r.values[0]));
    }
    let mut cube_values: Vec<f64> = rs.rows.iter().filter_map(|r| r.values[0]).collect();
    cube_values.sort_by(f64::total_cmp);
    union_values.sort_by(f64::total_cmp);
    let agree = rs.rows.len() == union_rows
        && cube_values.len() == union_values.len()
        && cube_values.iter().zip(&union_values).all(|(a, b)| (a - b).abs() < 1e-9);
    out.push_str(&format!(
        "CUBE result ({} rows) equals the union of the {} expansions: {agree}\n",
        rs.rows.len(),
        unions.len()
    ));

    // A taste of the output, Fig 15-style.
    let mut t = Table::new("first rows of the CUBE result", &["store", "day", "SUM"]);
    for row in rs.rows.iter().rev().take(4) {
        t.row([
            row.group[0].as_deref().unwrap_or("ALL").to_owned(),
            row.group[1].as_deref().unwrap_or("ALL").to_owned(),
            format!("{:.0}", row.values[0].unwrap_or(0.0)),
        ]);
    }
    out.push('\n');
    out.push_str(&t.render());

    // Point (2): semantics retained — per-aggregate summarizability.
    let stocks = statcube_workload::stocks::generate(&statcube_workload::stocks::StocksConfig {
        stocks: 4,
        industries: 2,
        weeks: 2,
        seed: 1,
    });
    let refused = execute_str(&stocks.object, "SELECT SUM(price) FROM stocks GROUP BY stock");
    let allowed = execute_str(&stocks.object, "SELECT AVG(price) FROM stocks GROUP BY stock");
    out.push_str(&format!(
        "\nsemantics survive SQL: SUM(price) over days is {}, AVG(price) is {} —\n\
         a bare relational table could not refuse the first (§5.4's criticism).\n",
        if refused.is_err() { "REFUSED" } else { "answered?!" },
        if allowed.is_ok() { "answered" } else { "refused?!" },
    ));
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn cube_equals_union_and_semantics_hold() {
        let s = super::run();
        assert!(s.contains("expansions: true"));
        assert!(s.contains("SUM(price) over days is REFUSED"));
        assert!(s.contains("AVG(price) is answered"));
        assert!(!s.contains("?!"));
    }
}
