//! Extendible arrays (§6.5, Fig 24, \[RZ86\]).
//!
//! Data warehouses append over time (daily loads), but a linearized array's
//! position function bakes in the dimension sizes — growing a dimension
//! normally means restructuring (rewriting) the whole array. \[RZ86\] instead
//! appends an *increment segment* per extension and keeps an index over the
//! increments, so an append writes only the new cells. Lookup: each index
//! along each dimension remembers which extension event introduced it; a
//! cell lives in the **most recent** of the events that introduced any of
//! its indices, and is linearized with the dimension sizes frozen at that
//! event.

use statcube_core::error::{Error, Result};

use crate::btree::BPlusTree;
use crate::io_stats::IoStats;

#[derive(Debug, Clone)]
struct Segment {
    /// Which dimension this extension grew (the initial allocation is
    /// recorded as an extension of dimension 0 from index 0).
    dim: usize,
    /// First index of `dim` covered by this segment.
    start: usize,
    /// Full array shape frozen at creation, with `shape[dim]` = this
    /// segment's extent along `dim`.
    shape: Vec<usize>,
    data: Vec<f64>,
}

impl Segment {
    fn offset(&self, coords: &[usize]) -> usize {
        // Row-major over `shape`, with `dim` re-based to `start`.
        let mut off = 0;
        for (d, &c) in coords.iter().enumerate() {
            let c = if d == self.dim { c - self.start } else { c };
            off = off * self.shape[d] + c;
        }
        off
    }
}

/// A multidimensional array supporting O(increment) appends along any
/// dimension.
#[derive(Debug)]
pub struct ExtendibleArray {
    dims: Vec<usize>,
    segments: Vec<Segment>,
    /// `axis[d]` maps each index of dimension `d` to the segment
    /// (extension event) that introduced it; stored as a B-tree
    /// `index → segment id` per dimension, as \[RZ86\]'s tree-based index of
    /// the multidimensional increments.
    axis: Vec<BPlusTree>,
    io: IoStats,
}

impl Clone for ExtendibleArray {
    /// Clones the cells, segments and increment index. [`IoStats`] counters
    /// are atomics with no `Clone`; the copy starts with fresh (zeroed)
    /// counters at the same page size, since the clone has done no I/O yet.
    fn clone(&self) -> Self {
        Self {
            dims: self.dims.clone(),
            segments: self.segments.clone(),
            axis: self.axis.clone(),
            io: IoStats::labeled(self.io.page_size(), "extendible"),
        }
    }
}

impl ExtendibleArray {
    /// Allocates the initial array.
    pub fn new(initial: &[usize], page_size: usize) -> Result<Self> {
        if initial.is_empty() || initial.contains(&0) {
            return Err(Error::InvalidSchema("array needs non-zero dimensions".into()));
        }
        let seg = Segment {
            dim: 0,
            start: 0,
            shape: initial.to_vec(),
            data: vec![f64::NAN; initial.iter().product()],
        };
        let mut axis = Vec::with_capacity(initial.len());
        for &n in initial {
            let mut t = BPlusTree::new();
            // All initial indices belong to segment 0; one range entry
            // suffices since lookups use last_le.
            t.insert(0, 0);
            let _ = n;
            axis.push(t);
        }
        let io = IoStats::labeled(page_size, "extendible");
        io.charge_seq_write(seg.data.len() * 8);
        Ok(Self { dims: initial.to_vec(), segments: vec![seg], axis, io })
    }

    /// Current logical shape.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// The I/O counters.
    pub fn io(&self) -> &IoStats {
        &self.io
    }

    /// Number of increment segments (including the initial allocation).
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// Total cells across all segments.
    pub fn len(&self) -> usize {
        self.segments.iter().map(|s| s.data.len()).sum()
    }

    /// True if the array holds no cells (never, post-construction).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Stored bytes.
    pub fn size_bytes(&self) -> usize {
        self.len() * 8
    }

    /// Bytes a full restructure (dense reallocation + copy) of the current
    /// shape would write — the cost \[RZ86\] avoids.
    pub fn restructure_bytes(&self) -> usize {
        self.dims.iter().product::<usize>() * 8
    }

    /// Appends `k` new indices to dimension `dim`, writing only the new
    /// hyperslab.
    pub fn extend(&mut self, dim: usize, k: usize) -> Result<()> {
        if dim >= self.dims.len() {
            return Err(Error::InvalidSchema(format!("dimension {dim} out of range")));
        }
        if k == 0 {
            return Err(Error::InvalidSchema("extension must add at least one index".into()));
        }
        let mut shape = self.dims.clone();
        shape[dim] = k;
        let seg_id = self.segments.len() as u64;
        let seg = Segment {
            dim,
            start: self.dims[dim],
            shape: shape.clone(),
            data: vec![f64::NAN; shape.iter().product()],
        };
        self.io.charge_seq_write(seg.data.len() * 8);
        self.axis[dim].insert(self.dims[dim] as u64, seg_id);
        self.dims[dim] += k;
        self.segments.push(seg);
        Ok(())
    }

    fn locate(&self, coords: &[usize]) -> Result<usize> {
        if coords.len() != self.dims.len() {
            return Err(Error::ArityMismatch { expected: self.dims.len(), got: coords.len() });
        }
        let mut seg = 0u64;
        for (d, &c) in coords.iter().enumerate() {
            if c >= self.dims[d] {
                return Err(Error::InvalidSchema(format!(
                    "coordinate {c} out of range {}",
                    self.dims[d]
                )));
            }
            // Every axis tree is seeded with key 0 at construction, so
            // `last_le` cannot miss; fall back to segment 0 regardless.
            let s = self.axis[d].last_le(c as u64).map_or(0, |(_, s)| s);
            seg = seg.max(s);
        }
        Ok(seg as usize)
    }

    /// Writes a cell.
    pub fn set(&mut self, coords: &[usize], v: f64) -> Result<()> {
        let s = self.locate(coords)?;
        let off = self.segments[s].offset(coords);
        self.segments[s].data[off] = v;
        Ok(())
    }

    /// Reads a cell.
    pub fn get(&self, coords: &[usize]) -> Result<Option<f64>> {
        let s = self.locate(coords)?;
        let off = self.segments[s].offset(coords);
        let v = self.segments[s].data[off];
        Ok(if v.is_nan() { None } else { Some(v) })
    }

    /// Range query over the half-open region `[lo, hi)`: sum and count.
    /// Charges one read per distinct segment touched (the increment index
    /// makes segments the I/O unit for range queries, \[RZ86\] §access
    /// methods).
    pub fn range_sum(&self, lo: &[usize], hi: &[usize]) -> Result<(f64, u64)> {
        if lo.len() != self.dims.len() || hi.len() != self.dims.len() {
            return Err(Error::ArityMismatch { expected: self.dims.len(), got: lo.len() });
        }
        for d in 0..self.dims.len() {
            if hi[d] > self.dims[d] {
                return Err(Error::InvalidSchema(format!(
                    "range end {} out of range {}",
                    hi[d], self.dims[d]
                )));
            }
            if hi[d] <= lo[d] {
                return Ok((0.0, 0));
            }
        }
        let mut touched = vec![false; self.segments.len()];
        let mut sum = 0.0;
        let mut count = 0u64;
        let mut cursor = lo.to_vec();
        'cells: loop {
            let s = self.locate(&cursor)?;
            if !touched[s] {
                touched[s] = true;
                self.io.charge_seq_read(self.segments[s].data.len() * 8);
            }
            let off = self.segments[s].offset(&cursor);
            let v = self.segments[s].data[off];
            if !v.is_nan() {
                sum += v;
                count += 1;
            }
            for d in (0..self.dims.len()).rev() {
                cursor[d] += 1;
                if cursor[d] < hi[d] {
                    continue 'cells;
                }
                cursor[d] = lo[d];
                if d == 0 {
                    break 'cells;
                }
            }
        }
        Ok((sum, count))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_array_behaves_like_dense() {
        let mut a = ExtendibleArray::new(&[3, 4], 4096).unwrap();
        for i in 0..3 {
            for j in 0..4 {
                a.set(&[i, j], (i * 4 + j) as f64).unwrap();
            }
        }
        for i in 0..3 {
            for j in 0..4 {
                assert_eq!(a.get(&[i, j]).unwrap(), Some((i * 4 + j) as f64));
            }
        }
        assert_eq!(a.segment_count(), 1);
        assert!(a.get(&[3, 0]).is_err());
    }

    #[test]
    fn extend_one_dimension() {
        let mut a = ExtendibleArray::new(&[2, 2], 4096).unwrap();
        a.set(&[1, 1], 11.0).unwrap();
        a.extend(0, 2).unwrap(); // rows 2..4
        assert_eq!(a.dims(), &[4, 2]);
        a.set(&[3, 1], 31.0).unwrap();
        assert_eq!(a.get(&[1, 1]).unwrap(), Some(11.0)); // old data intact
        assert_eq!(a.get(&[3, 1]).unwrap(), Some(31.0));
        assert_eq!(a.get(&[2, 0]).unwrap(), None);
        assert_eq!(a.segment_count(), 2);
    }

    #[test]
    fn interleaved_extensions_of_different_dimensions() {
        // The Fig 24 shape: grow several dimensions alternately.
        let mut a = ExtendibleArray::new(&[2, 2], 4096).unwrap();
        let mut reference = std::collections::HashMap::new();
        let mut put = |a: &mut ExtendibleArray, i: usize, j: usize, v: f64| {
            a.set(&[i, j], v).unwrap();
            reference.insert((i, j), v);
        };
        put(&mut a, 0, 0, 1.0);
        put(&mut a, 1, 1, 2.0);
        a.extend(1, 3).unwrap(); // cols 2..5
        put(&mut a, 0, 4, 3.0);
        a.extend(0, 2).unwrap(); // rows 2..4 (covering cols 0..5)
        put(&mut a, 3, 4, 4.0);
        put(&mut a, 2, 0, 5.0);
        a.extend(1, 1).unwrap(); // col 5 (covering rows 0..4)
        put(&mut a, 3, 5, 6.0);
        put(&mut a, 0, 5, 7.0);
        assert_eq!(a.dims(), &[4, 6]);
        assert_eq!(a.segment_count(), 4);
        for i in 0..4 {
            for j in 0..6 {
                assert_eq!(
                    a.get(&[i, j]).unwrap(),
                    reference.get(&(i, j)).copied(),
                    "cell ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn append_writes_only_the_increment() {
        let mut a = ExtendibleArray::new(&[100, 100], 4096).unwrap();
        let after_init = a.io().pages_written();
        a.extend(0, 1).unwrap(); // one new row: 100 cells = 800 B = 1 page
        let append_pages = a.io().pages_written() - after_init;
        assert_eq!(append_pages, 1);
        // A restructure would rewrite the whole 101×100 array.
        assert_eq!(a.restructure_bytes(), 101 * 100 * 8);
        assert!(append_pages < a.io().pages_of(a.restructure_bytes()));
    }

    #[test]
    fn range_sum_matches_naive_and_charges_segments() {
        let mut a = ExtendibleArray::new(&[4, 4], 4096).unwrap();
        for i in 0..4 {
            for j in 0..4 {
                a.set(&[i, j], (i * 10 + j) as f64).unwrap();
            }
        }
        a.extend(0, 2).unwrap();
        for i in 4..6 {
            for j in 0..4 {
                a.set(&[i, j], (i * 10 + j) as f64).unwrap();
            }
        }
        a.io().reset();
        let (sum, count) = a.range_sum(&[3, 1], &[6, 3]).unwrap();
        let expected: f64 = [31, 32, 41, 42, 51, 52].iter().sum::<i32>() as f64;
        assert_eq!(sum, expected);
        assert_eq!(count, 6);
        // Touches the initial segment and the increment: 2 segment reads.
        assert_eq!(a.io().pages_read(), 2);
        // Degenerate range.
        assert_eq!(a.range_sum(&[2, 2], &[2, 4]).unwrap(), (0.0, 0));
        assert!(a.range_sum(&[0, 0], &[7, 2]).is_err());
    }

    #[test]
    fn construction_and_extension_errors() {
        assert!(ExtendibleArray::new(&[], 4096).is_err());
        assert!(ExtendibleArray::new(&[0, 2], 4096).is_err());
        let mut a = ExtendibleArray::new(&[2], 4096).unwrap();
        assert!(a.extend(1, 1).is_err());
        assert!(a.extend(0, 0).is_err());
        assert!(a.set(&[0, 0], 1.0).is_err());
    }

    #[test]
    fn many_daily_appends() {
        // The warehouse pattern: one new "day" slice per load.
        let mut a = ExtendibleArray::new(&[50, 1], 4096).unwrap();
        for day in 1..=30 {
            a.extend(1, 1).unwrap();
            for product in 0..50 {
                a.set(&[product, day], (product * day) as f64).unwrap();
            }
        }
        assert_eq!(a.dims(), &[50, 31]);
        assert_eq!(a.segment_count(), 31);
        assert_eq!(a.get(&[7, 13]).unwrap(), Some(91.0));
        let (sum, _) = a.range_sum(&[0, 30], &[50, 31]).unwrap();
        assert_eq!(sum, (0..50).map(|p| p * 30).sum::<usize>() as f64);
    }
}
