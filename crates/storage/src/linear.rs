//! Array linearization (§6.2, Fig 20) — the core of MOLAP storage.
//!
//! Instead of storing a row per cell with all its category values repeated,
//! store the distinct values of each dimension **once** and compute each
//! cell's position in a dense array from its coordinates. This is the
//! "fairly simple well-known calculation" the paper shows for Essbase-style
//! MOLAP products; it wins while the space is dense and loses to
//! compression ([`crate::header`]) once nulls dominate.

use statcube_core::error::{Error, Result};
use statcube_core::measure::SummaryFunction;
use statcube_core::object::StatisticalObject;

use crate::verify::{ChecksumManifest, ScrubReport, Scrubbable};

/// A dense row-major multidimensional array of `f64` cells; absent cells
/// are `NaN`.
#[derive(Debug, Clone)]
pub struct LinearizedArray {
    dims: Vec<usize>,
    strides: Vec<usize>,
    data: Vec<f64>,
    /// Distinct member labels per dimension, stored once (Fig 20's "+"
    /// block).
    labels: Vec<Vec<String>>,
}

impl LinearizedArray {
    /// An empty (all-NaN) array of the given shape, with anonymous labels.
    pub fn new(dims: &[usize]) -> Result<Self> {
        if dims.is_empty() || dims.contains(&0) {
            return Err(Error::InvalidSchema("array needs non-zero dimensions".into()));
        }
        let labels = dims
            .iter()
            .enumerate()
            .map(|(d, &n)| (0..n).map(|i| format!("d{d}m{i}")).collect())
            .collect();
        Ok(Self::with_labels(dims, labels))
    }

    fn with_labels(dims: &[usize], labels: Vec<Vec<String>>) -> Self {
        let mut strides = vec![1usize; dims.len()];
        for d in (0..dims.len().saturating_sub(1)).rev() {
            strides[d] = strides[d + 1] * dims[d + 1];
        }
        let total: usize = dims.iter().product();
        Self { dims: dims.to_vec(), strides, data: vec![f64::NAN; total], labels }
    }

    /// Materializes a statistical object's measure `m`, evaluated under
    /// `function`, as a dense array.
    pub fn from_object(
        obj: &StatisticalObject,
        m: usize,
        function: SummaryFunction,
    ) -> Result<Self> {
        let dims: Vec<usize> = obj.schema().cardinalities();
        if dims.is_empty() || dims.contains(&0) {
            return Err(Error::InvalidSchema("object has an empty dimension".into()));
        }
        let labels: Vec<Vec<String>> = obj
            .schema()
            .dimensions()
            .iter()
            .map(|d| d.members().values().map(str::to_owned).collect())
            .collect();
        let mut arr = Self::with_labels(&dims, labels);
        for (coords, states) in obj.cells() {
            let idx: Vec<usize> = coords.iter().map(|&c| c as usize).collect();
            if let Some(v) = states[m].value(function) {
                arr.set(&idx, v)?;
            }
        }
        Ok(arr)
    }

    /// The array shape.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of cells in the full cross product.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the array has no cells (never, post-construction).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The Fig 20 position calculation: coordinates → linear offset.
    pub fn offset_of(&self, coords: &[usize]) -> Result<usize> {
        if coords.len() != self.dims.len() {
            return Err(Error::ArityMismatch { expected: self.dims.len(), got: coords.len() });
        }
        let mut off = 0;
        for ((&c, &d), &s) in coords.iter().zip(&self.dims).zip(&self.strides) {
            if c >= d {
                return Err(Error::InvalidSchema(format!("coordinate {c} out of range {d}")));
            }
            off += c * s;
        }
        Ok(off)
    }

    /// The inverse calculation: linear offset → coordinates.
    pub fn coords_of(&self, mut offset: usize) -> Result<Vec<usize>> {
        if offset >= self.data.len() {
            return Err(Error::InvalidSchema(format!("offset {offset} out of range")));
        }
        let mut coords = Vec::with_capacity(self.dims.len());
        for &s in &self.strides {
            coords.push(offset / s);
            offset %= s;
        }
        Ok(coords)
    }

    /// Reads a cell (`None` when the cell holds no value).
    pub fn get(&self, coords: &[usize]) -> Result<Option<f64>> {
        let v = self.data[self.offset_of(coords)?];
        Ok(if v.is_nan() { None } else { Some(v) })
    }

    /// Writes a cell.
    pub fn set(&mut self, coords: &[usize], v: f64) -> Result<()> {
        let off = self.offset_of(coords)?;
        self.data[off] = v;
        Ok(())
    }

    /// The raw dense cell sequence (NaN = absent) in linearization order —
    /// the input to [`crate::header`] compression.
    pub fn dense_values(&self) -> &[f64] {
        &self.data
    }

    /// Fraction of cells holding a value.
    pub fn density(&self) -> f64 {
        let filled = self.data.iter().filter(|v| !v.is_nan()).count();
        filled as f64 / self.data.len().max(1) as f64
    }

    /// Bytes of the dense cell array.
    pub fn cell_bytes(&self) -> usize {
        self.data.len() * 8
    }

    /// Bytes of the per-dimension label lists (each distinct value stored
    /// once).
    pub fn label_bytes(&self) -> usize {
        self.labels.iter().flatten().map(String::len).sum()
    }

    /// Total stored bytes.
    pub fn size_bytes(&self) -> usize {
        self.cell_bytes() + self.label_bytes()
    }

    /// Bytes the same data costs in the flat relational representation of
    /// Fig 10: every populated cell repeats all its category values (4-byte
    /// codes) plus the 8-byte measure.
    pub fn relational_bytes(&self) -> usize {
        let filled = self.data.iter().filter(|v| !v.is_nan()).count();
        filled * (4 * self.dims.len() + 8) + self.label_bytes()
    }

    /// Member labels of dimension `d`.
    pub fn labels_of(&self, d: usize) -> &[String] {
        &self.labels[d]
    }

    /// Seals the current cell contents into a checksum manifest.
    pub fn seal(&self) -> ChecksumManifest {
        ChecksumManifest::seal(self)
    }

    /// Re-checksums the cells against a seal, reporting failing pages.
    pub fn scrub(&self, seal: &ChecksumManifest) -> ScrubReport {
        seal.scrub(self, None)
    }

    /// [`LinearizedArray::scrub`], converted to a typed error on the first
    /// failing page.
    pub fn verify_all(&self, seal: &ChecksumManifest) -> Result<ScrubReport> {
        seal.verify_all(self, None)
    }
}

impl Scrubbable for LinearizedArray {
    fn object_name(&self) -> String {
        format!("LinearizedArray{:?}", self.dims)
    }

    fn content_bytes(&self) -> Vec<u8> {
        self.data.iter().flat_map(|v| v.to_bits().to_le_bytes()).collect()
    }

    fn inject_bitflip(&mut self, bit: u64) {
        crate::verify::flip_f64_bit(&mut self.data, bit);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use statcube_core::dimension::Dimension;
    use statcube_core::measure::{MeasureKind, SummaryAttribute};
    use statcube_core::schema::Schema;

    #[test]
    fn offset_round_trips() {
        let a = LinearizedArray::new(&[3, 4, 5]).unwrap();
        assert_eq!(a.len(), 60);
        let mut seen = [false; 60];
        for i in 0..3 {
            for j in 0..4 {
                for k in 0..5 {
                    let off = a.offset_of(&[i, j, k]).unwrap();
                    assert!(!seen[off], "offset collision at {off}");
                    seen[off] = true;
                    assert_eq!(a.coords_of(off).unwrap(), vec![i, j, k]);
                }
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn fig20_2d_example() {
        // 2-D: 5 rows × 6 columns; cell (row r, col c) sits at r*6 + c,
        // matching the numbering 1..30 shown in Fig 20 (0-based here).
        let a = LinearizedArray::new(&[5, 6]).unwrap();
        assert_eq!(a.offset_of(&[0, 0]).unwrap(), 0);
        assert_eq!(a.offset_of(&[1, 0]).unwrap(), 6);
        assert_eq!(a.offset_of(&[4, 5]).unwrap(), 29);
    }

    #[test]
    fn get_set_and_bounds() {
        let mut a = LinearizedArray::new(&[2, 2]).unwrap();
        assert_eq!(a.get(&[1, 1]).unwrap(), None);
        a.set(&[1, 1], 7.5).unwrap();
        assert_eq!(a.get(&[1, 1]).unwrap(), Some(7.5));
        assert!(a.get(&[2, 0]).is_err());
        assert!(a.get(&[0]).is_err());
        assert!(a.coords_of(4).is_err());
        assert!(LinearizedArray::new(&[]).is_err());
        assert!(LinearizedArray::new(&[3, 0]).is_err());
    }

    #[test]
    fn from_object_materializes_cells() {
        let schema = Schema::builder("t")
            .dimension(Dimension::categorical("a", ["x", "y"]))
            .dimension(Dimension::categorical("b", ["p", "q", "r"]))
            .measure(SummaryAttribute::new("m", MeasureKind::Flow))
            .build()
            .unwrap();
        let mut o = StatisticalObject::empty(schema);
        o.insert(&["x", "q"], 3.0).unwrap();
        o.insert(&["y", "r"], 5.0).unwrap();
        let a = LinearizedArray::from_object(&o, 0, SummaryFunction::Sum).unwrap();
        assert_eq!(a.dims(), &[2, 3]);
        assert_eq!(a.get(&[0, 1]).unwrap(), Some(3.0));
        assert_eq!(a.get(&[1, 2]).unwrap(), Some(5.0));
        assert_eq!(a.get(&[0, 0]).unwrap(), None);
        assert!((a.density() - 2.0 / 6.0).abs() < 1e-12);
        assert_eq!(a.labels_of(1), &["p", "q", "r"]);
    }

    #[test]
    fn dense_beats_relational_when_full_and_loses_when_sparse() {
        let mut dense = LinearizedArray::new(&[10, 10, 10]).unwrap();
        for i in 0..10 {
            for j in 0..10 {
                for k in 0..10 {
                    dense.set(&[i, j, k], 1.0).unwrap();
                }
            }
        }
        // Full: 8 B/cell dense vs 20 B/cell relational.
        assert!(dense.size_bytes() < dense.relational_bytes());

        let mut sparse = LinearizedArray::new(&[10, 10, 10]).unwrap();
        sparse.set(&[0, 0, 0], 1.0).unwrap();
        // 0.1% density: relational stores 1 row, dense stores 1000 cells.
        assert!(sparse.size_bytes() > sparse.relational_bytes());
    }
}
