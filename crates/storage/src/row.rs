//! Row-oriented storage of the flat relation (Fig 10).
//!
//! The baseline the transposed file (\[THC79\], §6.1) was invented to beat:
//! rows are stored contiguously, so *any* query — even one touching two of
//! eight columns — must read every page of the table, while fetching one
//! whole row is a single (or two) page read.

use statcube_core::error::Result;

use crate::io_stats::IoStats;
use crate::relation::{EqPredicates, Relation};
use crate::verify::{ChecksumManifest, ScrubReport, Scrubbable};

/// A row store over a [`Relation`], charging page I/O row-wise.
#[derive(Debug)]
pub struct RowStore {
    rel: Relation,
    io: IoStats,
}

impl RowStore {
    /// Wraps a relation with the given page size.
    pub fn new(rel: Relation, page_size: usize) -> Self {
        Self { rel, io: IoStats::labeled(page_size, "row") }
    }

    /// The underlying relation.
    pub fn relation(&self) -> &Relation {
        &self.rel
    }

    /// The I/O counters.
    pub fn io(&self) -> &IoStats {
        &self.io
    }

    /// Stored bytes (uncompressed rows).
    pub fn size_bytes(&self) -> usize {
        self.rel.total_bytes()
    }

    /// Summary query: `sum`/`count` of measure `m` over rows matching
    /// `preds`. A row store must scan the whole table regardless of how few
    /// columns are involved.
    pub fn sum_where(&self, preds: &EqPredicates, m: usize) -> (f64, u64) {
        self.io.charge_seq_read(self.rel.total_bytes());
        self.rel.sum_where(preds, m)
    }

    /// Fetches a full row: the row store's strength — the row occupies one
    /// contiguous span, usually a single page.
    pub fn fetch_row(&self, row: usize) -> (Vec<u32>, Vec<f64>) {
        let rb = self.rel.row_bytes();
        if rb > 0 {
            // A zero-width row (no columns) touches no pages; guarding here
            // keeps the last-byte arithmetic from underflowing.
            let offset = row * rb;
            let first = offset / self.io.page_size();
            let last = (offset + rb - 1) / self.io.page_size();
            self.io.charge_page_reads((last - first + 1) as u64);
        }
        self.rel.row(row)
    }

    /// Name-based predicate resolution, forwarded to the relation.
    pub fn predicates(&self, preds: &[(&str, &str)]) -> Result<EqPredicates> {
        self.rel.predicates(preds)
    }

    /// Seals the relation payload into a checksum manifest.
    pub fn seal(&self) -> ChecksumManifest {
        ChecksumManifest::seal(self)
    }

    /// Re-checksums the payload against a seal, charging the store's I/O
    /// counters, and reports failing pages.
    pub fn scrub(&self, seal: &ChecksumManifest) -> ScrubReport {
        seal.scrub(self, Some(&self.io))
    }

    /// [`RowStore::scrub`], converted to a typed error on the first failing
    /// page.
    pub fn verify_all(&self, seal: &ChecksumManifest) -> Result<ScrubReport> {
        seal.verify_all(self, Some(&self.io))
    }
}

impl Scrubbable for RowStore {
    fn object_name(&self) -> String {
        format!("RowStore({} rows)", self.rel.len())
    }

    fn content_bytes(&self) -> Vec<u8> {
        self.rel.payload_bytes()
    }

    fn inject_bitflip(&mut self, bit: u64) {
        self.rel.flip_payload_bit(bit);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store(rows: usize, page: usize) -> RowStore {
        let mut rel = Relation::new(&["state", "sex"], &["pop"]);
        for i in 0..rows {
            let state = if i % 2 == 0 { "AL" } else { "CA" };
            let sex = if i % 3 == 0 { "m" } else { "f" };
            rel.push(&[state, sex], &[i as f64]).unwrap();
        }
        RowStore::new(rel, page)
    }

    #[test]
    fn summary_query_scans_everything() {
        let s = store(1000, 4096);
        // 1000 rows × 16 bytes = 16000 bytes = 4 pages.
        let p = s.predicates(&[("state", "AL")]).unwrap();
        let (sum, count) = s.sum_where(&p, 0);
        assert_eq!(count, 500);
        assert_eq!(sum, (0..1000).step_by(2).sum::<usize>() as f64);
        assert_eq!(s.io().pages_read(), 4);
        // A second query scans again.
        s.sum_where(&p, 0);
        assert_eq!(s.io().pages_read(), 8);
    }

    #[test]
    fn row_fetch_touches_one_or_two_pages() {
        let s = store(1000, 4096);
        let (cats, nums) = s.fetch_row(999);
        assert_eq!(nums, vec![999.0]);
        assert_eq!(cats.len(), 2);
        // 16-byte row always fits in at most 2 pages; usually 1.
        assert!(s.io().pages_read() <= 2);
    }

    #[test]
    fn size_accounts_all_rows() {
        let s = store(10, 4096);
        assert_eq!(s.size_bytes(), 10 * 16);
    }
}
