//! A fault-tolerant paged store: checksummed page I/O with deterministic
//! fault injection and bounded exponential-backoff retry.
//!
//! §6 of the paper treats every physical organization as a bet on secondary
//! storage; this module models the part the paper takes for granted — that
//! secondary storage sometimes lies. [`PageStore`] keeps named logical files
//! as fixed-size pages (charging the same [`IoStats`] counters as every
//! other store), records a CRC32 per page at write time, and verifies it on
//! every read. A seed-reproducible [`FaultInjector`] can be armed with a
//! [`FaultPlan`] to corrupt the simulated device four ways:
//!
//! * **transient read errors** — the read attempt fails, a retry may succeed;
//! * **short reads** — the device returns a truncated page (detected by
//!   length, treated as transient);
//! * **bit flips** — one stored bit inverts *persistently* (media decay;
//!   detected by checksum, permanent until rewritten);
//! * **torn writes** — only a prefix of the page reaches the device while
//!   the checksum of the intended bytes is recorded (detected on the next
//!   read, permanent until rewritten).
//!
//! Transient faults are retried with bounded exponential backoff
//! ([`RetryPolicy`]); the simulated backoff time is *accumulated* in
//! [`FaultStats::backoff_us`] rather than slept, keeping chaos tests fast
//! and deterministic. Permanent corruption surfaces as
//! [`Error::ChecksumMismatch`]; a fault that outlives every retry surfaces
//! as [`Error::RetriesExhausted`]. Nothing is ever served unverified.
//!
//! Reproducing a run: every fault decision is drawn from a single
//! `StdRng::seed_from_u64(plan.seed)` stream, so the same plan armed over
//! the same operation sequence yields byte-identical faults.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use statcube_core::error::{Error, Result};
use statcube_core::trace;

use crate::crc32::crc32;
use crate::io_stats::{IoStats, DEFAULT_PAGE_SIZE};
use crate::verify::{ScrubFailure, ScrubReport};

/// Probabilities (per page operation) of each injected fault, plus the seed
/// that makes a run reproducible.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Seed of the injector's deterministic RNG stream.
    pub seed: u64,
    /// Probability a page read attempt fails transiently.
    pub transient_read: f64,
    /// Probability a page read attempt returns truncated bytes.
    pub short_read: f64,
    /// Probability a page read finds (and persists) a flipped bit.
    pub bit_flip: f64,
    /// Probability a page write tears, persisting only a prefix.
    pub torn_write: f64,
}

impl FaultPlan {
    /// A plan that injects nothing (the fault-free oracle configuration).
    pub fn fault_free(seed: u64) -> Self {
        Self { seed, transient_read: 0.0, short_read: 0.0, bit_flip: 0.0, torn_write: 0.0 }
    }

    /// All four fault kinds at the same `rate`.
    pub fn uniform(seed: u64, rate: f64) -> Self {
        Self { seed, transient_read: rate, short_read: rate, bit_flip: rate, torn_write: rate }
    }

    /// Only recoverable faults (transient errors and short reads) at `rate`.
    pub fn transient_only(seed: u64, rate: f64) -> Self {
        Self { seed, transient_read: rate, short_read: rate, bit_flip: 0.0, torn_write: 0.0 }
    }

    /// Only permanent corruption (bit flips) at `rate`.
    pub fn bit_flips_only(seed: u64, rate: f64) -> Self {
        Self { seed, transient_read: 0.0, short_read: 0.0, bit_flip: rate, torn_write: 0.0 }
    }
}

/// What the injector decided for one read attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ReadFault {
    None,
    Transient,
    Short,
    /// Persistently flip this bit offset (mod page bits) before serving.
    Flip(u64),
}

/// Deterministic, seeded source of fault decisions.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    rng: StdRng,
}

impl FaultInjector {
    /// Builds an injector whose decision stream is fixed by `plan.seed`.
    pub fn new(plan: FaultPlan) -> Self {
        Self { plan, rng: StdRng::seed_from_u64(plan.seed) }
    }

    /// The plan this injector was built from.
    pub fn plan(&self) -> FaultPlan {
        self.plan
    }

    fn roll(&mut self, p: f64) -> bool {
        // Always consume one draw so the stream position is independent of
        // the rates — two plans with the same seed fault the same ops.
        let hit = self.rng.random_bool(p.clamp(0.0, 1.0));
        p > 0.0 && hit
    }

    fn on_read(&mut self, page_bits: u64) -> ReadFault {
        if self.roll(self.plan.transient_read) {
            return ReadFault::Transient;
        }
        if self.roll(self.plan.short_read) {
            return ReadFault::Short;
        }
        let flip = self.roll(self.plan.bit_flip);
        let bit = self.rng.random_range(0..page_bits.max(1));
        if flip {
            ReadFault::Flip(bit)
        } else {
            ReadFault::None
        }
    }

    fn on_write(&mut self) -> bool {
        self.roll(self.plan.torn_write)
    }

    /// Decides whether a journal append tears, drawing from the same seeded
    /// stream and the same `torn_write` probability as page writes — one
    /// [`FaultPlan`] governs both devices, so the recovery chaos suite
    /// reuses the page-fault plans unchanged.
    pub(crate) fn on_journal_append(&mut self) -> bool {
        self.roll(self.plan.torn_write)
    }
}

/// Bounded exponential backoff for transient read faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total read attempts per page (initial try + retries), ≥ 1.
    pub max_attempts: u32,
    /// Backoff before the first retry, in simulated microseconds.
    pub base_backoff_us: u64,
    /// Ceiling on any single backoff, in simulated microseconds.
    pub max_backoff_us: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self { max_attempts: 4, base_backoff_us: 100, max_backoff_us: 10_000 }
    }
}

impl RetryPolicy {
    /// Backoff after failed attempt number `attempt` (1-based): doubles each
    /// retry, capped at `max_backoff_us`.
    pub fn backoff_us(&self, attempt: u32) -> u64 {
        let factor = 1u64 << attempt.saturating_sub(1).min(63);
        self.base_backoff_us.saturating_mul(factor).min(self.max_backoff_us)
    }
}

/// Counters of injected faults and the retry machinery's work.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Transient read errors encountered.
    pub transient_faults: u64,
    /// Short (truncated) reads encountered.
    pub short_reads: u64,
    /// Bits persistently flipped by the injector.
    pub bit_flips: u64,
    /// Writes that tore.
    pub torn_writes: u64,
    /// Retry attempts made after transient faults.
    pub retries: u64,
    /// Page reads that failed checksum verification.
    pub checksum_failures: u64,
    /// Total simulated backoff, microseconds (accumulated, never slept).
    pub backoff_us: u64,
    /// Write-ahead journal appends that tore (partial record flushed; see
    /// [`crate::wal::DeltaJournal::append`]).
    pub journal_torn_appends: u64,
    /// Torn journal tails truncated away — by the writer rewinding before
    /// its next append or by recovery's truncate-and-continue pass.
    pub journal_truncations: u64,
}

#[derive(Debug, Clone)]
struct PagedFile {
    name: String,
    content_len: usize,
    pages: Vec<Vec<u8>>,
    sums: Vec<u32>,
    /// Invalidation epoch: bumped whenever the stored bytes change under a
    /// caller — overwrite, targeted corruption, a persisted injected bit
    /// flip, or a torn write. Derived results (the cube layer's answer
    /// cache) record the epoch they were computed at and treat a mismatch
    /// as staleness.
    epoch: u64,
}

/// A checksummed, fault-injectable paged store over [`IoStats`] accounting.
///
/// All mutability is interior **and thread-safe**: files live behind an
/// `RwLock` so many reader threads verify pages concurrently (the serving
/// path), while writes — overwrite, corruption, a persisting injected bit
/// flip — take the write lock briefly. Fault counters and the injector sit
/// behind `Mutex`es that the fault-free fast path never touches (one
/// relaxed atomic load checks whether an injector is armed at all).
#[derive(Debug)]
pub struct PageStore {
    io: IoStats,
    retry: RetryPolicy,
    files: RwLock<Vec<PagedFile>>,
    injector: Mutex<Option<FaultInjector>>,
    /// Mirrors `injector.is_some()`; read with one relaxed load per page so
    /// the unarmed hot path skips the injector mutex entirely.
    armed: AtomicBool,
    stats: Mutex<FaultStats>,
}

impl Default for PageStore {
    fn default() -> Self {
        Self::new(DEFAULT_PAGE_SIZE)
    }
}

impl PageStore {
    /// An empty store with the given page size and the default retry policy.
    pub fn new(page_size: usize) -> Self {
        Self {
            io: IoStats::labeled(page_size, "page_store"),
            retry: RetryPolicy::default(),
            files: RwLock::new(Vec::new()),
            injector: Mutex::new(None),
            armed: AtomicBool::new(false),
            stats: Mutex::new(FaultStats::default()),
        }
    }

    /// Read access to the file table; a poisoned lock (a panic elsewhere
    /// while holding it) only ever guards plain data, so recover it.
    fn files_read(&self) -> RwLockReadGuard<'_, Vec<PagedFile>> {
        self.files.read().unwrap_or_else(|p| p.into_inner())
    }

    fn files_write(&self) -> RwLockWriteGuard<'_, Vec<PagedFile>> {
        self.files.write().unwrap_or_else(|p| p.into_inner())
    }

    fn injector_lock(&self) -> MutexGuard<'_, Option<FaultInjector>> {
        self.injector.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Replaces the retry policy (builder style).
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = RetryPolicy { max_attempts: retry.max_attempts.max(1), ..retry };
        self
    }

    /// The store's I/O counters.
    pub fn io(&self) -> &IoStats {
        &self.io
    }

    /// The retry policy in force.
    pub fn retry(&self) -> RetryPolicy {
        self.retry
    }

    /// Fault counters accumulated so far.
    pub fn stats(&self) -> FaultStats {
        *self.stats.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Zeroes the fault counters (the I/O counters reset via [`IoStats`]).
    pub fn reset_stats(&self) {
        *self.stats.lock().unwrap_or_else(|p| p.into_inner()) = FaultStats::default();
    }

    /// Arms fault injection with `plan`; replaces any previous injector.
    pub fn arm(&self, plan: FaultPlan) {
        *self.injector_lock() = Some(FaultInjector::new(plan));
        self.armed.store(true, Ordering::Release);
    }

    /// Disarms fault injection; subsequent I/O is fault-free (existing
    /// persistent corruption remains).
    pub fn disarm(&self) {
        *self.injector_lock() = None;
        self.armed.store(false, Ordering::Release);
    }

    /// Whether a fault injector is currently armed. Callers that cache
    /// decoded pages use this to bypass their caches while faults are live,
    /// so every injected fault actually exercises the I/O path.
    pub fn is_armed(&self) -> bool {
        self.armed.load(Ordering::Acquire)
    }

    /// Number of logical files.
    pub fn file_count(&self) -> usize {
        self.files_read().len()
    }

    /// Content length of file `id` in bytes.
    pub fn file_len(&self, id: usize) -> usize {
        self.files_read()[id].content_len
    }

    /// Number of pages of file `id`.
    pub fn page_count(&self, id: usize) -> u64 {
        self.files_read()[id].pages.len() as u64
    }

    /// The invalidation epoch of file `id` (see [`PagedFile::epoch`]):
    /// changes whenever the stored bytes do — overwrite, targeted
    /// corruption, a persisted injected fault. Cached derivations compare
    /// the epoch they were computed at against this to detect staleness.
    pub fn file_epoch(&self, id: usize) -> u64 {
        self.files_read()[id].epoch
    }

    fn update_stats(&self, f: impl FnOnce(&mut FaultStats)) {
        f(&mut self.stats.lock().unwrap_or_else(|p| p.into_inner()));
    }

    fn store_pages(&self, file: &mut PagedFile, content: &[u8]) {
        let ps = self.io.page_size();
        file.content_len = content.len();
        file.pages.clear();
        file.sums.clear();
        for chunk in content.chunks(ps) {
            // The checksum always covers the *intended* bytes.
            file.sums.push(crc32(chunk));
            let torn = self.armed.load(Ordering::Acquire)
                && self.injector_lock().as_mut().is_some_and(FaultInjector::on_write);
            let mut page = chunk.to_vec();
            if torn && page.len() > 1 {
                // Only a prefix reached the device; the tail reads back as
                // zeroes (or stale bytes on a real disk — zeroes suffice to
                // break the checksum).
                let keep = page.len() / 2;
                for b in &mut page[keep..] {
                    *b = 0;
                }
                self.update_stats(|s| s.torn_writes += 1);
            }
            file.pages.push(page);
        }
        self.io.charge_page_writes(file.pages.len() as u64);
    }

    /// Creates a new logical file holding `content`, returning its id.
    /// Charges one page write per page; torn-write faults apply.
    pub fn create(&self, name: &str, content: &[u8]) -> usize {
        let mut file = PagedFile {
            name: name.to_owned(),
            content_len: 0,
            pages: Vec::new(),
            sums: Vec::new(),
            epoch: 0,
        };
        self.store_pages(&mut file, content);
        let mut files = self.files_write();
        files.push(file);
        files.len() - 1
    }

    /// Rewrites file `id` with fresh content (clears prior corruption;
    /// torn-write faults apply anew). Bumps the file's invalidation epoch.
    pub fn overwrite(&self, id: usize, content: &[u8]) {
        // Page the content outside the file lock (store_pages only touches
        // the injector), then swap it in while holding the write lock.
        let mut staged = PagedFile {
            name: String::new(),
            content_len: 0,
            pages: Vec::new(),
            sums: Vec::new(),
            epoch: 0,
        };
        self.store_pages(&mut staged, content);
        let mut files = self.files_write();
        let file = &mut files[id];
        staged.name = std::mem::take(&mut file.name);
        staged.epoch = file.epoch + 1;
        *file = staged;
    }

    /// Sets file `id`'s invalidation epoch directly. Used when a rebuilt
    /// store replaces another wholesale (incremental delta fold, full
    /// rebuild): the successor's files must *continue* the predecessor's
    /// epoch sequence, or a fresh store restarting at epoch 0 could collide
    /// with cached derivations pinned to the old store's epoch 0 and serve
    /// them stale.
    pub fn set_epoch(&self, id: usize, epoch: u64) {
        self.files_write()[id].epoch = epoch;
    }

    /// Moves the armed fault injector (keeping its RNG stream position) and
    /// copies the accumulated fault counters from `other` into this store,
    /// disarming `other`. Used when a rebuilt store replaces `other`: a
    /// chaos plan armed before the swap keeps injecting — and its counters
    /// keep accumulating — across it, so torn writes land on the
    /// successor's very first seal.
    pub fn transplant_runtime_from(&self, other: &PageStore) {
        let injector = other.injector_lock().take();
        other.armed.store(false, Ordering::Release);
        self.armed.store(injector.is_some(), Ordering::Release);
        *self.injector_lock() = injector;
        *self.stats.lock().unwrap_or_else(|p| p.into_inner()) = other.stats();
    }

    /// Test/chaos hook: deterministically flips one stored bit of file
    /// `id`'s page `page` — the targeted form of the injector's random
    /// bit flips. Bumps the file's invalidation epoch.
    pub fn corrupt_bit(&self, id: usize, page: u64, bit: u64) {
        let mut files = self.files_write();
        let file = &mut files[id];
        let p = &mut file.pages[page as usize];
        if p.is_empty() {
            return;
        }
        let bit = bit % (p.len() as u64 * 8);
        p[(bit / 8) as usize] ^= 1 << (bit % 8);
        file.epoch += 1;
        drop(files);
        self.update_stats(|s| s.bit_flips += 1);
    }

    /// Reads one page with verification and retry; the building block of
    /// [`PageStore::read`].
    fn read_page(&self, id: usize, page: usize) -> Result<Vec<u8>> {
        let object = self.files_read()[id].name.clone();
        for attempt in 1..=self.retry.max_attempts {
            self.io.charge_page_reads(1);
            let fault = if self.armed.load(Ordering::Acquire) {
                let len_bits = {
                    let files = self.files_read();
                    (files[id].pages[page].len() as u64 * 8).max(1)
                };
                self.injector_lock().as_mut().map_or(ReadFault::None, |inj| inj.on_read(len_bits))
            } else {
                ReadFault::None
            };
            match fault {
                ReadFault::Transient | ReadFault::Short => {
                    self.update_stats(|s| match fault {
                        ReadFault::Transient => s.transient_faults += 1,
                        _ => s.short_reads += 1,
                    });
                    if attempt < self.retry.max_attempts {
                        self.update_stats(|s| {
                            s.retries += 1;
                            s.backoff_us += self.retry.backoff_us(attempt);
                        });
                    }
                    continue;
                }
                ReadFault::Flip(bit) => {
                    // Media decay: the flip persists in the stored page, so
                    // the file's invalidation epoch moves too.
                    let mut files = self.files_write();
                    let file = &mut files[id];
                    let p = &mut file.pages[page];
                    if !p.is_empty() {
                        let bit = bit % (p.len() as u64 * 8);
                        p[(bit / 8) as usize] ^= 1 << (bit % 8);
                        file.epoch += 1;
                    }
                    drop(files);
                    self.update_stats(|s| s.bit_flips += 1);
                }
                ReadFault::None => {}
            }
            let files = self.files_read();
            let bytes = &files[id].pages[page];
            if crc32(bytes) != files[id].sums[page] {
                drop(files);
                self.update_stats(|s| s.checksum_failures += 1);
                return Err(Error::ChecksumMismatch { object, page: page as u64 });
            }
            return Ok(bytes.clone());
        }
        Err(Error::RetriesExhausted {
            object,
            page: page as u64,
            attempts: self.retry.max_attempts,
        })
    }

    /// Reads the whole file back, verifying every page (with retry for
    /// transient faults). Returns exactly the bytes passed to
    /// [`PageStore::create`]/[`PageStore::overwrite`] or a typed error.
    pub fn read(&self, id: usize) -> Result<Vec<u8>> {
        let mut sp = trace::span("storage.read");
        let (stats_before, reads_before) = (self.stats(), self.io.pages_read());
        let (n_pages, content_len) = {
            let files = self.files_read();
            (files[id].pages.len(), files[id].content_len)
        };
        let mut out = Vec::with_capacity(content_len);
        let mut failure = None;
        for p in 0..n_pages {
            match self.read_page(id, p) {
                Ok(bytes) => out.extend_from_slice(&bytes),
                Err(e) => {
                    failure = Some(e);
                    break;
                }
            }
        }
        if sp.is_recording() {
            let (after, reads_after) = (self.stats(), self.io.pages_read());
            sp.record("pages", reads_after - reads_before);
            sp.record("retries", after.retries - stats_before.retries);
            sp.record("backoff_us", after.backoff_us - stats_before.backoff_us);
            if let Some(e) = &failure {
                sp.note(format!("error: {e}"));
            }
            trace::counter("storage.reads", 1);
            trace::counter("storage.read_retries", after.retries - stats_before.retries);
            trace::counter(
                "storage.checksum_failures",
                after.checksum_failures - stats_before.checksum_failures,
            );
        }
        match failure {
            Some(e) => Err(e),
            None => Ok(out),
        }
    }

    /// Maintenance pass: re-checksums every page of every file directly
    /// (no fault injection, no retry — scrubbing inspects the medium as it
    /// is), charging one read per page. Reports all failing pages.
    pub fn scrub(&self) -> ScrubReport {
        let mut sp = trace::span("storage.scrub");
        let files = self.files_read();
        let mut report = ScrubReport::default();
        for file in files.iter() {
            report.objects += 1;
            for (i, page) in file.pages.iter().enumerate() {
                self.io.charge_page_reads(1);
                report.pages_scanned += 1;
                if crc32(page) != file.sums[i] {
                    report
                        .failures
                        .push(ScrubFailure { object: file.name.clone(), page: i as u64 });
                }
            }
        }
        if sp.is_recording() {
            sp.record("pages", report.pages_scanned);
            sp.record("failures", report.failures.len() as u64);
            trace::counter("storage.scrubs", 1);
        }
        report
    }

    /// [`PageStore::scrub`], converted to a typed error on first failure.
    pub fn verify_all(&self) -> Result<ScrubReport> {
        self.scrub().into_result()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_and_io_accounting() {
        let ps = PageStore::new(64);
        let content: Vec<u8> = (0..200).map(|i| i as u8).collect();
        let id = ps.create("f", &content);
        assert_eq!(ps.io().pages_written(), 4); // ceil(200/64)
        assert_eq!(ps.read(id).unwrap(), content);
        assert_eq!(ps.io().pages_read(), 4);
        assert_eq!(ps.file_len(id), 200);
        assert!(ps.scrub().is_clean());
    }

    #[test]
    fn targeted_corruption_detected_and_repairable() {
        let ps = PageStore::new(64);
        let id = ps.create("f", &[7u8; 130]);
        ps.corrupt_bit(id, 2, 5);
        let err = ps.read(id).unwrap_err();
        assert_eq!(err, Error::ChecksumMismatch { object: "f".into(), page: 2 });
        let report = ps.scrub();
        assert_eq!(report.failures.len(), 1);
        assert_eq!(report.failures[0].page, 2);
        // Rewriting heals the file.
        ps.overwrite(id, &[8u8; 130]);
        assert_eq!(ps.read(id).unwrap(), vec![8u8; 130]);
        assert!(ps.verify_all().is_ok());
    }

    #[test]
    fn transient_faults_retry_to_success() {
        let ps = PageStore::new(64).with_retry(RetryPolicy {
            max_attempts: 8,
            base_backoff_us: 10,
            max_backoff_us: 1000,
        });
        let id = ps.create("f", &[1u8; 1000]);
        ps.arm(FaultPlan::transient_only(42, 0.3));
        let got = ps.read(id).expect("retry should recover a 30% transient rate");
        assert_eq!(got, vec![1u8; 1000]);
        let s = ps.stats();
        assert!(s.transient_faults + s.short_reads > 0, "plan should have fired");
        assert_eq!(s.retries, s.transient_faults + s.short_reads);
        assert!(s.backoff_us > 0);
        assert_eq!(s.bit_flips, 0);
    }

    #[test]
    fn hard_transient_rate_exhausts_retries() {
        let ps = PageStore::new(64).with_retry(RetryPolicy {
            max_attempts: 3,
            base_backoff_us: 10,
            max_backoff_us: 1000,
        });
        let id = ps.create("f", &[1u8; 64]);
        ps.arm(FaultPlan {
            seed: 1,
            transient_read: 1.0,
            short_read: 0.0,
            bit_flip: 0.0,
            torn_write: 0.0,
        });
        match ps.read(id) {
            Err(Error::RetriesExhausted { object, page, attempts }) => {
                assert_eq!(object, "f");
                assert_eq!(page, 0);
                assert_eq!(attempts, 3);
            }
            other => panic!("expected RetriesExhausted, got {other:?}"),
        }
        // Only attempts actually followed by a retry count as retries.
        assert_eq!(ps.stats().retries, 2);
    }

    #[test]
    fn torn_write_breaks_later_read() {
        let ps = PageStore::new(64);
        ps.arm(FaultPlan {
            seed: 9,
            transient_read: 0.0,
            short_read: 0.0,
            bit_flip: 0.0,
            torn_write: 1.0,
        });
        let id = ps.create("f", &[3u8; 100]);
        assert!(ps.stats().torn_writes > 0);
        ps.disarm();
        assert!(matches!(ps.read(id), Err(Error::ChecksumMismatch { .. })));
        assert!(!ps.scrub().is_clean());
    }

    #[test]
    fn bit_flips_are_persistent() {
        let ps = PageStore::new(64);
        let id = ps.create("f", &[5u8; 64]);
        ps.arm(FaultPlan::bit_flips_only(7, 1.0));
        assert!(matches!(ps.read(id), Err(Error::ChecksumMismatch { .. })));
        // Disarm: the flip already landed on the medium, so reads keep
        // failing — corruption is not transient.
        ps.disarm();
        assert!(matches!(ps.read(id), Err(Error::ChecksumMismatch { .. })));
    }

    #[test]
    fn same_seed_same_faults() {
        let run = |seed: u64| {
            let ps = PageStore::new(32);
            let id = ps.create("f", &[1u8; 500]);
            ps.arm(FaultPlan::uniform(seed, 0.2));
            let res = ps.read(id).map_err(|e| e.to_string());
            (res, ps.stats())
        };
        assert_eq!(run(123), run(123));
        // Across a spread of seeds the fault patterns must not all agree.
        let baseline = run(123);
        assert!((0..8).any(|s| run(s) != baseline), "every seed produced identical faults");
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let p = RetryPolicy { max_attempts: 10, base_backoff_us: 100, max_backoff_us: 1500 };
        assert_eq!(p.backoff_us(1), 100);
        assert_eq!(p.backoff_us(2), 200);
        assert_eq!(p.backoff_us(3), 400);
        assert_eq!(p.backoff_us(5), 1500); // capped
        assert_eq!(p.backoff_us(63), 1500); // shift saturates, still capped
    }

    #[test]
    fn epochs_track_every_mutation_path() {
        let ps = PageStore::new(64);
        let id = ps.create("f", &[9u8; 200]);
        assert_eq!(ps.file_epoch(id), 0);
        // Overwrite bumps.
        ps.overwrite(id, &[1u8; 200]);
        assert_eq!(ps.file_epoch(id), 1);
        // Targeted corruption bumps.
        ps.corrupt_bit(id, 0, 3);
        assert_eq!(ps.file_epoch(id), 2);
        // A persisted injected bit flip bumps (read fails, epoch moves).
        ps.overwrite(id, &[2u8; 200]);
        assert_eq!(ps.file_epoch(id), 3);
        ps.arm(FaultPlan::bit_flips_only(3, 1.0));
        assert!(ps.read(id).is_err());
        ps.disarm();
        assert!(ps.file_epoch(id) > 3);
        // Clean reads never bump.
        ps.overwrite(id, &[4u8; 200]);
        let e = ps.file_epoch(id);
        let _ = ps.read(id);
        let _ = ps.scrub();
        assert_eq!(ps.file_epoch(id), e);
    }

    #[test]
    fn concurrent_readers_verify_against_one_store() {
        // The store is Sync: many threads read (and fail on corruption)
        // concurrently with consistent counters.
        let ps = PageStore::new(64);
        let good = ps.create("good", &[7u8; 500]);
        let bad = ps.create("bad", &[8u8; 500]);
        ps.corrupt_bit(bad, 3, 11);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..50 {
                        assert_eq!(ps.read(good).unwrap(), vec![7u8; 500]);
                        assert!(matches!(ps.read(bad), Err(Error::ChecksumMismatch { .. })));
                    }
                });
            }
        });
        assert_eq!(ps.stats().checksum_failures, 8 * 50);
        // 8 pages per clean read, 4 pages before the bad one fails.
        assert_eq!(ps.io().pages_read(), 8 * 50 * (8 + 4));
    }

    #[test]
    fn empty_file_reads_empty() {
        let ps = PageStore::new(64);
        let id = ps.create("empty", &[]);
        assert_eq!(ps.page_count(id), 0);
        assert_eq!(ps.read(id).unwrap(), Vec::<u8>::new());
        assert!(ps.scrub().is_clean());
    }
}
