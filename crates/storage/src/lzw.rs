//! LZW compression (§6.2: "Other compression methods can be used as well,
//! such as the well known LZW method. The most effective method depends on
//! the distribution of nulls.")
//!
//! A from-scratch byte-oriented LZW with 12-bit codes and dictionary reset,
//! used as the alternative codec header compression is compared against in
//! experiment E14: LZW exploits *any* repetition, while [EOA81]'s header
//! compression exploits the specific null-run structure **and** keeps
//! random access — the trade the paper points at.

use statcube_core::error::{Error, Result};

const MAX_CODE_BITS: u32 = 12;
const MAX_DICT: usize = 1 << MAX_CODE_BITS;
const RESET_CODE: u32 = 256;
const FIRST_FREE: u32 = 257;

struct BitWriter {
    out: Vec<u8>,
    acc: u64,
    bits: u32,
}

impl BitWriter {
    fn new() -> Self {
        Self { out: Vec::new(), acc: 0, bits: 0 }
    }

    fn write(&mut self, code: u32, width: u32) {
        self.acc |= (code as u64) << self.bits;
        self.bits += width;
        while self.bits >= 8 {
            self.out.push((self.acc & 0xFF) as u8);
            self.acc >>= 8;
            self.bits -= 8;
        }
    }

    fn finish(mut self) -> Vec<u8> {
        if self.bits > 0 {
            self.out.push((self.acc & 0xFF) as u8);
        }
        self.out
    }
}

struct BitReader<'a> {
    data: &'a [u8],
    pos: usize,
    acc: u64,
    bits: u32,
}

impl<'a> BitReader<'a> {
    fn new(data: &'a [u8]) -> Self {
        Self { data, pos: 0, acc: 0, bits: 0 }
    }

    fn read(&mut self, width: u32) -> Option<u32> {
        while self.bits < width {
            let byte = *self.data.get(self.pos)?;
            self.pos += 1;
            self.acc |= (byte as u64) << self.bits;
            self.bits += 8;
        }
        let code = (self.acc & ((1u64 << width) - 1)) as u32;
        self.acc >>= width;
        self.bits -= width;
        Some(code)
    }
}

/// Compresses `input` with LZW (12-bit codes, dictionary reset on
/// overflow).
pub fn compress(input: &[u8]) -> Vec<u8> {
    use std::collections::HashMap;
    let mut writer = BitWriter::new();
    if input.is_empty() {
        return writer.finish();
    }
    let mut dict: HashMap<Vec<u8>, u32> = HashMap::new();
    let mut next_code = FIRST_FREE;
    let mut width = 9u32;
    let mut current: Vec<u8> = vec![input[0]];
    for &b in &input[1..] {
        let mut candidate = current.clone();
        candidate.push(b);
        let known = candidate.len() == 1 || dict.contains_key(&candidate);
        if known {
            current = candidate;
        } else {
            let code = if current.len() == 1 { current[0] as u32 } else { dict[&current] };
            writer.write(code, width);
            if next_code < MAX_DICT as u32 {
                dict.insert(candidate, next_code);
                next_code += 1;
                if next_code.is_power_of_two() && width < MAX_CODE_BITS {
                    width += 1;
                }
            } else {
                writer.write(RESET_CODE, width);
                dict.clear();
                next_code = FIRST_FREE;
                width = 9;
            }
            current = vec![b];
        }
    }
    let code = if current.len() == 1 { current[0] as u32 } else { dict[&current] };
    writer.write(code, width);
    writer.finish()
}

/// Decompresses LZW output produced by [`compress`].
pub fn decompress(data: &[u8]) -> Result<Vec<u8>> {
    let mut reader = BitReader::new(data);
    let mut out = Vec::new();
    'outer: loop {
        // (Re)initialize the dictionary.
        let mut dict: Vec<Vec<u8>> = (0..=255u8).map(|b| vec![b]).collect();
        dict.push(Vec::new()); // 256 = reset placeholder
        let mut width = 9u32;
        let mut prev: Vec<u8> = match reader.read(width) {
            None => break,
            Some(RESET_CODE) => continue,
            Some(code) if (code as usize) < 256 => vec![code as u8],
            Some(code) => return Err(Error::InvalidSchema(format!("bad initial LZW code {code}"))),
        };
        out.extend_from_slice(&prev);
        loop {
            // Width grows when the *encoder's* next_code crosses a power of
            // two; the decoder's dictionary runs one entry behind.
            if (dict.len() as u32 + 1).is_power_of_two() && width < MAX_CODE_BITS {
                width += 1;
            }
            let code = match reader.read(width) {
                None => break 'outer,
                Some(c) => c,
            };
            if code == RESET_CODE {
                continue 'outer;
            }
            let entry = if (code as usize) < dict.len() {
                dict[code as usize].clone()
            } else if code as usize == dict.len() {
                // The cSc corner case.
                let mut e = prev.clone();
                e.push(prev[0]);
                e
            } else {
                return Err(Error::InvalidSchema(format!("bad LZW code {code}")));
            };
            out.extend_from_slice(&entry);
            let mut new_entry = prev.clone();
            new_entry.push(entry[0]);
            if dict.len() < MAX_DICT {
                dict.push(new_entry);
            }
            prev = entry;
        }
    }
    Ok(out)
}

/// Compression ratio of `input` under LZW (> 1 means smaller).
pub fn compression_ratio(input: &[u8]) -> f64 {
    if input.is_empty() {
        return 1.0;
    }
    input.len() as f64 / compress(input).len().max(1) as f64
}

/// Serializes a dense `f64` sequence (NaN = null) to bytes for LZW — the
/// E14 comparison path.
pub fn dense_to_bytes(dense: &[f64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(dense.len() * 8);
    for v in dense {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(data: &[u8]) {
        let compressed = compress(data);
        let back = decompress(&compressed).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn round_trips_basic_patterns() {
        round_trip(b"");
        round_trip(b"a");
        round_trip(b"TOBEORNOTTOBEORTOBEORNOT");
        round_trip(b"aaaaaaaaaaaaaaaaaaaaaaaaaaaa");
        round_trip(&[0u8; 10_000]);
        let all: Vec<u8> = (0..=255u8).collect();
        round_trip(&all);
    }

    #[test]
    fn round_trips_the_csc_corner_case() {
        // "ababab…" forces the code-equals-dict-len case.
        let s: Vec<u8> = std::iter::repeat_n(*b"ab", 100).flatten().collect();
        round_trip(&s);
        round_trip(b"aaabbbaaabbbaaa");
    }

    #[test]
    fn round_trips_long_skewed_data() {
        // Pseudo-random but skewed bytes, long enough to force dictionary
        // resets (> 4096 entries).
        let mut x = 1u64;
        let data: Vec<u8> = (0..200_000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                if x % 10 < 7 {
                    0
                } else {
                    (x % 251) as u8
                }
            })
            .collect();
        round_trip(&data);
    }

    #[test]
    fn compresses_nulls_well_but_not_noise() {
        let zeros = vec![0u8; 100_000];
        assert!(compression_ratio(&zeros) > 20.0);
        let mut x = 7u64;
        let noise: Vec<u8> = (0..100_000)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                (x >> 33) as u8
            })
            .collect();
        assert!(compression_ratio(&noise) < 1.2);
    }

    #[test]
    fn sparse_dense_sequences_compress() {
        let mut dense = vec![f64::NAN; 10_000];
        for i in (0..10_000).step_by(100) {
            dense[i] = i as f64;
        }
        let bytes = dense_to_bytes(&dense);
        assert_eq!(bytes.len(), 80_000);
        assert!(compression_ratio(&bytes) > 3.0);
    }

    #[test]
    fn rejects_garbage() {
        // A stream starting with a non-literal code is invalid.
        let mut w = BitWriter::new();
        w.write(300, 9);
        assert!(decompress(&w.finish()).is_err());
    }
}
