//! A B+tree over `u64` keys.
//!
//! Used where the paper's structures call for one: searching the
//! accumulated run-length *header* of \[EOA81\] header compression
//! ([`crate::header`]) and indexing the segments of \[RZ86\] extendible
//! arrays ([`crate::extendible`]). Leaves are doubly linked for ordered
//! scans; [`BPlusTree::height`] is the page-probe cost a disk-resident tree
//! would pay per lookup.

const MAX_KEYS: usize = 32;

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        keys: Vec<u64>,
        vals: Vec<u64>,
        next: Option<usize>,
        prev: Option<usize>,
    },
    Internal {
        /// `keys[i]` separates `children[i]` (< key) from `children[i+1]`
        /// (≥ key).
        keys: Vec<u64>,
        children: Vec<usize>,
    },
}

/// An in-memory B+tree mapping `u64` → `u64`.
#[derive(Debug, Clone)]
pub struct BPlusTree {
    nodes: Vec<Node>,
    root: usize,
    len: usize,
    height: usize,
}

impl Default for BPlusTree {
    fn default() -> Self {
        Self::new()
    }
}

impl BPlusTree {
    /// An empty tree.
    pub fn new() -> Self {
        Self {
            nodes: vec![Node::Leaf { keys: Vec::new(), vals: Vec::new(), next: None, prev: None }],
            root: 0,
            len: 0,
            height: 1,
        }
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no entry is stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Tree height in nodes (root to leaf) — the per-lookup page cost.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Number of nodes (the tree's page footprint).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    fn find_leaf(&self, key: u64) -> usize {
        let mut idx = self.root;
        loop {
            match &self.nodes[idx] {
                Node::Leaf { .. } => return idx,
                Node::Internal { keys, children } => {
                    let pos = keys.partition_point(|&k| k <= key);
                    idx = children[pos];
                }
            }
        }
    }

    /// Inserts or replaces `key → val`.
    pub fn insert(&mut self, key: u64, val: u64) {
        if let Some((sep, right)) = self.insert_rec(self.root, key, val) {
            let new_root = self.nodes.len();
            self.nodes.push(Node::Internal { keys: vec![sep], children: vec![self.root, right] });
            self.root = new_root;
            self.height += 1;
        }
    }

    fn insert_rec(&mut self, idx: usize, key: u64, val: u64) -> Option<(u64, usize)> {
        match &mut self.nodes[idx] {
            Node::Leaf { keys, vals, .. } => {
                match keys.binary_search(&key) {
                    Ok(pos) => {
                        vals[pos] = val;
                        return None;
                    }
                    Err(pos) => {
                        keys.insert(pos, key);
                        vals.insert(pos, val);
                        self.len += 1;
                    }
                }
                if let Node::Leaf { keys, .. } = &self.nodes[idx] {
                    if keys.len() <= MAX_KEYS {
                        return None;
                    }
                }
                Some(self.split_leaf(idx))
            }
            Node::Internal { keys, children } => {
                let pos = keys.partition_point(|&k| k <= key);
                let child = children[pos];
                let split = self.insert_rec(child, key, val)?;
                let (sep, right) = split;
                if let Node::Internal { keys, children } = &mut self.nodes[idx] {
                    let pos = keys.partition_point(|&k| k <= sep);
                    keys.insert(pos, sep);
                    children.insert(pos + 1, right);
                    if keys.len() <= MAX_KEYS {
                        return None;
                    }
                }
                Some(self.split_internal(idx))
            }
        }
    }

    fn split_leaf(&mut self, idx: usize) -> (u64, usize) {
        let right_idx = self.nodes.len();
        let (sep, right_node, old_next) = {
            let Node::Leaf { keys, vals, next, .. } = &mut self.nodes[idx] else { unreachable!() };
            let mid = keys.len() / 2;
            let rkeys: Vec<u64> = keys.split_off(mid);
            let rvals: Vec<u64> = vals.split_off(mid);
            let sep = rkeys[0];
            let old_next = *next;
            *next = Some(right_idx);
            (
                sep,
                Node::Leaf { keys: rkeys, vals: rvals, next: old_next, prev: Some(idx) },
                old_next,
            )
        };
        self.nodes.push(right_node);
        if let Some(n) = old_next {
            if let Node::Leaf { prev, .. } = &mut self.nodes[n] {
                *prev = Some(right_idx);
            }
        }
        (sep, right_idx)
    }

    fn split_internal(&mut self, idx: usize) -> (u64, usize) {
        let right_idx = self.nodes.len();
        let (sep, right_node) = {
            let Node::Internal { keys, children } = &mut self.nodes[idx] else { unreachable!() };
            let mid = keys.len() / 2;
            let rkeys: Vec<u64> = keys.split_off(mid + 1);
            // Splits only run on overflowing nodes, so `mid ≥ 1` and a
            // separator always remains after the split-off.
            let Some(sep) = keys.pop() else { unreachable!("split of an underfull internal node") };
            let rchildren: Vec<usize> = children.split_off(mid + 1);
            (sep, Node::Internal { keys: rkeys, children: rchildren })
        };
        self.nodes.push(right_node);
        (sep, right_idx)
    }

    /// Exact lookup.
    pub fn get(&self, key: u64) -> Option<u64> {
        let leaf = self.find_leaf(key);
        let Node::Leaf { keys, vals, .. } = &self.nodes[leaf] else { unreachable!() };
        keys.binary_search(&key).ok().map(|pos| vals[pos])
    }

    /// The greatest entry with key ≤ `key` (predecessor-or-equal) — the
    /// search the accumulated header sequence needs.
    pub fn last_le(&self, key: u64) -> Option<(u64, u64)> {
        let mut leaf = self.find_leaf(key);
        loop {
            let Node::Leaf { keys, vals, prev, .. } = &self.nodes[leaf] else { unreachable!() };
            let pos = keys.partition_point(|&k| k <= key);
            if pos > 0 {
                return Some((keys[pos - 1], vals[pos - 1]));
            }
            leaf = (*prev)?;
        }
    }

    /// The least entry with key ≥ `key` (successor-or-equal).
    pub fn first_ge(&self, key: u64) -> Option<(u64, u64)> {
        let mut leaf = self.find_leaf(key);
        loop {
            let Node::Leaf { keys, vals, next, .. } = &self.nodes[leaf] else { unreachable!() };
            let pos = keys.partition_point(|&k| k < key);
            if pos < keys.len() {
                return Some((keys[pos], vals[pos]));
            }
            leaf = (*next)?;
        }
    }

    /// Iterates entries with keys in `[lo, hi]`, ascending, via the leaf
    /// chain.
    pub fn range(&self, lo: u64, hi: u64) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        if lo > hi {
            return out;
        }
        let mut leaf = Some(self.find_leaf(lo));
        while let Some(l) = leaf {
            let Node::Leaf { keys, vals, next, .. } = &self.nodes[l] else { unreachable!() };
            for (k, v) in keys.iter().zip(vals) {
                if *k > hi {
                    return out;
                }
                if *k >= lo {
                    out.push((*k, *v));
                }
            }
            leaf = *next;
        }
        out
    }

    /// All entries in key order.
    pub fn iter_all(&self) -> Vec<(u64, u64)> {
        self.range(0, u64::MAX)
    }

    /// Draws `k` entries uniformly at random **with replacement** using
    /// acceptance/rejection random descent — the B+tree sampling technique
    /// surveyed in \[OR95\] (§5.6): descend by picking a uniform child at
    /// each level, then accept the reached entry with probability
    /// proportional to the product of fanouts along its path, so entries
    /// under skinny subtrees are not oversampled. No full scan needed.
    pub fn sample(&self, k: usize, seed: u64) -> Vec<(u64, u64)> {
        let mut out = Vec::with_capacity(k);
        if self.is_empty() || k == 0 {
            return out;
        }
        // SplitMix64, to keep the crate dependency-free.
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let max_fanout = (MAX_KEYS + 2) as f64;
        while out.len() < k {
            let mut idx = self.root;
            let mut path_prob = 1.0f64;
            loop {
                match &self.nodes[idx] {
                    Node::Internal { children, .. } => {
                        let c = (next() % children.len() as u64) as usize;
                        path_prob /= children.len() as f64;
                        idx = children[c];
                    }
                    Node::Leaf { keys, vals, .. } => {
                        if keys.is_empty() {
                            break;
                        }
                        let c = (next() % keys.len() as u64) as usize;
                        path_prob /= keys.len() as f64;
                        // Accept with probability (1/maxf)^h / p_e so the
                        // overall per-trial probability of every entry is
                        // the same constant (1/maxf)^h — uniform.
                        let accept = 1.0 / (path_prob * max_fanout.powi(self.height as i32));
                        let u = (next() >> 11) as f64 / (1u64 << 53) as f64;
                        if u < accept.min(1.0) {
                            out.push((keys[c], vals[c]));
                        }
                        break;
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn insert_get_small() {
        let mut t = BPlusTree::new();
        assert!(t.is_empty());
        t.insert(5, 50);
        t.insert(1, 10);
        t.insert(9, 90);
        assert_eq!(t.len(), 3);
        assert_eq!(t.get(5), Some(50));
        assert_eq!(t.get(1), Some(10));
        assert_eq!(t.get(2), None);
    }

    #[test]
    fn overwrite_replaces() {
        let mut t = BPlusTree::new();
        t.insert(7, 1);
        t.insert(7, 2);
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(7), Some(2));
    }

    #[test]
    fn large_sequential_and_random_agree_with_btreemap() {
        let mut t = BPlusTree::new();
        let mut m = BTreeMap::new();
        // Sequential then pseudo-random interleave, forcing many splits.
        for i in 0..5000u64 {
            let k = (i * 2654435761) % 10_000;
            t.insert(k, i);
            m.insert(k, i);
        }
        for i in 0..2000u64 {
            t.insert(i, i + 1);
            m.insert(i, i + 1);
        }
        assert_eq!(t.len(), m.len());
        for k in m.keys() {
            assert_eq!(t.get(*k), m.get(k).copied());
        }
        assert!(t.height() >= 3, "tree should have split: height {}", t.height());
        assert_eq!(t.iter_all(), m.iter().map(|(&k, &v)| (k, v)).collect::<Vec<_>>());
    }

    #[test]
    fn last_le_and_first_ge() {
        let mut t = BPlusTree::new();
        for k in [10u64, 20, 30, 40, 50] {
            t.insert(k, k * 2);
        }
        assert_eq!(t.last_le(35), Some((30, 60)));
        assert_eq!(t.last_le(30), Some((30, 60)));
        assert_eq!(t.last_le(9), None);
        assert_eq!(t.last_le(1000), Some((50, 100)));
        assert_eq!(t.first_ge(35), Some((40, 80)));
        assert_eq!(t.first_ge(40), Some((40, 80)));
        assert_eq!(t.first_ge(51), None);
        assert_eq!(t.first_ge(0), Some((10, 20)));
    }

    #[test]
    fn last_le_crosses_leaf_boundaries() {
        // Dense keys force multi-leaf trees; query keys *between* leaves
        // must walk the prev pointer.
        let mut t = BPlusTree::new();
        for k in (0..1000u64).map(|i| i * 10) {
            t.insert(k, k);
        }
        for probe in [5u64, 995, 4321, 9999] {
            let expected = (probe / 10) * 10;
            assert_eq!(t.last_le(probe), Some((expected, expected)), "probe {probe}");
        }
    }

    #[test]
    fn range_queries() {
        let mut t = BPlusTree::new();
        for k in 0..200u64 {
            t.insert(k * 3, k);
        }
        let r = t.range(10, 40);
        let expected: Vec<(u64, u64)> =
            (0..200u64).map(|k| (k * 3, k)).filter(|&(k, _)| (10..=40).contains(&k)).collect();
        assert_eq!(r, expected);
        assert!(t.range(50, 10).is_empty());
        assert_eq!(t.range(0, u64::MAX).len(), 200);
    }

    #[test]
    fn empty_tree_queries() {
        let t = BPlusTree::new();
        assert_eq!(t.get(1), None);
        assert_eq!(t.last_le(1), None);
        assert_eq!(t.first_ge(1), None);
        assert!(t.range(0, 100).is_empty());
        assert_eq!(t.height(), 1);
    }

    #[test]
    fn sampling_is_roughly_uniform() {
        // A deliberately lopsided tree: sequential inserts leave leaves
        // half-full on one side; rejection sampling must still be uniform.
        let mut t = BPlusTree::new();
        for k in 0..500u64 {
            t.insert(k, k);
        }
        let mut hits = vec![0u32; 500];
        let sample = t.sample(50_000, 99);
        assert_eq!(sample.len(), 50_000);
        for (k, v) in sample {
            assert_eq!(k, v);
            hits[k as usize] += 1;
        }
        // Expected 100 hits each; allow generous statistical slack.
        for (k, &h) in hits.iter().enumerate() {
            assert!((30..=300).contains(&h), "key {k} sampled {h} times");
        }
    }

    #[test]
    fn sampling_edge_cases() {
        let t = BPlusTree::new();
        assert!(t.sample(10, 1).is_empty());
        let mut one = BPlusTree::new();
        one.insert(7, 70);
        let s = one.sample(5, 1);
        assert_eq!(s.len(), 5);
        assert!(s.iter().all(|&e| e == (7, 70)));
        assert!(one.sample(0, 1).is_empty());
        // Determinism under a fixed seed.
        let mut t = BPlusTree::new();
        for k in 0..100u64 {
            t.insert(k * 2, k);
        }
        assert_eq!(t.sample(20, 5), t.sample(20, 5));
        assert_ne!(t.sample(20, 5), t.sample(20, 6));
    }

    #[test]
    fn height_grows_logarithmically() {
        let mut t = BPlusTree::new();
        for k in 0..100_000u64 {
            t.insert(k, k);
        }
        // With 32 keys/node, 100k entries need height ≤ 5.
        assert!(t.height() <= 5, "height {}", t.height());
        assert!(t.node_count() > 3000);
        assert_eq!(t.get(99_999), Some(99_999));
    }
}
