//! Header compression (§6.2, Fig 21, \[EOA81\]).
//!
//! Nulls cluster in the linearized value sequence (whole counties that
//! produce no oil), so: store only the non-null values, run-length encode
//! the alternating value/null runs, **accumulate** the run lengths into a
//! monotone sequence (the *header*), and put a B-tree over it so both
//! mappings are `O(log)`:
//!
//! * logical position → stored value ([`HeaderCompressed::get`]), and
//! * stored (physical) position → logical position
//!   ([`HeaderCompressed::logical_of`]) — the inverse mapping the paper
//!   points out the same structure supports.

use statcube_core::error::{Error, Result};

use crate::btree::BPlusTree;
use crate::io_stats::IoStats;
use crate::verify::{ChecksumManifest, ScrubReport, Scrubbable};

/// One maximal run of consecutive non-null values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Run {
    logical_start: u64,
    physical_start: u64,
    len: u64,
}

/// A header-compressed sparse sequence.
#[derive(Debug, Clone)]
pub struct HeaderCompressed {
    logical_len: usize,
    values: Vec<f64>,
    runs: Vec<Run>,
    /// logical_start → run index.
    by_logical: BPlusTree,
    /// physical_start → run index.
    by_physical: BPlusTree,
}

impl HeaderCompressed {
    /// Compresses a dense sequence where `NaN` marks nulls (the
    /// [`crate::linear::LinearizedArray::dense_values`] convention).
    pub fn from_dense(dense: &[f64]) -> Self {
        let mut values = Vec::new();
        let mut runs: Vec<Run> = Vec::new();
        for (i, &v) in dense.iter().enumerate() {
            if v.is_nan() {
                continue;
            }
            match runs.last_mut() {
                Some(r) if r.logical_start + r.len == i as u64 => r.len += 1,
                _ => runs.push(Run {
                    logical_start: i as u64,
                    physical_start: values.len() as u64,
                    len: 1,
                }),
            }
            values.push(v);
        }
        let mut by_logical = BPlusTree::new();
        let mut by_physical = BPlusTree::new();
        for (i, r) in runs.iter().enumerate() {
            by_logical.insert(r.logical_start, i as u64);
            by_physical.insert(r.physical_start, i as u64);
        }
        Self { logical_len: dense.len(), values, runs, by_logical, by_physical }
    }

    /// Logical (uncompressed) length.
    pub fn logical_len(&self) -> usize {
        self.logical_len
    }

    /// Number of stored (non-null) values.
    pub fn value_count(&self) -> usize {
        self.values.len()
    }

    /// Number of value runs (the header's length).
    pub fn run_count(&self) -> usize {
        self.runs.len()
    }

    /// Forward mapping: the value at logical position `i`, `None` when the
    /// position is a null or out of range.
    pub fn get(&self, i: usize) -> Option<f64> {
        let (_, run_idx) = self.by_logical.last_le(i as u64)?;
        let r = self.runs[run_idx as usize];
        let i = i as u64;
        if i < r.logical_start + r.len {
            Some(self.values[(r.physical_start + (i - r.logical_start)) as usize])
        } else {
            None
        }
    }

    /// Like [`HeaderCompressed::get`], charging `io` for the B-tree probe
    /// (height pages) plus one value page.
    pub fn get_with_io(&self, i: usize, io: &IoStats) -> Option<f64> {
        io.charge_page_reads(self.by_logical.height() as u64);
        let v = self.get(i);
        if v.is_some() {
            io.charge_page_reads(1);
        }
        v
    }

    /// Inverse mapping: the logical position of stored value `p`.
    pub fn logical_of(&self, p: usize) -> Result<usize> {
        if p >= self.values.len() {
            return Err(Error::InvalidSchema(format!("physical position {p} out of range")));
        }
        let (_, run_idx) = self.by_physical.last_le(p as u64).ok_or_else(|| {
            Error::InvalidSchema(format!("physical position {p} not covered by any run"))
        })?;
        let r = self.runs[run_idx as usize];
        Ok((r.logical_start + (p as u64 - r.physical_start)) as usize)
    }

    /// Decompresses to the dense representation (NaN = null).
    pub fn to_dense(&self) -> Vec<f64> {
        let mut out = vec![f64::NAN; self.logical_len];
        for r in &self.runs {
            for k in 0..r.len {
                out[(r.logical_start + k) as usize] = self.values[(r.physical_start + k) as usize];
            }
        }
        out
    }

    /// Stored bytes: values + header entries (two 8-byte accumulated
    /// counters per run, as in Fig 21) + B-tree nodes (counted at one
    /// 16-byte entry per run per tree; interior structure is a small
    /// constant factor we fold into the entry cost).
    pub fn size_bytes(&self) -> usize {
        self.values.len() * 8 + self.runs.len() * 16 + self.runs.len() * 32
    }

    /// Compression ratio vs. the dense 8-byte-per-cell array (> 1 means
    /// smaller).
    pub fn compression_ratio(&self) -> f64 {
        (self.logical_len * 8) as f64 / self.size_bytes().max(1) as f64
    }

    /// Sum over a logical range `[lo, hi)` touching only stored values —
    /// the range-search use the accumulated header enables.
    pub fn range_sum(&self, lo: usize, hi: usize) -> f64 {
        let mut sum = 0.0;
        for r in &self.runs {
            let start = r.logical_start.max(lo as u64);
            let end = (r.logical_start + r.len).min(hi as u64);
            if start >= end {
                continue;
            }
            let p0 = (r.physical_start + (start - r.logical_start)) as usize;
            let p1 = p0 + (end - start) as usize;
            sum += self.values[p0..p1].iter().sum::<f64>();
        }
        sum
    }

    /// Seals the stored values and header runs into a checksum manifest.
    pub fn seal(&self) -> ChecksumManifest {
        ChecksumManifest::seal(self)
    }

    /// Re-checksums values and runs against a seal, reporting failing pages.
    pub fn scrub(&self, seal: &ChecksumManifest) -> ScrubReport {
        seal.scrub(self, None)
    }

    /// [`HeaderCompressed::scrub`], converted to a typed error on the first
    /// failing page.
    pub fn verify_all(&self, seal: &ChecksumManifest) -> Result<ScrubReport> {
        seal.verify_all(self, None)
    }
}

impl Scrubbable for HeaderCompressed {
    fn object_name(&self) -> String {
        format!("HeaderCompressed(len={})", self.logical_len)
    }

    fn content_bytes(&self) -> Vec<u8> {
        // Values plus the header runs: both are load-bearing for every
        // lookup, so both are sealed. The B-trees are derived indexes.
        let mut out = Vec::with_capacity(self.values.len() * 8 + self.runs.len() * 24 + 8);
        out.extend_from_slice(&(self.logical_len as u64).to_le_bytes());
        for v in &self.values {
            out.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        for r in &self.runs {
            out.extend_from_slice(&r.logical_start.to_le_bytes());
            out.extend_from_slice(&r.physical_start.to_le_bytes());
            out.extend_from_slice(&r.len.to_le_bytes());
        }
        out
    }

    fn inject_bitflip(&mut self, bit: u64) {
        crate::verify::flip_f64_bit(&mut self.values, bit);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense_example() -> Vec<f64> {
        // Fig 21's shape: values, nulls, value, long null stretch, values.
        let mut d = vec![30_173.0, 13_457.0, f64::NAN, f64::NAN, 14_362.0, f64::NAN];
        d.extend(std::iter::repeat_n(f64::NAN, 17));
        d.extend([1.0, 2.0, 3.0]);
        d
    }

    #[test]
    fn round_trip() {
        let d = dense_example();
        let h = HeaderCompressed::from_dense(&d);
        let back = h.to_dense();
        assert_eq!(back.len(), d.len());
        for (a, b) in d.iter().zip(&back) {
            assert!(a.is_nan() == b.is_nan());
            if !a.is_nan() {
                assert_eq!(a, b);
            }
        }
    }

    #[test]
    fn forward_mapping() {
        let d = dense_example();
        let h = HeaderCompressed::from_dense(&d);
        assert_eq!(h.run_count(), 3);
        assert_eq!(h.value_count(), 6);
        assert_eq!(h.get(0), Some(30_173.0));
        assert_eq!(h.get(1), Some(13_457.0));
        assert_eq!(h.get(2), None);
        assert_eq!(h.get(4), Some(14_362.0));
        assert_eq!(h.get(10), None);
        assert_eq!(h.get(23), Some(1.0));
        assert_eq!(h.get(25), Some(3.0));
        assert_eq!(h.get(26), None);
        assert_eq!(h.get(9999), None);
    }

    #[test]
    fn inverse_mapping() {
        let d = dense_example();
        let h = HeaderCompressed::from_dense(&d);
        // Physical positions 0..6 map back to logical 0,1,4,23,24,25.
        let expected = [0usize, 1, 4, 23, 24, 25];
        for (p, &l) in expected.iter().enumerate() {
            assert_eq!(h.logical_of(p).unwrap(), l);
            // And forward(inverse(p)) returns the stored value.
            assert_eq!(h.get(l), Some(h.to_dense()[l]));
        }
        assert!(h.logical_of(6).is_err());
    }

    #[test]
    fn all_null_and_all_value_edges() {
        let h = HeaderCompressed::from_dense(&[f64::NAN; 100]);
        assert_eq!(h.value_count(), 0);
        assert_eq!(h.run_count(), 0);
        assert_eq!(h.get(50), None);
        assert!(h.compression_ratio() > 1.0);

        let full: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let h = HeaderCompressed::from_dense(&full);
        assert_eq!(h.run_count(), 1);
        assert_eq!(h.value_count(), 100);
        for i in 0..100 {
            assert_eq!(h.get(i), Some(i as f64));
            assert_eq!(h.logical_of(i).unwrap(), i);
        }
        // Fully dense: compression adds (small) overhead.
        assert!(h.compression_ratio() < 1.1);

        let empty = HeaderCompressed::from_dense(&[]);
        assert_eq!(empty.logical_len(), 0);
        assert_eq!(empty.get(0), None);
    }

    #[test]
    fn compression_grows_with_null_clustering() {
        // 1% density, clustered: huge ratio.
        let mut clustered = vec![f64::NAN; 100_000];
        clustered[..1000].fill(1.0);
        let hc = HeaderCompressed::from_dense(&clustered);
        assert_eq!(hc.run_count(), 1);
        assert!(hc.compression_ratio() > 50.0);

        // Same density, scattered: every value its own run, ratio shrinks.
        let mut scattered = vec![f64::NAN; 100_000];
        for i in 0..1000 {
            scattered[i * 100] = 1.0;
        }
        let hs = HeaderCompressed::from_dense(&scattered);
        assert_eq!(hs.run_count(), 1000);
        assert!(hs.compression_ratio() < hc.compression_ratio());
        assert!(hs.compression_ratio() > 10.0, "still far better than dense");
    }

    #[test]
    fn range_sum_skips_nulls() {
        let d = dense_example();
        let h = HeaderCompressed::from_dense(&d);
        assert_eq!(h.range_sum(0, 2), 30_173.0 + 13_457.0);
        assert_eq!(h.range_sum(2, 4), 0.0);
        assert_eq!(h.range_sum(0, d.len()), d.iter().filter(|v| !v.is_nan()).sum::<f64>());
        assert_eq!(h.range_sum(24, 26), 5.0);
    }

    #[test]
    fn io_charged_per_probe() {
        let mut big = vec![f64::NAN; 1_000_000];
        for i in (0..1_000_000).step_by(1000) {
            big[i] = i as f64;
        }
        let h = HeaderCompressed::from_dense(&big);
        let io = IoStats::new(4096);
        assert_eq!(h.get_with_io(5000, &io), Some(5000.0));
        // B-tree height + 1 value page.
        let probe = io.pages_read();
        assert!((2..=6).contains(&probe), "probe cost {probe}");
        io.reset();
        assert_eq!(h.get_with_io(5001, &io), None);
        assert!(io.pages_read() < probe, "miss skips the value page");
    }
}
