//! Checksum manifests and scrubbing for the physical stores.
//!
//! Every store in this crate ultimately serves aggregates computed from
//! bytes it believes are intact. This module gives each store a way to
//! *prove* that: [`Scrubbable`] exposes a deterministic serialization of the
//! store's logical content, [`ChecksumManifest::seal`] records a per-page
//! CRC32 over it (page size from the I/O layer, [`crate::crc32`]), and
//! [`ChecksumManifest::scrub`] (alias [`ChecksumManifest::verify_all`])
//! re-reads everything and reports any page whose checksum no longer
//! matches. A failed scrub yields [`Error::ChecksumMismatch`] — never a
//! silently wrong value.
//!
//! The `inject_bitflip` hook is the in-memory stand-in for media corruption:
//! chaos tests flip one stored bit and assert the scrub pass catches it.

use statcube_core::error::{Error, Result};

use crate::crc32::crc32;
use crate::io_stats::{IoStats, DEFAULT_PAGE_SIZE};

/// One page that failed checksum verification during a scrub.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScrubFailure {
    /// Name of the object the page belongs to.
    pub object: String,
    /// Zero-based page index within the object's serialized content.
    pub page: u64,
}

/// Outcome of a scrub pass over one or more sealed objects.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScrubReport {
    /// Objects scanned.
    pub objects: usize,
    /// Pages whose checksum was recomputed.
    pub pages_scanned: u64,
    /// Pages that no longer match their sealed checksum.
    pub failures: Vec<ScrubFailure>,
}

impl ScrubReport {
    /// True when every scanned page matched its checksum.
    pub fn is_clean(&self) -> bool {
        self.failures.is_empty()
    }

    /// Folds another report into this one.
    pub fn merge(&mut self, other: ScrubReport) {
        self.objects += other.objects;
        self.pages_scanned += other.pages_scanned;
        self.failures.extend(other.failures);
    }

    /// Converts the report into a typed error on the first failing page.
    pub fn into_result(self) -> Result<ScrubReport> {
        match self.failures.first() {
            Some(f) => Err(Error::ChecksumMismatch { object: f.object.clone(), page: f.page }),
            None => Ok(self),
        }
    }
}

/// A store whose logical content can be sealed and later re-verified.
///
/// `content_bytes` must be deterministic: the same logical state always
/// serializes to the same bytes, so a checksum mismatch means the state
/// changed underneath the seal (corruption), not an encoding artifact.
pub trait Scrubbable {
    /// Stable name used in error messages and scrub reports.
    fn object_name(&self) -> String;

    /// Deterministic serialization of the store's logical content.
    fn content_bytes(&self) -> Vec<u8>;

    /// Fault-injection hook: flips stored bit `bit` (modulo content size)
    /// in the store's *native* representation, so a subsequent
    /// [`Scrubbable::content_bytes`] reflects the corruption. No-op when
    /// the store holds no bytes.
    fn inject_bitflip(&mut self, bit: u64);
}

/// Per-page CRC32 checksums sealed over a [`Scrubbable`]'s content.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChecksumManifest {
    page_size: usize,
    content_len: usize,
    sums: Vec<u32>,
}

impl ChecksumManifest {
    /// Seals `store`'s current content at the default 4 KiB page size.
    pub fn seal<S: Scrubbable + ?Sized>(store: &S) -> Self {
        Self::seal_with_page_size(store, DEFAULT_PAGE_SIZE)
    }

    /// Seals `store`'s current content at an explicit page size.
    pub fn seal_with_page_size<S: Scrubbable + ?Sized>(store: &S, page_size: usize) -> Self {
        let page_size = page_size.max(1);
        let content = store.content_bytes();
        let sums = content.chunks(page_size).map(crc32).collect();
        Self { page_size, content_len: content.len(), sums }
    }

    /// The page size the manifest was sealed at.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Number of sealed pages.
    pub fn page_count(&self) -> u64 {
        self.sums.len() as u64
    }

    /// Re-reads the store and reports every page that fails its checksum,
    /// charging `io` one read per page scanned.
    pub fn scrub<S: Scrubbable + ?Sized>(&self, store: &S, io: Option<&IoStats>) -> ScrubReport {
        let content = store.content_bytes();
        let name = store.object_name();
        let mut report = ScrubReport { objects: 1, pages_scanned: 0, failures: Vec::new() };
        if let Some(io) = io {
            io.charge_page_reads(self.sums.len() as u64);
        }
        if content.len() != self.content_len {
            // Truncated or grown content: every page is suspect; flag page 0.
            report.pages_scanned = self.sums.len() as u64;
            report.failures.push(ScrubFailure { object: name, page: 0 });
            return report;
        }
        for (i, chunk) in content.chunks(self.page_size).enumerate() {
            report.pages_scanned += 1;
            if crc32(chunk) != self.sums[i] {
                report.failures.push(ScrubFailure { object: name.clone(), page: i as u64 });
            }
        }
        report
    }

    /// Scrubs and converts the first failure into a typed error.
    pub fn verify_all<S: Scrubbable + ?Sized>(
        &self,
        store: &S,
        io: Option<&IoStats>,
    ) -> Result<ScrubReport> {
        self.scrub(store, io).into_result()
    }
}

/// Flips one bit inside a `f64` slice, the common native corruption used by
/// the stores' `inject_bitflip` implementations. `bit` indexes the slice's
/// raw bytes little-endian; out-of-range indices wrap.
pub(crate) fn flip_f64_bit(data: &mut [f64], bit: u64) {
    if data.is_empty() {
        return;
    }
    let total_bits = data.len() as u64 * 64;
    let bit = bit % total_bits;
    let idx = (bit / 64) as usize;
    let within = bit % 64;
    data[idx] = f64::from_bits(data[idx].to_bits() ^ (1u64 << within));
}

/// Flips one bit inside a `u32` slice (category codes, foreign keys).
pub(crate) fn flip_u32_bit(data: &mut [u32], bit: u64) {
    if data.is_empty() {
        return;
    }
    let total_bits = data.len() as u64 * 32;
    let bit = bit % total_bits;
    let idx = (bit / 32) as usize;
    let within = bit % 32;
    data[idx] ^= 1u32 << within;
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Blob {
        data: Vec<f64>,
    }

    impl Scrubbable for Blob {
        fn object_name(&self) -> String {
            "blob".into()
        }
        fn content_bytes(&self) -> Vec<u8> {
            self.data.iter().flat_map(|v| v.to_bits().to_le_bytes()).collect()
        }
        fn inject_bitflip(&mut self, bit: u64) {
            flip_f64_bit(&mut self.data, bit);
        }
    }

    #[test]
    fn clean_scrub_passes() {
        let b = Blob { data: (0..2000).map(f64::from).collect() };
        let m = ChecksumManifest::seal(&b);
        assert_eq!(m.page_count(), ((2000 * 8) as usize).div_ceil(4096) as u64);
        let io = IoStats::new(4096);
        let r = m.verify_all(&b, Some(&io)).unwrap();
        assert!(r.is_clean());
        assert_eq!(r.pages_scanned, m.page_count());
        assert_eq!(io.pages_read(), m.page_count());
    }

    #[test]
    fn bitflip_is_caught_and_localized() {
        let mut b = Blob { data: (0..2000).map(f64::from).collect() };
        let m = ChecksumManifest::seal(&b);
        // Flip a bit in the second page (byte 5000 → bit 40_000).
        b.inject_bitflip(40_000);
        let r = m.scrub(&b, None);
        assert_eq!(r.failures.len(), 1);
        assert_eq!(r.failures[0], ScrubFailure { object: "blob".into(), page: 1 });
        let err = m.verify_all(&b, None).unwrap_err();
        assert_eq!(
            err,
            statcube_core::error::Error::ChecksumMismatch { object: "blob".into(), page: 1 }
        );
    }

    #[test]
    fn empty_content_seals_and_scrubs() {
        let b = Blob { data: vec![] };
        let m = ChecksumManifest::seal(&b);
        assert_eq!(m.page_count(), 0);
        assert!(m.scrub(&b, None).is_clean());
    }

    #[test]
    fn length_change_flags_object() {
        let mut b = Blob { data: vec![1.0, 2.0] };
        let m = ChecksumManifest::seal(&b);
        b.data.pop();
        let r = m.scrub(&b, None);
        assert!(!r.is_clean());
    }

    #[test]
    fn flip_helpers_wrap_and_roundtrip() {
        let mut d = vec![0.0f64; 2];
        flip_f64_bit(&mut d, 64); // first bit of second value
        assert_eq!(d[1].to_bits(), 1);
        flip_f64_bit(&mut d, 64 + 128); // wraps to the same bit
        assert_eq!(d[1].to_bits(), 0);
        let mut u = vec![0u32; 3];
        flip_u32_bit(&mut u, 33);
        assert_eq!(u[1], 2);
        flip_f64_bit(&mut [], 5); // no-op on empty
        flip_u32_bit(&mut [], 5);
    }
}
