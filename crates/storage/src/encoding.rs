//! Bit-packed dictionary encoding of category columns (§6.1, Fig 19,
//! \[WL+85\]).
//!
//! Category attributes have few distinct values — sex needs 1 bit, race 3,
//! the 50 states 6 — so instead of 4-byte codes a column stores
//! fixed-width bit codes back to back. [`EncodedColumn`] is that layout;
//! [`crate::bittransposed`] takes it to the extreme of one file per bit.

use statcube_core::error::{Error, Result};

/// A fixed-width bit-packed column of dictionary codes.
#[derive(Debug, Clone, PartialEq)]
pub struct EncodedColumn {
    bits: u32,
    len: usize,
    words: Vec<u64>,
}

impl EncodedColumn {
    /// Packs `codes` at `bits` bits per value. Every code must fit.
    pub fn pack(codes: &[u32], bits: u32) -> Result<Self> {
        if bits == 0 || bits > 32 {
            return Err(Error::InvalidSchema(format!("code width {bits} out of range 1..=32")));
        }
        let limit = if bits == 32 { u32::MAX } else { (1u32 << bits) - 1 };
        let total_bits = codes.len() as u64 * bits as u64;
        let mut words = vec![0u64; (total_bits as usize).div_ceil(64)];
        for (i, &code) in codes.iter().enumerate() {
            if code > limit {
                return Err(Error::InvalidSchema(format!(
                    "code {code} does not fit in {bits} bits"
                )));
            }
            let bit = i as u64 * bits as u64;
            let word = (bit / 64) as usize;
            let off = (bit % 64) as u32;
            words[word] |= (code as u64) << off;
            if off + bits > 64 {
                words[word + 1] |= (code as u64) >> (64 - off);
            }
        }
        Ok(Self { bits, len: codes.len(), words })
    }

    /// Code width in bits.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Number of values.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads the value at `i`.
    pub fn get(&self, i: usize) -> Option<u32> {
        if i >= self.len {
            return None;
        }
        let bit = i as u64 * self.bits as u64;
        let word = (bit / 64) as usize;
        let off = (bit % 64) as u32;
        let mask = if self.bits == 32 { u32::MAX as u64 } else { (1u64 << self.bits) - 1 };
        let mut v = self.words[word] >> off;
        if off + self.bits > 64 {
            v |= self.words[word + 1] << (64 - off);
        }
        Some((v & mask) as u32)
    }

    /// Unpacks the whole column.
    pub fn unpack(&self) -> Vec<u32> {
        // `get` is `Some` for every `i < len`, so this is the identity
        // range; `filter_map` keeps the bound panic-free.
        (0..self.len).filter_map(|i| self.get(i)).collect()
    }

    /// Stored bytes.
    pub fn size_bytes(&self) -> usize {
        self.words.len() * 8
    }

    /// Iterates values in order.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        (0..self.len).filter_map(|i| self.get(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_round_trip() {
        let codes: Vec<u32> = (0..1000).map(|i| (i * 7) % 50).collect();
        for bits in [6, 7, 13, 32] {
            let col = EncodedColumn::pack(&codes, bits).unwrap();
            assert_eq!(col.unpack(), codes, "width {bits}");
            assert_eq!(col.len(), 1000);
        }
    }

    #[test]
    fn sizes_shrink_with_width() {
        let codes: Vec<u32> = (0..8192).map(|i| i % 2).collect();
        let one_bit = EncodedColumn::pack(&codes, 1).unwrap();
        let six_bit = EncodedColumn::pack(&codes, 6).unwrap();
        // 8192 × 1 bit = 1 KiB; raw u32 storage would be 32 KiB.
        assert_eq!(one_bit.size_bytes(), 1024);
        assert_eq!(six_bit.size_bytes(), 8192 * 6 / 8);
        assert!(one_bit.size_bytes() * 30 < codes.len() * 4);
    }

    #[test]
    fn values_spanning_word_boundaries() {
        // Width 13 guarantees many values straddle u64 boundaries.
        let codes: Vec<u32> = (0..500).map(|i| (i * 2654435761u64 % 8191) as u32).collect();
        let col = EncodedColumn::pack(&codes, 13).unwrap();
        for (i, &c) in codes.iter().enumerate() {
            assert_eq!(col.get(i), Some(c));
        }
        assert_eq!(col.get(500), None);
    }

    #[test]
    fn rejects_overflow_and_bad_width() {
        assert!(EncodedColumn::pack(&[8], 3).is_err());
        assert!(EncodedColumn::pack(&[0], 0).is_err());
        assert!(EncodedColumn::pack(&[0], 33).is_err());
        assert!(EncodedColumn::pack(&[7], 3).is_ok());
    }

    #[test]
    fn empty_column() {
        let col = EncodedColumn::pack(&[], 4).unwrap();
        assert!(col.is_empty());
        assert_eq!(col.size_bytes(), 0);
        assert_eq!(col.get(0), None);
    }

    #[test]
    fn iter_matches_get() {
        let codes = vec![1, 2, 3, 4, 5];
        let col = EncodedColumn::pack(&codes, 3).unwrap();
        let collected: Vec<u32> = col.iter().collect();
        assert_eq!(collected, codes);
    }
}
