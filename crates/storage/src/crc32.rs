//! In-tree CRC32 (IEEE 802.3 polynomial), the per-page checksum of the
//! fault-tolerant page layer.
//!
//! Kept vendored-in-tree like everything else in this workspace (no external
//! crates): a 256-entry table built at first use via `OnceLock`, the standard
//! reflected algorithm with polynomial `0xEDB88320`, init `0xFFFF_FFFF`, and
//! final XOR. Verified against the canonical `"123456789"` → `0xCBF43926`
//! check value.

use std::sync::OnceLock;

static TABLE: OnceLock<[u32; 256]> = OnceLock::new();

fn table() -> &'static [u32; 256] {
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, e) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            }
            *e = c;
        }
        t
    })
}

/// CRC32 (IEEE) of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    crc32_update(0xFFFF_FFFF, data) ^ 0xFFFF_FFFF
}

/// Streaming form: feeds `data` into a running (pre-inverted) CRC state.
///
/// Start from `0xFFFF_FFFF`, feed chunks, XOR with `0xFFFF_FFFF` at the end;
/// [`crc32`] is the one-shot wrapper.
pub fn crc32_update(mut state: u32, data: &[u8]) -> u32 {
    let t = table();
    for &b in data {
        state = t[((state ^ u32::from(b)) & 0xFF) as usize] ^ (state >> 8);
    }
    state
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_value() {
        // The canonical CRC-32/ISO-HDLC check vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn streaming_matches_one_shot() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let mut state = 0xFFFF_FFFF;
        for chunk in data.chunks(7) {
            state = crc32_update(state, chunk);
        }
        assert_eq!(state ^ 0xFFFF_FFFF, crc32(data));
    }

    #[test]
    fn single_bit_flips_always_detected() {
        // CRC32 detects every single-bit error; the fault injector's bit
        // flips therefore can never slip through verification.
        let base = vec![0xA5u8; 256];
        let sum = crc32(&base);
        for byte in 0..base.len() {
            for bit in 0..8 {
                let mut flipped = base.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), sum, "flip at byte {byte} bit {bit} undetected");
            }
        }
    }
}
