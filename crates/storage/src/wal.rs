//! The write-ahead delta journal: crash-consistent durability under
//! incremental cube maintenance.
//!
//! PR 6's fold pipeline is purely in-memory — a process crash between the
//! writer's `snapshot()` and the publish pointer-swap silently drops every
//! batch since the last seal. This module supplies the missing durability
//! contract: *every acknowledged delta is either fully recoverable or was
//! never acknowledged*. Three pieces:
//!
//! * [`DeltaJournal`] — an append-only, length-prefixed, CRC32-checksummed
//!   record log ([`crate::crc32`] supplies the checksum, the same one the
//!   page store uses). Every record carries a monotonic sequence number and
//!   the store epoch (publication generation) it belongs to, so replay is
//!   idempotent: a duplicated tail re-presents already-applied sequence
//!   numbers and recovery skips them.
//! * **Torn-tail detection.** A record is only accepted by the decoder when
//!   its header CRC, payload length, *and* payload CRC all verify; the first
//!   byte that fails any of these marks the torn tail, and recovery
//!   truncates there and continues ([`DeltaJournal::recover_records`]).
//!   Torn *appends* are injectable under the same seeded [`FaultPlan`]s as
//!   page I/O: an armed injector's `torn_write` probability governs journal
//!   appends too, flushing only a prefix of the record and surfacing
//!   [`Error::JournalTornAppend`] — the writer must treat that delta as
//!   never acknowledged.
//! * [`ManifestCell`] — the atomically-swapped commit-point manifest. A
//!   [`Manifest`] records the last durable (sealed snapshot epoch, journal
//!   offset) pair plus the last commit-stamped sequence number. The cell
//!   models the write-temp-file-then-rename idiom: an installation replaces
//!   the whole CRC-stamped image or none of it — there is no observable
//!   intermediate state, by construction.
//!
//! **What is and is not fsync'd here.** This is a reproduction over a
//! simulated device: an "append-and-sync" is a byte extension of the
//! in-memory journal image, and crash = the writer thread panicking at an
//! armed [`CrashPoint`] (or a torn append). The *protocol* — append before
//! fold, commit-stamp after publish, manifest swap last, truncate-and-replay
//! on recovery — is the real one; the missing piece on real hardware is an
//! `fsync` barrier after the delta append and after the manifest rename.
//!
//! [`CrashInjector`] extends the seeded-fault-plan pattern to process
//! death: arm one [`CrashPoint`] and the write path panics exactly once at
//! that step, which the recovery chaos suite catches, then recovers from
//! the surviving journal + manifest and checks the store is bit-for-bit
//! pre-delta or post-delta — never a hybrid.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard};

use statcube_core::error::{Error, Result};

use crate::crc32::crc32;
use crate::io_stats::{IoStats, DEFAULT_PAGE_SIZE};
use crate::page_store::{FaultInjector, FaultPlan, FaultStats};

/// Fixed-size record header: `len(u32) | kind(u8) | seq(u64) | epoch(u64) |
/// payload_crc(u32) | header_crc(u32)`.
pub const RECORD_HEADER_BYTES: usize = 4 + 1 + 8 + 8 + 4 + 4;

/// Panic message prefix of an injected crash; the chaos suite uses it to
/// tell injected process death apart from genuine bugs.
pub const CRASH_PANIC_PREFIX: &str = "crash injected at ";

/// What a journal record carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordKind {
    /// A full sealed-store image (cards, base rows, every materialized
    /// view); replay restarts from the latest one.
    Snapshot,
    /// One validated delta batch, appended *before* the fold runs.
    Delta,
    /// The commit stamp for an already-applied delta (payload = the delta
    /// record's sequence number); written *after* publication.
    Commit,
}

impl RecordKind {
    fn to_byte(self) -> u8 {
        match self {
            RecordKind::Snapshot => 1,
            RecordKind::Delta => 2,
            RecordKind::Commit => 3,
        }
    }

    fn from_byte(b: u8) -> Option<Self> {
        match b {
            1 => Some(RecordKind::Snapshot),
            2 => Some(RecordKind::Delta),
            3 => Some(RecordKind::Commit),
            _ => None,
        }
    }
}

/// One decoded journal record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalRecord {
    /// Record type.
    pub kind: RecordKind,
    /// Monotonic sequence number (unique per journal; replay idempotence
    /// key).
    pub seq: u64,
    /// The store epoch (publication generation) the record is tied to: for
    /// a `Delta`, the generation its fold will publish; for `Snapshot` /
    /// `Commit`, the generation already published.
    pub epoch: u64,
    /// Opaque payload (the cube layer owns the codecs).
    pub payload: Vec<u8>,
    /// Byte offset of this record's header in the journal.
    pub offset: u64,
}

/// Where an append landed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AppendInfo {
    /// Sequence number assigned to the record.
    pub seq: u64,
    /// Byte offset of the record's header.
    pub offset: u64,
    /// Byte offset just past the record (the journal length after the
    /// append).
    pub end_offset: u64,
}

/// What the decoder found past the last intact record.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TailReport {
    /// Journal length that decodes cleanly; everything past it is torn.
    pub valid_len: u64,
    /// Bytes past `valid_len` (0 on a clean journal).
    pub torn_bytes: u64,
}

fn encode_record(kind: RecordKind, seq: u64, epoch: u64, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(RECORD_HEADER_BYTES + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.push(kind.to_byte());
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(&epoch.to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    let header_crc = crc32(&out);
    out.extend_from_slice(&header_crc.to_le_bytes());
    out.extend_from_slice(payload);
    out
}

fn read_u32(bytes: &[u8], at: usize) -> Option<u32> {
    bytes.get(at..at + 4).and_then(|s| s.try_into().ok()).map(u32::from_le_bytes)
}

fn read_u64(bytes: &[u8], at: usize) -> Option<u64> {
    bytes.get(at..at + 8).and_then(|s| s.try_into().ok()).map(u64::from_le_bytes)
}

/// Decodes one record starting at `at`, or `None` if the bytes there are
/// torn (insufficient, header CRC mismatch, unknown kind, truncated or
/// corrupt payload).
fn decode_record(bytes: &[u8], at: usize) -> Option<JournalRecord> {
    if bytes.len() < at + RECORD_HEADER_BYTES {
        return None;
    }
    let header = &bytes[at..at + RECORD_HEADER_BYTES];
    let stored_header_crc = read_u32(header, RECORD_HEADER_BYTES - 4)?;
    if crc32(&header[..RECORD_HEADER_BYTES - 4]) != stored_header_crc {
        return None;
    }
    let len = read_u32(header, 0)? as usize;
    let kind = RecordKind::from_byte(header[4])?;
    let seq = read_u64(header, 5)?;
    let epoch = read_u64(header, 13)?;
    let payload_crc = read_u32(header, 21)?;
    let payload = bytes.get(at + RECORD_HEADER_BYTES..at + RECORD_HEADER_BYTES + len)?;
    if crc32(payload) != payload_crc {
        return None;
    }
    Some(JournalRecord { kind, seq, epoch, payload: payload.to_vec(), offset: at as u64 })
}

/// Decodes every intact record from the front of `bytes`, stopping at the
/// first torn byte. Pure function of the image — the WAL fuzz suite drives
/// it with garbage, truncations, bit flips, and duplicated tails.
pub fn decode_records(bytes: &[u8]) -> (Vec<JournalRecord>, TailReport) {
    let mut records = Vec::new();
    let mut at = 0usize;
    while at < bytes.len() {
        match decode_record(bytes, at) {
            Some(rec) => {
                at += RECORD_HEADER_BYTES + rec.payload.len();
                records.push(rec);
            }
            None => break,
        }
    }
    let report = TailReport { valid_len: at as u64, torn_bytes: (bytes.len() - at) as u64 };
    (records, report)
}

#[derive(Debug, Default)]
struct JournalState {
    bytes: Vec<u8>,
    next_seq: u64,
    /// Set when the last append tore: offset where the torn record began.
    /// The next append (or recovery) truncates back to it first.
    torn_at: Option<usize>,
}

/// The append-only delta journal over a simulated durable device.
///
/// Thread-safe by interior mutability (one writer at a time holds the cube
/// layer's writer lease, but recovery and stats readers may race). The
/// journal keeps its *own* [`FaultInjector`] and [`FaultStats`], separate
/// from any page store's: a delta fold transplants the page-store injector
/// into the successor store, and the journal — which must outlive every
/// store generation — cannot be subject to that move.
#[derive(Debug)]
pub struct DeltaJournal {
    state: Mutex<JournalState>,
    io: IoStats,
    injector: Mutex<Option<FaultInjector>>,
    armed: AtomicBool,
    stats: Mutex<FaultStats>,
}

impl Default for DeltaJournal {
    fn default() -> Self {
        Self::new()
    }
}

impl DeltaJournal {
    /// An empty journal.
    pub fn new() -> Self {
        Self {
            state: Mutex::new(JournalState::default()),
            io: IoStats::labeled(DEFAULT_PAGE_SIZE, "wal"),
            injector: Mutex::new(None),
            armed: AtomicBool::new(false),
            stats: Mutex::new(FaultStats::default()),
        }
    }

    /// A journal over an existing device image (recovery from found bytes;
    /// the fuzz suite also enters here). The next sequence number is
    /// recomputed from the intact records — the in-memory counter is not
    /// trusted across a crash.
    pub fn from_bytes(bytes: Vec<u8>) -> Self {
        let (records, _) = decode_records(&bytes);
        let next_seq = records.iter().map(|r| r.seq + 1).max().unwrap_or(0);
        let journal = Self::new();
        {
            let mut state = journal.state_lock();
            state.bytes = bytes;
            state.next_seq = next_seq;
        }
        journal
    }

    fn state_lock(&self) -> MutexGuard<'_, JournalState> {
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }

    fn injector_lock(&self) -> MutexGuard<'_, Option<FaultInjector>> {
        self.injector.lock().unwrap_or_else(|p| p.into_inner())
    }

    fn update_stats(&self, f: impl FnOnce(&mut FaultStats)) {
        f(&mut self.stats.lock().unwrap_or_else(|p| p.into_inner()));
    }

    /// Arms fault injection (only `torn_write` applies to an append-only
    /// log); replaces any previous injector.
    pub fn arm(&self, plan: FaultPlan) {
        *self.injector_lock() = Some(FaultInjector::new(plan));
        self.armed.store(true, Ordering::Release);
    }

    /// Disarms fault injection (a torn tail already on the device remains).
    pub fn disarm(&self) {
        *self.injector_lock() = None;
        self.armed.store(false, Ordering::Release);
    }

    /// Fault counters (torn appends, truncations) accumulated so far.
    pub fn stats(&self) -> FaultStats {
        *self.stats.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// The journal's I/O counters (sequential append/replay traffic,
    /// labeled `wal`).
    pub fn io(&self) -> &IoStats {
        &self.io
    }

    /// Current device image length in bytes (torn tail included).
    pub fn len(&self) -> u64 {
        self.state_lock().bytes.len() as u64
    }

    /// True when nothing has ever been appended.
    pub fn is_empty(&self) -> bool {
        self.state_lock().bytes.is_empty()
    }

    /// A copy of the device image (what a recovery process would read).
    pub fn image(&self) -> Vec<u8> {
        let state = self.state_lock();
        self.io.charge_seq_read(state.bytes.len());
        state.bytes.clone()
    }

    /// The sequence number the next append will take.
    pub fn next_seq(&self) -> u64 {
        self.state_lock().next_seq
    }

    /// Appends one record and "syncs" it (byte extension of the simulated
    /// device — see the module docs for the fsync caveat). If a previous
    /// append tore, the torn prefix is first truncated away (the writer
    /// rewinds to the last clean offset — the write-side half of
    /// truncate-and-continue).
    ///
    /// Under an armed injector, the plan's `torn_write` probability applies
    /// per append: a torn append flushes only a prefix of the record and
    /// returns [`Error::JournalTornAppend`] — the caller must treat the
    /// batch as not acknowledged.
    pub fn append(&self, kind: RecordKind, epoch: u64, payload: &[u8]) -> Result<AppendInfo> {
        let mut state = self.state_lock();
        if let Some(at) = state.torn_at.take() {
            state.bytes.truncate(at);
            self.update_stats(|s| s.journal_truncations += 1);
        }
        let seq = state.next_seq;
        let record = encode_record(kind, seq, epoch, payload);
        let offset = state.bytes.len() as u64;
        let torn = self.armed.load(Ordering::Acquire)
            && self.injector_lock().as_mut().is_some_and(FaultInjector::on_journal_append);
        if torn && record.len() > 1 {
            // Only a prefix reached the device before the "crash"; the
            // record's header or payload CRC cannot verify, so recovery
            // truncates here.
            let keep = record.len() / 2;
            state.bytes.extend_from_slice(&record[..keep]);
            state.torn_at = Some(offset as usize);
            self.io.charge_seq_write(keep);
            drop(state);
            self.update_stats(|s| s.journal_torn_appends += 1);
            return Err(Error::JournalTornAppend { seq });
        }
        state.next_seq = seq + 1;
        state.bytes.extend_from_slice(&record);
        let end_offset = state.bytes.len() as u64;
        self.io.charge_seq_write(record.len());
        Ok(AppendInfo { seq, offset, end_offset })
    }

    /// Decodes every intact record and truncates the torn tail in place
    /// (counted in [`FaultStats::journal_truncations`]), so the journal is
    /// immediately appendable again — truncate-and-continue. Also re-derives
    /// `next_seq` from the surviving records.
    pub fn recover_records(&self) -> (Vec<JournalRecord>, TailReport) {
        let mut state = self.state_lock();
        self.io.charge_seq_read(state.bytes.len());
        let (records, report) = decode_records(&state.bytes);
        if report.torn_bytes > 0 {
            state.bytes.truncate(report.valid_len as usize);
            state.torn_at = None;
            self.update_stats(|s| s.journal_truncations += 1);
        }
        state.next_seq = records.iter().map(|r| r.seq + 1).max().unwrap_or(0);
        (records, report)
    }

    /// Test/chaos hook: flips one stored bit of the device image (bit
    /// offsets wrap). Models media decay on the journal device itself.
    pub fn corrupt_bit(&self, bit: u64) {
        let mut state = self.state_lock();
        if state.bytes.is_empty() {
            return;
        }
        let bit = bit % (state.bytes.len() as u64 * 8);
        state.bytes[(bit / 8) as usize] ^= 1 << (bit % 8);
    }

    /// Test/chaos hook: truncates the device image to `len` bytes (no-op if
    /// already shorter). Models a crash that lost the un-synced tail.
    pub fn truncate_image(&self, len: u64) {
        let mut state = self.state_lock();
        let len = (len as usize).min(state.bytes.len());
        state.bytes.truncate(len);
        state.torn_at = None;
    }
}

/// The durable commit point: which snapshot to restart from and how far the
/// journal was acknowledged.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Manifest {
    /// Store epoch (publication generation) of the snapshot record.
    pub snapshot_epoch: u64,
    /// Journal offset of the snapshot record's header.
    pub snapshot_offset: u64,
    /// Sequence number of the last commit-stamped record (delta or
    /// snapshot).
    pub committed_seq: u64,
    /// Journal offset just past the last committed record.
    pub committed_offset: u64,
}

const MANIFEST_BYTES: usize = 8 * 4 + 4;

impl Manifest {
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(MANIFEST_BYTES);
        out.extend_from_slice(&self.snapshot_epoch.to_le_bytes());
        out.extend_from_slice(&self.snapshot_offset.to_le_bytes());
        out.extend_from_slice(&self.committed_seq.to_le_bytes());
        out.extend_from_slice(&self.committed_offset.to_le_bytes());
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    fn decode(bytes: &[u8]) -> Result<Self> {
        let corrupt = || Error::ChecksumMismatch { object: "manifest".into(), page: 0 };
        if bytes.len() != MANIFEST_BYTES {
            return Err(corrupt());
        }
        let stored = read_u32(bytes, MANIFEST_BYTES - 4).ok_or_else(corrupt)?;
        if crc32(&bytes[..MANIFEST_BYTES - 4]) != stored {
            return Err(corrupt());
        }
        Ok(Self {
            snapshot_epoch: read_u64(bytes, 0).ok_or_else(corrupt)?,
            snapshot_offset: read_u64(bytes, 8).ok_or_else(corrupt)?,
            committed_seq: read_u64(bytes, 16).ok_or_else(corrupt)?,
            committed_offset: read_u64(bytes, 24).ok_or_else(corrupt)?,
        })
    }
}

/// The atomically-swapped manifest slot.
///
/// Models the write-temp-then-rename idiom of real systems: `install`
/// replaces the whole CRC-stamped image in one swap, so a reader observes
/// either the previous manifest or the new one, never a half-written mix.
/// A crash *before* the swap leaves the old manifest; recovery then replays
/// further through the journal than strictly acknowledged, which is safe —
/// replay is idempotent and only ever moves the store toward the post-delta
/// image.
#[derive(Debug, Default)]
pub struct ManifestCell {
    slot: Mutex<Vec<u8>>,
}

impl ManifestCell {
    /// An empty cell (no manifest installed yet).
    pub fn new() -> Self {
        Self::default()
    }

    /// Atomically installs `manifest` (whole-image swap).
    pub fn install(&self, manifest: &Manifest) {
        *self.slot.lock().unwrap_or_else(|p| p.into_inner()) = manifest.encode();
    }

    /// Loads the installed manifest. `Ok(None)` when none was ever
    /// installed; a corrupt image (see [`ManifestCell::corrupt_bit`]) is a
    /// typed checksum error — recovery falls back to scanning the journal.
    pub fn load(&self) -> Result<Option<Manifest>> {
        let slot = self.slot.lock().unwrap_or_else(|p| p.into_inner());
        if slot.is_empty() {
            return Ok(None);
        }
        Manifest::decode(&slot).map(Some)
    }

    /// Test/chaos hook: flips one bit of the stored image (wraps; no-op
    /// when empty).
    pub fn corrupt_bit(&self, bit: u64) {
        let mut slot = self.slot.lock().unwrap_or_else(|p| p.into_inner());
        if slot.is_empty() {
            return;
        }
        let bit = bit % (slot.len() as u64 * 8);
        slot[(bit / 8) as usize] ^= 1 << (bit % 8);
    }
}

/// Where the durable write path can be killed. The five points bracket
/// every protocol step: journal append, fold, seal, publish, commit stamp.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashPoint {
    /// Before anything durable happens (the trivial pre-delta outcome).
    PreAppend,
    /// After the delta record is durable, before the fold runs.
    PostAppend,
    /// Mid-seal: after the first view of the successor store is sealed,
    /// with the rest unsealed and nothing published.
    MidSeal,
    /// Fold complete, successor built, publish pointer-swap not yet done.
    PrePublish,
    /// Published (readers see the post-delta store), commit record and
    /// manifest swap not yet written.
    PreCommitRecord,
}

impl CrashPoint {
    /// All five kill points, in pipeline order.
    pub const ALL: [CrashPoint; 5] = [
        CrashPoint::PreAppend,
        CrashPoint::PostAppend,
        CrashPoint::MidSeal,
        CrashPoint::PrePublish,
        CrashPoint::PreCommitRecord,
    ];
}

/// One-shot, seed-reproducible process-death instrumentation: arm a
/// [`CrashPoint`] and the next write path that reaches it panics (the
/// simulated `kill -9`), exactly once. The chaos suite catches the unwind,
/// then recovers from the journal + manifest the "dead process" left
/// behind.
#[derive(Debug, Default)]
pub struct CrashInjector {
    armed: Mutex<Option<CrashPoint>>,
}

impl CrashInjector {
    /// An injector with nothing armed.
    pub fn new() -> Self {
        Self::default()
    }

    /// Arms `point`; replaces any previously armed point.
    pub fn arm(&self, point: CrashPoint) {
        *self.armed.lock().unwrap_or_else(|p| p.into_inner()) = Some(point);
    }

    /// Disarms without firing.
    pub fn disarm(&self) {
        *self.armed.lock().unwrap_or_else(|p| p.into_inner()) = None;
    }

    /// The armed point, if any.
    pub fn armed(&self) -> Option<CrashPoint> {
        *self.armed.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Called by the write path at each step: panics (simulated process
    /// death) iff `point` is armed, disarming first so recovery in the same
    /// process does not re-fire.
    pub fn hit(&self, point: CrashPoint) {
        let mut armed = self.armed.lock().unwrap_or_else(|p| p.into_inner());
        if *armed == Some(point) {
            *armed = None;
            drop(armed);
            panic!("{CRASH_PANIC_PREFIX}{point:?}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_and_decode_round_trip() {
        let j = DeltaJournal::new();
        let a = j.append(RecordKind::Snapshot, 0, b"snap").unwrap();
        let b = j.append(RecordKind::Delta, 1, b"delta payload").unwrap();
        let c = j.append(RecordKind::Commit, 1, &a.seq.to_le_bytes()).unwrap();
        assert_eq!((a.seq, b.seq, c.seq), (0, 1, 2));
        assert_eq!(b.offset, a.end_offset);
        let (records, tail) = j.recover_records();
        assert_eq!(tail.torn_bytes, 0);
        assert_eq!(records.len(), 3);
        assert_eq!(records[0].kind, RecordKind::Snapshot);
        assert_eq!(records[1].payload, b"delta payload");
        assert_eq!(records[1].epoch, 1);
        assert_eq!(records[2].kind, RecordKind::Commit);
        assert_eq!(records[1].offset, b.offset);
        assert!(j.io().pages_written() > 0, "appends must charge I/O");
    }

    #[test]
    fn torn_tail_is_detected_and_truncated() {
        let j = DeltaJournal::new();
        j.append(RecordKind::Delta, 1, b"first").unwrap();
        let good_len = j.len();
        j.append(RecordKind::Delta, 2, b"second").unwrap();
        // Chop mid-record: the decoder must stop at the first record.
        j.truncate_image(good_len + 10);
        let (records, tail) = j.recover_records();
        assert_eq!(records.len(), 1);
        assert_eq!(tail.valid_len, good_len);
        assert_eq!(tail.torn_bytes, 10);
        assert_eq!(j.len(), good_len, "recovery truncates the torn tail");
        assert_eq!(j.stats().journal_truncations, 1);
        // The journal continues: the next append reuses seq 1.
        let info = j.append(RecordKind::Delta, 2, b"retry").unwrap();
        assert_eq!(info.seq, 1);
        let (records, tail) = j.recover_records();
        assert_eq!(records.len(), 2);
        assert_eq!(tail.torn_bytes, 0);
    }

    #[test]
    fn bit_flip_anywhere_stops_decode_at_that_record() {
        let j = DeltaJournal::new();
        j.append(RecordKind::Delta, 1, b"aaaa").unwrap();
        let first_end = j.len();
        j.append(RecordKind::Delta, 2, b"bbbb").unwrap();
        // Flip a bit inside the second record's payload.
        j.corrupt_bit((first_end + RECORD_HEADER_BYTES as u64) * 8 + 3);
        let (records, tail) = j.recover_records();
        assert_eq!(records.len(), 1, "corrupt record must not decode");
        assert!(tail.torn_bytes > 0);
    }

    #[test]
    fn injected_torn_append_is_a_typed_error_and_heals() {
        let j = DeltaJournal::new();
        j.append(RecordKind::Delta, 1, b"good").unwrap();
        j.arm(FaultPlan {
            seed: 3,
            transient_read: 0.0,
            short_read: 0.0,
            bit_flip: 0.0,
            torn_write: 1.0,
        });
        let err = j.append(RecordKind::Delta, 2, b"doomed to tear").unwrap_err();
        assert!(matches!(err, Error::JournalTornAppend { seq: 1 }));
        assert_eq!(j.stats().journal_torn_appends, 1);
        j.disarm();
        // The device holds a torn prefix; decode stops before it...
        let (records, tail) = decode_records(&j.image());
        assert_eq!(records.len(), 1);
        assert!(tail.torn_bytes > 0);
        // ...and the next append rewinds over it (truncate-and-continue on
        // the write side), reusing the failed sequence number.
        let info = j.append(RecordKind::Delta, 2, b"after heal").unwrap();
        assert_eq!(info.seq, 1);
        assert_eq!(j.stats().journal_truncations, 1);
        let (records, tail) = j.recover_records();
        assert_eq!(records.len(), 2);
        assert_eq!(tail.torn_bytes, 0);
        assert_eq!(records[1].payload, b"after heal");
    }

    #[test]
    fn same_seed_tears_the_same_appends() {
        let run = |seed: u64| {
            let j = DeltaJournal::new();
            j.arm(FaultPlan {
                seed,
                transient_read: 0.0,
                short_read: 0.0,
                bit_flip: 0.0,
                torn_write: 0.3,
            });
            (0..20).map(|i| j.append(RecordKind::Delta, i, b"xyz").is_err()).collect::<Vec<bool>>()
        };
        assert_eq!(run(7), run(7));
        assert!(run(7).iter().any(|&t| t), "30% over 20 appends should tear at least once");
        assert!((0..8).any(|s| run(s) != run(7)), "seeds must differ");
    }

    #[test]
    fn from_bytes_recomputes_next_seq() {
        let j = DeltaJournal::new();
        j.append(RecordKind::Delta, 1, b"a").unwrap();
        j.append(RecordKind::Delta, 2, b"b").unwrap();
        let resumed = DeltaJournal::from_bytes(j.image());
        assert_eq!(resumed.next_seq(), 2);
        assert_eq!(resumed.append(RecordKind::Delta, 3, b"c").unwrap().seq, 2);
        // Garbage image: next_seq restarts at 0, nothing decodes.
        let garbage = DeltaJournal::from_bytes(vec![0xFF; 57]);
        assert_eq!(garbage.next_seq(), 0);
        let (records, tail) = garbage.recover_records();
        assert!(records.is_empty());
        assert_eq!(tail.torn_bytes, 57, "the whole image is torn");
        assert_eq!(garbage.len(), 0, "recovery truncated the garbage");
    }

    #[test]
    fn manifest_round_trips_and_detects_corruption() {
        let cell = ManifestCell::new();
        assert_eq!(cell.load().unwrap(), None);
        let m = Manifest {
            snapshot_epoch: 4,
            snapshot_offset: 1234,
            committed_seq: 17,
            committed_offset: 9876,
        };
        cell.install(&m);
        assert_eq!(cell.load().unwrap(), Some(m));
        cell.corrupt_bit(41);
        assert!(matches!(cell.load(), Err(Error::ChecksumMismatch { .. })));
        // Re-install heals (the swap replaces the whole image).
        cell.install(&m);
        assert_eq!(cell.load().unwrap(), Some(m));
    }

    #[test]
    fn crash_injector_fires_exactly_once_at_the_armed_point() {
        let c = CrashInjector::new();
        c.arm(CrashPoint::PrePublish);
        c.hit(CrashPoint::PreAppend); // different point: no fire
        assert_eq!(c.armed(), Some(CrashPoint::PrePublish));
        let unwound = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            c.hit(CrashPoint::PrePublish);
        }));
        let msg = *unwound.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.starts_with(CRASH_PANIC_PREFIX));
        // One-shot: disarmed after firing.
        assert_eq!(c.armed(), None);
        c.hit(CrashPoint::PrePublish); // no second fire
    }

    #[test]
    fn empty_and_tiny_images_never_panic() {
        for image in [vec![], vec![0u8], vec![7u8; RECORD_HEADER_BYTES - 1], vec![9u8; 200]] {
            let (records, tail) = decode_records(&image);
            assert!(records.is_empty());
            assert_eq!(tail.valid_len, 0);
            assert_eq!(tail.torn_bytes, image.len() as u64);
        }
    }
}
