//! Chunked, batch-at-a-time aggregation over the §6 column organizations.
//!
//! The survey's compressed layouts ([`crate::rle`], [`crate::bittransposed`],
//! [`crate::column`]) were designed for batch consumption: a run-length
//! encoded column answers `SUM`/`COUNT` without ever decoding, and a
//! bit-sliced column yields selection bitmaps that mask a dense value
//! vector. This module supplies the chunk representation and the fused
//! aggregation kernels the vectorized executor and the E29 experiment
//! consume — the storage-side mirror of the plan-layer kernels in
//! `statcube_core::plan` ([`AggState`] is the shared accumulator, so a
//! chunk aggregated here merges bit-for-bit with a block derived there).
//!
//! Three kernels, one per storage shape:
//!
//! * [`aggregate_dense`] — a straight pass over decoded values;
//! * [`aggregate_runs`] — run-aware: one [`AggState::merge_run`] per run
//!   (`value × run_length` for sums and counts, run min/max for extrema),
//!   so cost scales with *runs*, not cells — the whole point of \[WL+85\]'s
//!   compressed scans;
//! * [`filtered_aggregate`] — a dense pass masked by a selection bitmap in
//!   the exact shape [`crate::bittransposed::BitSlicedColumn::eq_scan`]
//!   produces, and [`group_aggregate`] — a single gather pass that
//!   scatter-merges values into per-group accumulators keyed by a
//!   dictionary-coded column.
//!
//! Plus the state-granular pair the sealed-page scans stream through:
//! [`merge_states`] and [`group_merge_states_into`], which consume rows
//! that already carry full [`AggState`]s (the sealed cuboid row format)
//! so a cold view scan derives its target chunk-at-a-time instead of
//! materializing the dense source block first.

use statcube_core::measure::AggState;

use crate::bittransposed::BitSlicedColumn;
use crate::rle::Rle;

/// A borrowed chunk of a measure column in its stored shape: the unit a
/// chunk iterator yields and the aggregation kernels consume.
#[derive(Debug, Clone, Copy)]
pub enum MeasureChunk<'a> {
    /// Decoded values, one per cell (transposed / dense organizations).
    Dense(&'a [f64]),
    /// Run-length encoded `(value, run_length)` pairs ([`Rle`]).
    Runs(&'a [(f64, u32)]),
}

impl MeasureChunk<'_> {
    /// Cells covered by this chunk (run lengths included).
    pub fn cells(&self) -> u64 {
        match self {
            MeasureChunk::Dense(v) => v.len() as u64,
            MeasureChunk::Runs(runs) => runs.iter().map(|&(_, n)| u64::from(n)).sum(),
        }
    }

    /// Aggregates the chunk with the shape-appropriate kernel.
    pub fn aggregate(&self) -> AggState {
        match self {
            MeasureChunk::Dense(v) => aggregate_dense(v),
            MeasureChunk::Runs(runs) => aggregate_runs(runs),
        }
    }
}

/// Splits a decoded column into [`MeasureChunk::Dense`] chunks of at most
/// `rows` cells.
pub fn dense_chunks(values: &[f64], rows: usize) -> impl Iterator<Item = MeasureChunk<'_>> {
    values.chunks(rows.max(1)).map(MeasureChunk::Dense)
}

/// Splits an RLE column into [`MeasureChunk::Runs`] chunks of at most
/// `runs_per_chunk` runs — chunking follows the *stored* shape, so a long
/// run is never split or decoded.
pub fn run_chunks(rle: &Rle<f64>, runs_per_chunk: usize) -> impl Iterator<Item = MeasureChunk<'_>> {
    rle.runs().chunks(runs_per_chunk.max(1)).map(MeasureChunk::Runs)
}

/// Aggregates decoded values in one pass.
pub fn aggregate_dense(values: &[f64]) -> AggState {
    let mut s = AggState::EMPTY;
    for &v in values {
        s.merge_run(v, 1);
    }
    s
}

/// Aggregates an RLE column without decoding: one
/// [`AggState::merge_run`] per run, so `SUM` costs `value × run_length`
/// and `MIN`/`MAX` cost one comparison per *run*.
pub fn aggregate_runs(runs: &[(f64, u32)]) -> AggState {
    let mut s = AggState::EMPTY;
    for &(v, n) in runs {
        s.merge_run(v, u64::from(n));
    }
    s
}

/// Folds any chunk sequence into one state — chunks may mix shapes, since
/// [`AggState::merge`] is the same monoid either kernel accumulates into.
pub fn aggregate_chunks<'a, I>(chunks: I) -> AggState
where
    I: IntoIterator<Item = MeasureChunk<'a>>,
{
    let mut s = AggState::EMPTY;
    for c in chunks {
        s.merge(&c.aggregate());
    }
    s
}

/// Aggregates the dense values selected by `bitmap` — the word-per-64-rows
/// layout [`BitSlicedColumn::eq_scan`] and [`BitSlicedColumn::and`]
/// produce, so a bit-sliced predicate scan feeds aggregation without an
/// intermediate index vector.
pub fn filtered_aggregate(values: &[f64], bitmap: &[u64]) -> AggState {
    let mut s = AggState::EMPTY;
    for i in BitSlicedColumn::iter_ones(bitmap) {
        if let Some(&v) = values.get(i) {
            s.merge_run(v, 1);
        }
    }
    s
}

/// One-pass grouped aggregation over a dictionary-coded key column:
/// `codes[i]` names the group of `values[i]`, and the result holds one
/// state per group id in `0..group_count` (empty groups stay
/// [`AggState::EMPTY`]). Codes at or above `group_count` are ignored, the
/// same skip-unknown contract the executor's kernels follow.
pub fn group_aggregate(codes: &[u32], group_count: usize, values: &[f64]) -> Vec<AggState> {
    let mut out = vec![AggState::EMPTY; group_count];
    for (&c, &v) in codes.iter().zip(values) {
        if let Some(s) = out.get_mut(c as usize) {
            s.merge_run(v, 1);
        }
    }
    out
}

/// Folds a slice of already-aggregated states into one — the
/// state-granular sibling of [`aggregate_dense`], for storage shapes whose
/// rows carry full [`AggState`]s (sealed cuboid files) rather than raw
/// values. Merge order is slice order, so chunked consumption is
/// bit-identical to a single pass.
pub fn merge_states(states: &[AggState]) -> AggState {
    let mut s = AggState::EMPTY;
    for st in states {
        s.merge(st);
    }
    s
}

/// One-pass grouped *state* merge: scatter-merges `states[i]` into
/// `out[codes[i]]`. The state-granular sibling of [`group_aggregate`],
/// consumed chunk-at-a-time by the sealed-page scans — callers stream a
/// sealed cuboid file in row chunks, code each row's target key, and fold
/// every chunk into the same `out` slice without ever materializing the
/// dense source block. Codes at or above `out.len()` are skipped (the
/// skip-unknown contract doubles as the filter reject path: callers code
/// filtered-out rows as `out.len()`).
pub fn group_merge_states_into(codes: &[u32], states: &[AggState], out: &mut [AggState]) {
    for (&c, s) in codes.iter().zip(states) {
        if let Some(dst) = out.get_mut(c as usize) {
            dst.merge(s);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_aware_equals_decoded() {
        let decoded: Vec<f64> =
            [3.0; 7].iter().chain([1.0; 4].iter()).chain([9.0; 2].iter()).copied().collect();
        let rle = Rle::encode(&decoded);
        assert_eq!(rle.run_count(), 3);
        assert_eq!(aggregate_runs(rle.runs()), aggregate_dense(&decoded));
    }

    #[test]
    fn chunking_never_changes_the_answer() {
        let values: Vec<f64> = (0..1000).map(|i| f64::from(i % 17)).collect();
        let whole = aggregate_dense(&values);
        for rows in [1, 7, 64, 1000, 4096] {
            assert_eq!(aggregate_chunks(dense_chunks(&values, rows)), whole, "rows={rows}");
        }
        let rle = Rle::encode(&values);
        for runs in [1, 3, 1 << 20] {
            assert_eq!(aggregate_chunks(run_chunks(&rle, runs)), whole, "runs={runs}");
        }
    }

    #[test]
    fn mixed_shapes_merge_into_one_monoid() {
        let a = [1.0, 2.0, 3.0];
        let rle = Rle::encode(&[5.0, 5.0, 5.0, 7.0]);
        let chunks = [MeasureChunk::Dense(&a), MeasureChunk::Runs(rle.runs())];
        let s = aggregate_chunks(chunks);
        assert_eq!(s.count, 7);
        assert_eq!(s.sum, 28.0);
        assert_eq!((s.min, s.max), (1.0, 7.0));
        assert_eq!(chunks[0].cells() + chunks[1].cells(), 7);
    }

    #[test]
    fn bitmap_filter_matches_explicit_selection() {
        let codes: Vec<u32> = (0..200).map(|i| i % 5).collect();
        let values: Vec<f64> = (0..200).map(f64::from).collect();
        let col = BitSlicedColumn::build(&codes, 3).unwrap();
        let io = crate::io_stats::IoStats::new(crate::io_stats::DEFAULT_PAGE_SIZE);
        let bitmap = col.eq_scan(2, &io);
        let expected = aggregate_dense(
            &values
                .iter()
                .zip(&codes)
                .filter(|(_, &c)| c == 2)
                .map(|(&v, _)| v)
                .collect::<Vec<_>>(),
        );
        assert_eq!(filtered_aggregate(&values, &bitmap), expected);
        // Out-of-range bits are ignored.
        let mut long = bitmap.clone();
        long.push(u64::MAX);
        assert_eq!(filtered_aggregate(&values, &long), expected);
    }

    #[test]
    fn state_merge_kernels_match_value_kernels() {
        // States built from single values must merge to the same result the
        // value kernels aggregate to, chunked or not.
        let values: Vec<f64> = (0..500).map(|i| f64::from(i % 23) - 7.0).collect();
        let states: Vec<AggState> = values
            .iter()
            .map(|&v| {
                let mut s = AggState::EMPTY;
                s.merge_run(v, 1);
                s
            })
            .collect();
        assert_eq!(merge_states(&states), aggregate_dense(&values));
        let codes: Vec<u32> = (0..500).map(|i| (i * 13) % 6).collect();
        let grouped = group_aggregate(&codes, 6, &values);
        let mut out = vec![AggState::EMPTY; 6];
        for (cc, cs) in codes.chunks(64).zip(states.chunks(64)) {
            group_merge_states_into(cc, cs, &mut out);
        }
        assert_eq!(out, grouped);
        // Skip-unknown: an out-of-range code leaves `out` untouched.
        let mut small = vec![AggState::EMPTY; 1];
        group_merge_states_into(&[0, 9], &states[..2], &mut small);
        assert_eq!(small[0], states[0]);
    }

    #[test]
    fn group_aggregate_matches_per_group_filters() {
        let codes: Vec<u32> = (0..300).map(|i| (i * 7) % 4).collect();
        let values: Vec<f64> = (0..300).map(|i| f64::from(i) * 0.5).collect();
        let grouped = group_aggregate(&codes, 4, &values);
        for g in 0..4u32 {
            let expected = aggregate_dense(
                &values
                    .iter()
                    .zip(&codes)
                    .filter(|(_, &c)| c == g)
                    .map(|(&v, _)| v)
                    .collect::<Vec<_>>(),
            );
            assert_eq!(grouped[g as usize], expected, "group {g}");
        }
        // Unknown codes are skipped; empty groups stay EMPTY.
        let sparse = group_aggregate(&[0, 9], 3, &[1.0, 2.0]);
        assert_eq!(sparse[0].sum, 1.0);
        assert_eq!(sparse[1], AggState::EMPTY);
        assert_eq!(sparse[2], AggState::EMPTY);
    }
}
