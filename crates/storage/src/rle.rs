//! Run-length encoding (§6.1–6.2, \[WL+85\], \[EOA81\]).
//!
//! Two uses in the paper: compressing the *least rapidly varying* sorted
//! category columns of a transposed file (\[WL+85\]), and compressing the
//! null/value run structure of a linearized array (\[EOA81\] — see
//! [`crate::header`], which builds on the run representation here).
//!
//! `Rle<u32>` additionally has a byte serialization
//! ([`Rle::to_bytes`]/[`Rle::from_bytes`]) so run-compressed columns can
//! live in the checksummed [`crate::page_store`]; the decoder validates
//! every structural invariant and returns typed errors on corrupt input —
//! it never panics and never loops.

use statcube_core::error::{Error, Result};

/// A run-length encoded sequence of `T`.
#[derive(Debug, Clone, PartialEq)]
pub struct Rle<T> {
    runs: Vec<(T, u32)>,
    len: usize,
}

impl<T: Copy + PartialEq> Rle<T> {
    /// Encodes a sequence.
    pub fn encode(values: &[T]) -> Self {
        let mut runs: Vec<(T, u32)> = Vec::new();
        for &v in values {
            match runs.last_mut() {
                Some((last, n)) if *last == v && *n < u32::MAX => *n += 1,
                _ => runs.push((v, 1)),
            }
        }
        Self { runs, len: values.len() }
    }

    /// Number of logical values.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of runs.
    pub fn run_count(&self) -> usize {
        self.runs.len()
    }

    /// The raw runs.
    pub fn runs(&self) -> &[(T, u32)] {
        &self.runs
    }

    /// Decodes back to the full sequence.
    pub fn decode(&self) -> Vec<T> {
        let mut out = Vec::with_capacity(self.len);
        for &(v, n) in &self.runs {
            out.extend(std::iter::repeat_n(v, n as usize));
        }
        out
    }

    /// Random access by logical index (linear in runs; use
    /// [`crate::header`] structures when log-time access matters).
    pub fn get(&self, mut i: usize) -> Option<T> {
        if i >= self.len {
            return None;
        }
        for &(v, n) in &self.runs {
            if i < n as usize {
                return Some(v);
            }
            i -= n as usize;
        }
        None
    }

    /// Stored bytes, assuming `value_bytes` per value and 4 bytes per run
    /// length.
    pub fn size_bytes(&self, value_bytes: usize) -> usize {
        self.runs.len() * (value_bytes + 4)
    }

    /// Compression ratio versus plain storage at `value_bytes` per value
    /// (> 1 means RLE is smaller).
    pub fn compression_ratio(&self, value_bytes: usize) -> f64 {
        let plain = (self.len * value_bytes).max(1);
        plain as f64 / self.size_bytes(value_bytes).max(1) as f64
    }
}

impl Rle<u32> {
    /// Serializes as `run_count: u64 | len: u64 | (value: u32, n: u32)*`,
    /// little-endian. Inverse of [`Rle::from_bytes`].
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + self.runs.len() * 8);
        out.extend_from_slice(&(self.runs.len() as u64).to_le_bytes());
        out.extend_from_slice(&(self.len as u64).to_le_bytes());
        for &(v, n) in &self.runs {
            out.extend_from_slice(&v.to_le_bytes());
            out.extend_from_slice(&n.to_le_bytes());
        }
        out
    }

    /// Deserializes a [`Rle::to_bytes`] buffer, validating every
    /// invariant an encoder upholds: exact buffer length, no zero-length
    /// runs, adjacent runs carrying distinct values, and run lengths
    /// summing to the recorded logical length. Corrupt or truncated input
    /// yields a typed error — never a panic, never an unbounded loop (the
    /// single decode pass is bounded by the buffer length).
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        let malformed = |what: &str| Error::InvalidSchema(format!("malformed RLE buffer: {what}"));
        let header: [u8; 8] = bytes
            .get(0..8)
            .and_then(|s| s.try_into().ok())
            .ok_or_else(|| malformed("short header"))?;
        let run_count = u64::from_le_bytes(header) as usize;
        let len_bytes: [u8; 8] = bytes
            .get(8..16)
            .and_then(|s| s.try_into().ok())
            .ok_or_else(|| malformed("short header"))?;
        let len = u64::from_le_bytes(len_bytes) as usize;
        if bytes.len()
            != 16 + run_count.checked_mul(8).ok_or_else(|| malformed("run count overflow"))?
        {
            return Err(malformed("length does not match run count"));
        }
        let mut runs: Vec<(u32, u32)> = Vec::with_capacity(run_count);
        let mut total: u64 = 0;
        for i in 0..run_count {
            let at = 16 + i * 8;
            let v = u32::from_le_bytes(
                bytes[at..at + 4].try_into().map_err(|_| malformed("truncated run"))?,
            );
            let n = u32::from_le_bytes(
                bytes[at + 4..at + 8].try_into().map_err(|_| malformed("truncated run"))?,
            );
            if n == 0 {
                return Err(malformed("zero-length run"));
            }
            if let Some(&(last, ln)) = runs.last() {
                // An encoder only splits equal values across runs at the
                // u32 length ceiling; anything else is corruption.
                if last == v && ln < u32::MAX {
                    return Err(malformed("adjacent runs share a value"));
                }
            }
            total += n as u64;
            runs.push((v, n));
        }
        if total != len as u64 {
            return Err(malformed("run lengths do not sum to the logical length"));
        }
        Ok(Self { runs, len })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let xs = vec![1u32, 1, 1, 2, 2, 3, 1, 1];
        let r = Rle::encode(&xs);
        assert_eq!(r.run_count(), 4);
        assert_eq!(r.decode(), xs);
        assert_eq!(r.len(), 8);
    }

    #[test]
    fn get_by_logical_index() {
        let xs = vec![5u32, 5, 7, 7, 7, 9];
        let r = Rle::encode(&xs);
        for (i, &x) in xs.iter().enumerate() {
            assert_eq!(r.get(i), Some(x));
        }
        assert_eq!(r.get(6), None);
    }

    #[test]
    fn empty_sequence() {
        let r: Rle<u32> = Rle::encode(&[]);
        assert!(r.is_empty());
        assert_eq!(r.run_count(), 0);
        assert!(r.decode().is_empty());
        assert_eq!(r.get(0), None);
    }

    #[test]
    fn least_rapidly_varying_column_compresses_hugely() {
        // A sorted "state" column over the cross product: each value
        // repeats for thousands of rows — the [WL+85] observation.
        let mut xs = Vec::new();
        for state in 0u32..50 {
            xs.extend(std::iter::repeat_n(state, 1000));
        }
        let r = Rle::encode(&xs);
        assert_eq!(r.run_count(), 50);
        assert!(r.compression_ratio(4) > 100.0);
        assert_eq!(r.decode().len(), 50_000);
    }

    #[test]
    fn rapidly_varying_column_does_not_compress() {
        let xs: Vec<u32> = (0..1000).map(|i| i % 2).collect();
        let r = Rle::encode(&xs);
        assert_eq!(r.run_count(), 1000);
        assert!(r.compression_ratio(4) < 1.0);
    }

    #[test]
    fn bytes_round_trip() {
        for xs in [vec![], vec![9u32], vec![1, 1, 1, 2, 2, 3, 1, 1]] {
            let r = Rle::encode(&xs);
            let back = Rle::<u32>::from_bytes(&r.to_bytes()).unwrap();
            assert_eq!(back, r);
            assert_eq!(back.decode(), xs);
        }
    }

    #[test]
    fn malformed_buffers_are_typed_errors() {
        let good = Rle::encode(&[1u32, 1, 2, 2, 2, 7]).to_bytes();
        // Truncations at every length fail cleanly.
        for cut in 0..good.len() {
            assert!(Rle::<u32>::from_bytes(&good[..cut]).is_err(), "cut at {cut}");
        }
        // Oversized buffer.
        let mut extended = good.clone();
        extended.push(0);
        assert!(Rle::<u32>::from_bytes(&extended).is_err());
        // A zero-length run.
        let mut zero_run = good.clone();
        zero_run[20..24].copy_from_slice(&0u32.to_le_bytes());
        assert!(Rle::<u32>::from_bytes(&zero_run).is_err());
        // Run sum disagreeing with the recorded length.
        let mut bad_len = good.clone();
        bad_len[8..16].copy_from_slice(&999u64.to_le_bytes());
        assert!(Rle::<u32>::from_bytes(&bad_len).is_err());
        // Adjacent runs with the same value (a non-canonical encoding).
        let mut merged = good;
        merged[24..28].copy_from_slice(&1u32.to_le_bytes()); // second run's value -> first's
        assert!(Rle::<u32>::from_bytes(&merged).is_err());
        // A run count so large that 16 + count*8 overflows usize.
        let mut huge = vec![0u8; 16];
        huge[0..8].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(Rle::<u32>::from_bytes(&huge).is_err());
    }

    #[test]
    fn works_for_floats_and_bools() {
        let f = vec![0.0f64, 0.0, 1.5, 1.5, 1.5];
        assert_eq!(Rle::encode(&f).decode(), f);
        let b = vec![true, true, false, true];
        let rb = Rle::encode(&b);
        assert_eq!(rb.run_count(), 3);
        assert_eq!(rb.decode(), b);
    }
}
