//! Run-length encoding (§6.1–6.2, \[WL+85\], \[EOA81\]).
//!
//! Two uses in the paper: compressing the *least rapidly varying* sorted
//! category columns of a transposed file (\[WL+85\]), and compressing the
//! null/value run structure of a linearized array (\[EOA81\] — see
//! [`crate::header`], which builds on the run representation here).

/// A run-length encoded sequence of `T`.
#[derive(Debug, Clone, PartialEq)]
pub struct Rle<T> {
    runs: Vec<(T, u32)>,
    len: usize,
}

impl<T: Copy + PartialEq> Rle<T> {
    /// Encodes a sequence.
    pub fn encode(values: &[T]) -> Self {
        let mut runs: Vec<(T, u32)> = Vec::new();
        for &v in values {
            match runs.last_mut() {
                Some((last, n)) if *last == v && *n < u32::MAX => *n += 1,
                _ => runs.push((v, 1)),
            }
        }
        Self { runs, len: values.len() }
    }

    /// Number of logical values.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of runs.
    pub fn run_count(&self) -> usize {
        self.runs.len()
    }

    /// The raw runs.
    pub fn runs(&self) -> &[(T, u32)] {
        &self.runs
    }

    /// Decodes back to the full sequence.
    pub fn decode(&self) -> Vec<T> {
        let mut out = Vec::with_capacity(self.len);
        for &(v, n) in &self.runs {
            out.extend(std::iter::repeat_n(v, n as usize));
        }
        out
    }

    /// Random access by logical index (linear in runs; use
    /// [`crate::header`] structures when log-time access matters).
    pub fn get(&self, mut i: usize) -> Option<T> {
        if i >= self.len {
            return None;
        }
        for &(v, n) in &self.runs {
            if i < n as usize {
                return Some(v);
            }
            i -= n as usize;
        }
        None
    }

    /// Stored bytes, assuming `value_bytes` per value and 4 bytes per run
    /// length.
    pub fn size_bytes(&self, value_bytes: usize) -> usize {
        self.runs.len() * (value_bytes + 4)
    }

    /// Compression ratio versus plain storage at `value_bytes` per value
    /// (> 1 means RLE is smaller).
    pub fn compression_ratio(&self, value_bytes: usize) -> f64 {
        let plain = (self.len * value_bytes).max(1);
        plain as f64 / self.size_bytes(value_bytes).max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let xs = vec![1u32, 1, 1, 2, 2, 3, 1, 1];
        let r = Rle::encode(&xs);
        assert_eq!(r.run_count(), 4);
        assert_eq!(r.decode(), xs);
        assert_eq!(r.len(), 8);
    }

    #[test]
    fn get_by_logical_index() {
        let xs = vec![5u32, 5, 7, 7, 7, 9];
        let r = Rle::encode(&xs);
        for (i, &x) in xs.iter().enumerate() {
            assert_eq!(r.get(i), Some(x));
        }
        assert_eq!(r.get(6), None);
    }

    #[test]
    fn empty_sequence() {
        let r: Rle<u32> = Rle::encode(&[]);
        assert!(r.is_empty());
        assert_eq!(r.run_count(), 0);
        assert!(r.decode().is_empty());
        assert_eq!(r.get(0), None);
    }

    #[test]
    fn least_rapidly_varying_column_compresses_hugely() {
        // A sorted "state" column over the cross product: each value
        // repeats for thousands of rows — the [WL+85] observation.
        let mut xs = Vec::new();
        for state in 0u32..50 {
            xs.extend(std::iter::repeat_n(state, 1000));
        }
        let r = Rle::encode(&xs);
        assert_eq!(r.run_count(), 50);
        assert!(r.compression_ratio(4) > 100.0);
        assert_eq!(r.decode().len(), 50_000);
    }

    #[test]
    fn rapidly_varying_column_does_not_compress() {
        let xs: Vec<u32> = (0..1000).map(|i| i % 2).collect();
        let r = Rle::encode(&xs);
        assert_eq!(r.run_count(), 1000);
        assert!(r.compression_ratio(4) < 1.0);
    }

    #[test]
    fn works_for_floats_and_bools() {
        let f = vec![0.0f64, 0.0, 1.5, 1.5, 1.5];
        assert_eq!(Rle::encode(&f).decode(), f);
        let b = vec![true, true, false, true];
        let rb = Rle::encode(&b);
        assert_eq!(rb.run_count(), 3);
        assert_eq!(rb.decode(), b);
    }
}
