//! Page-granular simulated I/O accounting.
//!
//! Every claim in §6 of the paper — transposition wins for summary queries,
//! chunking reduces range-query I/O, compression shrinks what must be
//! touched — is a claim about **how many blocks must be read from secondary
//! storage**. The stores in this crate are in-memory, but each charges an
//! [`IoStats`] counter with the pages a disk-resident layout would touch, so
//! benches report the quantity the surveyed systems actually optimized.
//! Absolute latencies of 1980s–90s testbeds are *not* modeled (see
//! DESIGN.md, substitutions).

use statcube_core::trace;
use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};

/// Default page size used across the crate (4 KiB).
pub const DEFAULT_PAGE_SIZE: usize = 4096;

/// Read/write page counters with a fixed page size.
///
/// The counters are relaxed atomics, so an `IoStats` is `Sync` and charging
/// stays possible through `&self` — which is what lets read paths keep
/// shared references throughout the crate *and* lets the serving layer
/// ([`statcube-cube`]'s `SharedViewStore`) charge I/O from many concurrent
/// reader threads against one store. Relaxed ordering is sufficient:
/// the counters are monotone tallies, never synchronization points.
/// [`AtomicIoStats`] remains for worker-thread accumulators that are folded
/// back in after a join.
#[derive(Debug)]
pub struct IoStats {
    page_size: usize,
    label: Option<&'static str>,
    pages_read: AtomicU64,
    pages_written: AtomicU64,
}

impl Default for IoStats {
    fn default() -> Self {
        Self::new(DEFAULT_PAGE_SIZE)
    }
}

impl IoStats {
    /// Creates counters with the given page size (bytes, ≥ 1).
    pub fn new(page_size: usize) -> Self {
        Self {
            page_size: page_size.max(1),
            label: None,
            pages_read: AtomicU64::new(0),
            pages_written: AtomicU64::new(0),
        }
    }

    /// Creates counters that additionally mirror every charge into the
    /// global [`trace`] registry under `storage.<label>.pages_{read,written}`
    /// (plus the aggregate `storage.pages_{read,written}`) when tracing is
    /// enabled. The label names the owning physical organization.
    pub fn labeled(page_size: usize, label: &'static str) -> Self {
        Self {
            page_size: page_size.max(1),
            label: Some(label),
            pages_read: AtomicU64::new(0),
            pages_written: AtomicU64::new(0),
        }
    }

    /// Mirrors `pages` read (`write == false`) or written (`write == true`)
    /// into the global metrics registry. One relaxed load when disabled.
    fn mirror(&self, pages: u64, write: bool) {
        if pages == 0 || !trace::is_enabled() {
            return;
        }
        let global = if write { "storage.pages_written" } else { "storage.pages_read" };
        trace::counter(global, pages);
        if let Some(label) = self.label {
            let suffix = if write { "pages_written" } else { "pages_read" };
            trace::counter(&format!("storage.{label}.{suffix}"), pages);
        }
    }

    /// The page size in bytes.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Pages read since the last reset.
    pub fn pages_read(&self) -> u64 {
        self.pages_read.load(Ordering::Relaxed)
    }

    /// Pages written since the last reset.
    pub fn pages_written(&self) -> u64 {
        self.pages_written.load(Ordering::Relaxed)
    }

    /// Zeroes both counters.
    pub fn reset(&self) {
        self.pages_read.store(0, Ordering::Relaxed);
        self.pages_written.store(0, Ordering::Relaxed);
    }

    /// Number of pages an object of `bytes` bytes occupies (min 1 for a
    /// non-empty object).
    pub fn pages_of(&self, bytes: usize) -> u64 {
        if bytes == 0 {
            0
        } else {
            bytes.div_ceil(self.page_size) as u64
        }
    }

    /// Charges a sequential read of `bytes` contiguous bytes.
    pub fn charge_seq_read(&self, bytes: usize) {
        self.charge_page_reads(self.pages_of(bytes));
    }

    /// Charges a sequential write of `bytes` contiguous bytes.
    pub fn charge_seq_write(&self, bytes: usize) {
        self.charge_page_writes(self.pages_of(bytes));
    }

    /// Charges `pages` distinct page reads (caller already deduplicated).
    pub fn charge_page_reads(&self, pages: u64) {
        self.pages_read.fetch_add(pages, Ordering::Relaxed);
        self.mirror(pages, false);
    }

    /// Charges `pages` distinct page writes.
    pub fn charge_page_writes(&self, pages: u64) {
        self.pages_written.fetch_add(pages, Ordering::Relaxed);
        self.mirror(pages, true);
    }

    /// Folds counters accumulated elsewhere (typically an
    /// [`AtomicIoStats`] charged from worker threads) into this one.
    pub fn absorb(&self, reads: u64, writes: u64) {
        self.charge_page_reads(reads);
        self.charge_page_writes(writes);
    }
}

/// Label-free accumulator variant of [`IoStats`] for scoped worker threads
/// (the parallel cube engine's partition scans).
///
/// Counters are relaxed atomics — totals are exact once the threads join,
/// but intermediate reads may interleave arbitrarily. Unlike [`IoStats`] it
/// never mirrors into the trace registry, so workers charge without touching
/// the global metrics mutex; fold the result back into a session's
/// [`IoStats`] with [`IoStats::absorb`].
#[derive(Debug)]
pub struct AtomicIoStats {
    page_size: usize,
    pages_read: AtomicU64,
    pages_written: AtomicU64,
}

impl Default for AtomicIoStats {
    fn default() -> Self {
        Self::new(DEFAULT_PAGE_SIZE)
    }
}

impl AtomicIoStats {
    /// Creates counters with the given page size (bytes, clamped to ≥ 1).
    pub fn new(page_size: usize) -> Self {
        Self {
            page_size: page_size.max(1),
            pages_read: AtomicU64::new(0),
            pages_written: AtomicU64::new(0),
        }
    }

    /// The page size in bytes.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Pages read since creation/reset.
    pub fn pages_read(&self) -> u64 {
        self.pages_read.load(Ordering::Relaxed)
    }

    /// Pages written since creation/reset.
    pub fn pages_written(&self) -> u64 {
        self.pages_written.load(Ordering::Relaxed)
    }

    /// Number of pages an object of `bytes` bytes occupies (0 for empty).
    pub fn pages_of(&self, bytes: usize) -> u64 {
        if bytes == 0 {
            0
        } else {
            bytes.div_ceil(self.page_size) as u64
        }
    }

    /// Charges a sequential read of `bytes` contiguous bytes.
    pub fn charge_seq_read(&self, bytes: usize) {
        self.pages_read.fetch_add(self.pages_of(bytes), Ordering::Relaxed);
    }

    /// Charges a sequential write of `bytes` contiguous bytes.
    pub fn charge_seq_write(&self, bytes: usize) {
        self.pages_written.fetch_add(self.pages_of(bytes), Ordering::Relaxed);
    }

    /// Charges `pages` distinct page reads.
    pub fn charge_page_reads(&self, pages: u64) {
        self.pages_read.fetch_add(pages, Ordering::Relaxed);
    }

    /// Charges `pages` distinct page writes.
    pub fn charge_page_writes(&self, pages: u64) {
        self.pages_written.fetch_add(pages, Ordering::Relaxed);
    }

    /// Zeroes both counters.
    pub fn reset(&self) {
        self.pages_read.store(0, Ordering::Relaxed);
        self.pages_written.store(0, Ordering::Relaxed);
    }
}

/// Collects the *distinct* pages touched by a scattered access pattern
/// across several logical files, then charges them at once — double
/// touches of a (cached) page within one operation are free.
#[derive(Debug, Default)]
pub struct PageSet {
    pages: HashSet<(u32, u64)>,
}

impl PageSet {
    /// An empty page set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Marks the byte range `[offset, offset + len)` of logical file `file`
    /// as touched.
    pub fn touch(&mut self, io: &IoStats, file: u32, offset: usize, len: usize) {
        if len == 0 {
            return;
        }
        let first = offset / io.page_size();
        // Saturate so a range ending at usize::MAX can't overflow the
        // last-byte computation.
        let last = offset.saturating_add(len - 1) / io.page_size();
        for p in first..=last {
            self.pages.insert((file, p as u64));
        }
    }

    /// Number of distinct pages touched so far.
    pub fn page_count(&self) -> u64 {
        self.pages.len() as u64
    }

    /// Charges the collected pages as reads and clears the set.
    pub fn commit_reads(&mut self, io: &IoStats) {
        io.charge_page_reads(self.pages.len() as u64);
        self.pages.clear();
    }

    /// Charges the collected pages as writes and clears the set.
    pub fn commit_writes(&mut self, io: &IoStats) {
        io.charge_page_writes(self.pages.len() as u64);
        self.pages.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seq_read_rounds_up_to_pages() {
        let io = IoStats::new(4096);
        io.charge_seq_read(1);
        assert_eq!(io.pages_read(), 1);
        io.charge_seq_read(4096);
        assert_eq!(io.pages_read(), 2);
        io.charge_seq_read(4097);
        assert_eq!(io.pages_read(), 4);
        io.charge_seq_read(0);
        assert_eq!(io.pages_read(), 4);
        assert_eq!(io.pages_written(), 0);
    }

    #[test]
    fn reset_zeroes_counters() {
        let io = IoStats::new(1024);
        io.charge_seq_read(5000);
        io.charge_seq_write(100);
        assert!(io.pages_read() > 0 && io.pages_written() > 0);
        io.reset();
        assert_eq!(io.pages_read(), 0);
        assert_eq!(io.pages_written(), 0);
    }

    #[test]
    fn page_set_deduplicates_within_operation() {
        let io = IoStats::new(100);
        let mut ps = PageSet::new();
        // Two accesses to the same page of the same file: one page.
        ps.touch(&io, 0, 10, 8);
        ps.touch(&io, 0, 50, 8);
        // Same offsets in a different file: different pages.
        ps.touch(&io, 1, 10, 8);
        assert_eq!(ps.page_count(), 2);
        ps.commit_reads(&io);
        assert_eq!(io.pages_read(), 2);
        assert_eq!(ps.page_count(), 0);
    }

    #[test]
    fn page_set_spans_boundaries() {
        let io = IoStats::new(100);
        let mut ps = PageSet::new();
        ps.touch(&io, 0, 95, 10); // crosses pages 0 and 1
        assert_eq!(ps.page_count(), 2);
        ps.touch(&io, 0, 0, 0); // zero-length touch is free
        assert_eq!(ps.page_count(), 2);
        ps.commit_writes(&io);
        assert_eq!(io.pages_written(), 2);
    }

    #[test]
    fn pages_of_matches_div_ceil() {
        let io = IoStats::new(4096);
        assert_eq!(io.pages_of(0), 0);
        assert_eq!(io.pages_of(1), 1);
        assert_eq!(io.pages_of(4096), 1);
        assert_eq!(io.pages_of(8192), 2);
        assert_eq!(io.pages_of(8193), 3);
    }

    #[test]
    fn zero_byte_objects_cost_nothing() {
        let io = IoStats::new(4096);
        io.charge_seq_read(0);
        io.charge_seq_write(0);
        assert_eq!(io.pages_read(), 0);
        assert_eq!(io.pages_written(), 0);
        let mut ps = PageSet::new();
        ps.touch(&io, 0, 123, 0);
        assert_eq!(ps.page_count(), 0);
    }

    #[test]
    fn exact_page_boundary_sizes() {
        let io = IoStats::new(100);
        // Objects that end exactly on a page boundary occupy exactly n pages.
        for n in 1..=4usize {
            assert_eq!(io.pages_of(n * 100), n as u64);
            assert_eq!(io.pages_of(n * 100 + 1), n as u64 + 1);
        }
        // A touch of exactly one page starting at a boundary: one page.
        let mut ps = PageSet::new();
        ps.touch(&io, 0, 200, 100);
        assert_eq!(ps.page_count(), 1);
        // One byte past the boundary spills into the next page.
        ps.touch(&io, 1, 200, 101);
        assert_eq!(ps.page_count(), 3);
    }

    #[test]
    fn page_size_one_degenerates_to_bytes() {
        let io = IoStats::new(1);
        assert_eq!(io.pages_of(0), 0);
        assert_eq!(io.pages_of(7), 7);
        io.charge_seq_read(5);
        assert_eq!(io.pages_read(), 5);
        let mut ps = PageSet::new();
        ps.touch(&io, 0, 10, 3); // bytes 10,11,12 = three pages
        assert_eq!(ps.page_count(), 3);
        // page_size 0 clamps to 1 rather than dividing by zero.
        let clamped = IoStats::new(0);
        assert_eq!(clamped.page_size(), 1);
        assert_eq!(clamped.pages_of(9), 9);
    }

    #[test]
    fn touch_at_address_space_edge_saturates() {
        let io = IoStats::new(4096);
        let mut ps = PageSet::new();
        // offset + len would overflow usize; the last-byte math saturates
        // instead of panicking.
        ps.touch(&io, 0, usize::MAX - 10, 100);
        assert!(ps.page_count() >= 1);
    }

    #[test]
    fn atomic_variant_charges_from_scoped_threads() {
        let io = AtomicIoStats::new(4096);
        assert_eq!(io.page_size(), 4096);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        io.charge_page_reads(1);
                        io.charge_seq_write(4097);
                    }
                });
            }
        });
        assert_eq!(io.pages_read(), 4000);
        assert_eq!(io.pages_written(), 8000);
        // Folding into a session-local IoStats.
        let local = IoStats::new(4096);
        local.absorb(io.pages_read(), io.pages_written());
        assert_eq!(local.pages_read(), 4000);
        io.reset();
        assert_eq!(io.pages_read(), 0);
        assert_eq!(AtomicIoStats::default().page_size(), DEFAULT_PAGE_SIZE);
    }
}
