//! Page-granular simulated I/O accounting.
//!
//! Every claim in §6 of the paper — transposition wins for summary queries,
//! chunking reduces range-query I/O, compression shrinks what must be
//! touched — is a claim about **how many blocks must be read from secondary
//! storage**. The stores in this crate are in-memory, but each charges an
//! [`IoStats`] counter with the pages a disk-resident layout would touch, so
//! benches report the quantity the surveyed systems actually optimized.
//! Absolute latencies of 1980s–90s testbeds are *not* modeled (see
//! DESIGN.md, substitutions).

use std::cell::Cell;
use std::collections::HashSet;

/// Default page size used across the crate (4 KiB).
pub const DEFAULT_PAGE_SIZE: usize = 4096;

/// Read/write page counters with a fixed page size.
#[derive(Debug)]
pub struct IoStats {
    page_size: usize,
    pages_read: Cell<u64>,
    pages_written: Cell<u64>,
}

impl Default for IoStats {
    fn default() -> Self {
        Self::new(DEFAULT_PAGE_SIZE)
    }
}

impl IoStats {
    /// Creates counters with the given page size (bytes, ≥ 1).
    pub fn new(page_size: usize) -> Self {
        Self { page_size: page_size.max(1), pages_read: Cell::new(0), pages_written: Cell::new(0) }
    }

    /// The page size in bytes.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Pages read since the last reset.
    pub fn pages_read(&self) -> u64 {
        self.pages_read.get()
    }

    /// Pages written since the last reset.
    pub fn pages_written(&self) -> u64 {
        self.pages_written.get()
    }

    /// Zeroes both counters.
    pub fn reset(&self) {
        self.pages_read.set(0);
        self.pages_written.set(0);
    }

    /// Number of pages an object of `bytes` bytes occupies (min 1 for a
    /// non-empty object).
    pub fn pages_of(&self, bytes: usize) -> u64 {
        if bytes == 0 {
            0
        } else {
            bytes.div_ceil(self.page_size) as u64
        }
    }

    /// Charges a sequential read of `bytes` contiguous bytes.
    pub fn charge_seq_read(&self, bytes: usize) {
        self.pages_read.set(self.pages_read.get() + self.pages_of(bytes));
    }

    /// Charges a sequential write of `bytes` contiguous bytes.
    pub fn charge_seq_write(&self, bytes: usize) {
        self.pages_written.set(self.pages_written.get() + self.pages_of(bytes));
    }

    /// Charges `pages` distinct page reads (caller already deduplicated).
    pub fn charge_page_reads(&self, pages: u64) {
        self.pages_read.set(self.pages_read.get() + pages);
    }

    /// Charges `pages` distinct page writes.
    pub fn charge_page_writes(&self, pages: u64) {
        self.pages_written.set(self.pages_written.get() + pages);
    }
}

/// Collects the *distinct* pages touched by a scattered access pattern
/// across several logical files, then charges them at once — double
/// touches of a (cached) page within one operation are free.
#[derive(Debug, Default)]
pub struct PageSet {
    pages: HashSet<(u32, u64)>,
}

impl PageSet {
    /// An empty page set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Marks the byte range `[offset, offset + len)` of logical file `file`
    /// as touched.
    pub fn touch(&mut self, io: &IoStats, file: u32, offset: usize, len: usize) {
        if len == 0 {
            return;
        }
        let first = offset / io.page_size();
        let last = (offset + len - 1) / io.page_size();
        for p in first..=last {
            self.pages.insert((file, p as u64));
        }
    }

    /// Number of distinct pages touched so far.
    pub fn page_count(&self) -> u64 {
        self.pages.len() as u64
    }

    /// Charges the collected pages as reads and clears the set.
    pub fn commit_reads(&mut self, io: &IoStats) {
        io.charge_page_reads(self.pages.len() as u64);
        self.pages.clear();
    }

    /// Charges the collected pages as writes and clears the set.
    pub fn commit_writes(&mut self, io: &IoStats) {
        io.charge_page_writes(self.pages.len() as u64);
        self.pages.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seq_read_rounds_up_to_pages() {
        let io = IoStats::new(4096);
        io.charge_seq_read(1);
        assert_eq!(io.pages_read(), 1);
        io.charge_seq_read(4096);
        assert_eq!(io.pages_read(), 2);
        io.charge_seq_read(4097);
        assert_eq!(io.pages_read(), 4);
        io.charge_seq_read(0);
        assert_eq!(io.pages_read(), 4);
        assert_eq!(io.pages_written(), 0);
    }

    #[test]
    fn reset_zeroes_counters() {
        let io = IoStats::new(1024);
        io.charge_seq_read(5000);
        io.charge_seq_write(100);
        assert!(io.pages_read() > 0 && io.pages_written() > 0);
        io.reset();
        assert_eq!(io.pages_read(), 0);
        assert_eq!(io.pages_written(), 0);
    }

    #[test]
    fn page_set_deduplicates_within_operation() {
        let io = IoStats::new(100);
        let mut ps = PageSet::new();
        // Two accesses to the same page of the same file: one page.
        ps.touch(&io, 0, 10, 8);
        ps.touch(&io, 0, 50, 8);
        // Same offsets in a different file: different pages.
        ps.touch(&io, 1, 10, 8);
        assert_eq!(ps.page_count(), 2);
        ps.commit_reads(&io);
        assert_eq!(io.pages_read(), 2);
        assert_eq!(ps.page_count(), 0);
    }

    #[test]
    fn page_set_spans_boundaries() {
        let io = IoStats::new(100);
        let mut ps = PageSet::new();
        ps.touch(&io, 0, 95, 10); // crosses pages 0 and 1
        assert_eq!(ps.page_count(), 2);
        ps.touch(&io, 0, 0, 0); // zero-length touch is free
        assert_eq!(ps.page_count(), 2);
        ps.commit_writes(&io);
        assert_eq!(io.pages_written(), 2);
    }

    #[test]
    fn pages_of_matches_div_ceil() {
        let io = IoStats::new(4096);
        assert_eq!(io.pages_of(0), 0);
        assert_eq!(io.pages_of(1), 1);
        assert_eq!(io.pages_of(4096), 1);
        assert_eq!(io.pages_of(8192), 2);
        assert_eq!(io.pages_of(8193), 3);
    }
}
