//! The shared logical relation behind the row and transposed stores.
//!
//! Fig 10's flat relational representation of a statistical object — six
//! category columns followed by measure columns — is the logical input to
//! both the row-oriented store ([`crate::row::RowStore`]) and the transposed
//! store ([`crate::column::TransposedStore`]). [`Relation`] holds that data
//! dictionary-encoded; the stores differ only in how they charge I/O.

use statcube_core::dictionary::Dictionary;
use statcube_core::error::{Error, Result};
use statcube_core::microdata::MicroTable;

/// A conjunction of equality predicates over category columns.
pub type EqPredicates = Vec<(usize, u32)>;

/// Dictionary-encoded relational data: category columns (`u32` codes) and
/// measure columns (`f64`).
#[derive(Debug, Clone, PartialEq)]
pub struct Relation {
    cat_names: Vec<String>,
    dicts: Vec<Dictionary>,
    cats: Vec<Vec<u32>>,
    num_names: Vec<String>,
    nums: Vec<Vec<f64>>,
    n_rows: usize,
}

impl Relation {
    /// An empty relation with the given column names.
    pub fn new(categorical: &[&str], numeric: &[&str]) -> Self {
        Self {
            cat_names: categorical.iter().map(|s| (*s).to_owned()).collect(),
            dicts: vec![Dictionary::new(); categorical.len()],
            cats: vec![Vec::new(); categorical.len()],
            num_names: numeric.iter().map(|s| (*s).to_owned()).collect(),
            nums: vec![Vec::new(); numeric.len()],
            n_rows: 0,
        }
    }

    /// Imports a [`MicroTable`] wholesale.
    pub fn from_micro(micro: &MicroTable) -> Result<Self> {
        let cat_names: Vec<&str> = micro.categorical_names().iter().map(String::as_str).collect();
        let num_names: Vec<&str> = micro.numeric_names().iter().map(String::as_str).collect();
        let mut rel = Relation::new(&cat_names, &num_names);
        let mut cats = Vec::with_capacity(cat_names.len());
        let mut nums = Vec::with_capacity(num_names.len());
        for row in 0..micro.len() {
            cats.clear();
            nums.clear();
            for c in &cat_names {
                cats.push(micro.cat_value(c, row)?);
            }
            for n in &num_names {
                nums.push(micro.num_value(n, row)?);
            }
            rel.push(&cats, &nums)?;
        }
        Ok(rel)
    }

    /// Appends one row by value.
    pub fn push(&mut self, cats: &[&str], nums: &[f64]) -> Result<()> {
        if cats.len() != self.cat_names.len() || nums.len() != self.num_names.len() {
            return Err(Error::ArityMismatch {
                expected: self.cat_names.len() + self.num_names.len(),
                got: cats.len() + nums.len(),
            });
        }
        for (i, c) in cats.iter().enumerate() {
            let id = self.dicts[i].intern(c);
            self.cats[i].push(id);
        }
        for (i, &v) in nums.iter().enumerate() {
            self.nums[i].push(v);
        }
        self.n_rows += 1;
        Ok(())
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.n_rows
    }

    /// True if the relation has no rows.
    pub fn is_empty(&self) -> bool {
        self.n_rows == 0
    }

    /// Number of category columns.
    pub fn cat_count(&self) -> usize {
        self.cat_names.len()
    }

    /// Number of measure columns.
    pub fn num_count(&self) -> usize {
        self.num_names.len()
    }

    /// Index of a category column.
    pub fn cat_index(&self, name: &str) -> Result<usize> {
        self.cat_names
            .iter()
            .position(|n| n == name)
            .ok_or_else(|| Error::ColumnError(format!("no categorical column `{name}`")))
    }

    /// Index of a measure column.
    pub fn num_index(&self, name: &str) -> Result<usize> {
        self.num_names
            .iter()
            .position(|n| n == name)
            .ok_or_else(|| Error::ColumnError(format!("no numeric column `{name}`")))
    }

    /// The dictionary of category column `i`.
    pub fn dictionary(&self, i: usize) -> &Dictionary {
        &self.dicts[i]
    }

    /// Raw codes of category column `i`.
    pub fn cat_column(&self, i: usize) -> &[u32] {
        &self.cats[i]
    }

    /// Raw values of measure column `i`.
    pub fn num_column(&self, i: usize) -> &[f64] {
        &self.nums[i]
    }

    /// Resolves `(column name, value)` pairs into an [`EqPredicates`] id
    /// list. Unknown values resolve to a predicate that matches nothing.
    pub fn predicates(&self, preds: &[(&str, &str)]) -> Result<EqPredicates> {
        preds
            .iter()
            .map(|(col, val)| {
                let c = self.cat_index(col)?;
                // u32::MAX never matches a real code.
                Ok((c, self.dicts[c].id_of(val).unwrap_or(u32::MAX)))
            })
            .collect()
    }

    /// True if row `row` satisfies all predicates.
    pub fn matches(&self, row: usize, preds: &EqPredicates) -> bool {
        preds.iter().all(|&(c, id)| self.cats[c][row] == id)
    }

    /// Evaluates `sum`/`count` of measure `m` over rows matching `preds`,
    /// without any I/O accounting (the logical answer both stores must
    /// produce).
    pub fn sum_where(&self, preds: &EqPredicates, m: usize) -> (f64, u64) {
        let mut sum = 0.0;
        let mut count = 0;
        for row in 0..self.n_rows {
            if self.matches(row, preds) {
                sum += self.nums[m][row];
                count += 1;
            }
        }
        (sum, count)
    }

    /// One full row by value: `(category codes, measure values)`.
    pub fn row(&self, row: usize) -> (Vec<u32>, Vec<f64>) {
        (self.cats.iter().map(|c| c[row]).collect(), self.nums.iter().map(|n| n[row]).collect())
    }

    /// Bytes of one uncompressed row: 4 per category code, 8 per measure.
    pub fn row_bytes(&self) -> usize {
        4 * self.cat_names.len() + 8 * self.num_names.len()
    }

    /// Deterministic serialization of the query-relevant payload (category
    /// codes column-major, then measure columns): what the row/transposed
    /// stores seal and scrub. Dictionary strings are metadata, not sealed.
    pub(crate) fn payload_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.total_bytes() + 8);
        out.extend_from_slice(&(self.n_rows as u64).to_le_bytes());
        for col in &self.cats {
            for &c in col {
                out.extend_from_slice(&c.to_le_bytes());
            }
        }
        for col in &self.nums {
            for &v in col {
                out.extend_from_slice(&v.to_bits().to_le_bytes());
            }
        }
        out
    }

    /// Fault-injection hook: flips one stored bit of the payload (measures
    /// first, then category codes; `bit` wraps).
    pub(crate) fn flip_payload_bit(&mut self, bit: u64) {
        let num_bits: u64 = self.nums.iter().map(|c| c.len() as u64 * 64).sum();
        let cat_bits: u64 = self.cats.iter().map(|c| c.len() as u64 * 32).sum();
        if num_bits + cat_bits == 0 {
            return;
        }
        let mut bit = bit % (num_bits + cat_bits);
        if bit < num_bits {
            for col in &mut self.nums {
                let span = col.len() as u64 * 64;
                if bit < span {
                    crate::verify::flip_f64_bit(col, bit);
                    return;
                }
                bit -= span;
            }
        }
        bit -= num_bits;
        for col in &mut self.cats {
            let span = col.len() as u64 * 32;
            if bit < span {
                crate::verify::flip_u32_bit(col, bit);
                return;
            }
            bit -= span;
        }
    }

    /// Total uncompressed bytes of the relation.
    pub fn total_bytes(&self) -> usize {
        self.row_bytes() * self.n_rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel() -> Relation {
        let mut r = Relation::new(&["state", "sex"], &["pop", "income"]);
        r.push(&["AL", "m"], &[10.0, 100.0]).unwrap();
        r.push(&["AL", "f"], &[11.0, 110.0]).unwrap();
        r.push(&["CA", "m"], &[20.0, 200.0]).unwrap();
        r
    }

    #[test]
    fn push_and_shape() {
        let mut r = rel();
        assert_eq!(r.len(), 3);
        assert_eq!(r.cat_count(), 2);
        assert_eq!(r.num_count(), 2);
        assert_eq!(r.row_bytes(), 2 * 4 + 2 * 8);
        assert_eq!(r.total_bytes(), 3 * 24);
        assert!(r.push(&["AL"], &[1.0, 2.0]).is_err());
    }

    #[test]
    fn predicates_and_sums() {
        let r = rel();
        let p = r.predicates(&[("state", "AL")]).unwrap();
        assert_eq!(r.sum_where(&p, 0), (21.0, 2));
        let p2 = r.predicates(&[("state", "AL"), ("sex", "f")]).unwrap();
        assert_eq!(r.sum_where(&p2, 1), (110.0, 1));
        // Unknown value matches nothing rather than erroring.
        let p3 = r.predicates(&[("state", "TX")]).unwrap();
        assert_eq!(r.sum_where(&p3, 0), (0.0, 0));
        assert!(r.predicates(&[("planet", "earth")]).is_err());
    }

    #[test]
    fn row_access() {
        let r = rel();
        let (cats, nums) = r.row(2);
        assert_eq!(cats, vec![1, 0]); // CA is the 2nd state, m the 1st sex
        assert_eq!(nums, vec![20.0, 200.0]);
    }

    #[test]
    fn from_micro_round_trips() {
        let mut m = MicroTable::new(&["a"], &["x"]);
        m.push(&["p"], &[1.0]).unwrap();
        m.push(&["q"], &[2.0]).unwrap();
        let r = Relation::from_micro(&m).unwrap();
        assert_eq!(r.len(), 2);
        assert_eq!(r.num_column(0), &[1.0, 2.0]);
        assert_eq!(r.dictionary(0).value_of(1), Some("q"));
    }
}
