//! Subcube (chunk) partitioning of the data cube (§6.4, Fig 23, \[SS94\],
//! \[CD+95\]).
//!
//! Range ("slice and dice") queries touch a contiguous region of the
//! multidimensional space; pre-partitioning the cube into subcubes means
//! only the subcubes overlapping the query region are read from secondary
//! storage. With no workload knowledge, partitioning is *symmetric* (equal
//! sub-dimensions); when typical query shapes are known, a *non-symmetric*
//! shape aligned to them does better — \[CD+95\] showed choosing it optimally
//! is NP-complete, so experiment E16 sweeps shapes instead.

use statcube_core::error::{Error, Result};

use crate::io_stats::IoStats;
use crate::linear::LinearizedArray;
use crate::verify::{ChecksumManifest, ScrubReport, Scrubbable};

/// A multidimensional array stored as a grid of dense chunks. Chunks are
/// allocated lazily on first write; absent cells are `NaN`.
#[derive(Debug)]
pub struct ChunkedArray {
    dims: Vec<usize>,
    chunk_shape: Vec<usize>,
    /// Chunks per dimension.
    grid: Vec<usize>,
    chunks: Vec<Option<Box<[f64]>>>,
    io: IoStats,
}

impl ChunkedArray {
    /// A chunked array of logical shape `dims`, chunk shape `chunk_shape`
    /// (clamped per-dimension to `dims`), with the given page size.
    pub fn new(dims: &[usize], chunk_shape: &[usize], page_size: usize) -> Result<Self> {
        if dims.is_empty() || dims.contains(&0) {
            return Err(Error::InvalidSchema("array needs non-zero dimensions".into()));
        }
        if chunk_shape.len() != dims.len() || chunk_shape.contains(&0) {
            return Err(Error::InvalidSchema("chunk shape must match dims and be non-zero".into()));
        }
        let chunk_shape: Vec<usize> =
            chunk_shape.iter().zip(dims).map(|(&c, &d)| c.min(d)).collect();
        let grid: Vec<usize> =
            dims.iter().zip(&chunk_shape).map(|(&d, &c)| d.div_ceil(c)).collect();
        let n_chunks = grid.iter().product();
        Ok(Self {
            dims: dims.to_vec(),
            chunk_shape,
            grid,
            chunks: vec![None; n_chunks],
            io: IoStats::labeled(page_size, "chunked"),
        })
    }

    /// Symmetric partitioning: the same chunk side in every dimension
    /// (§6.4's no-workload-knowledge default).
    pub fn symmetric(dims: &[usize], side: usize, page_size: usize) -> Result<Self> {
        Self::new(dims, &vec![side; dims.len()], page_size)
    }

    /// Loads a dense linearized array into chunks of the given shape.
    pub fn from_linearized(
        arr: &LinearizedArray,
        chunk_shape: &[usize],
        page_size: usize,
    ) -> Result<Self> {
        let mut c = Self::new(arr.dims(), chunk_shape, page_size)?;
        for off in 0..arr.len() {
            let v = arr.dense_values()[off];
            if !v.is_nan() {
                let coords = arr.coords_of(off)?;
                c.set(&coords, v)?;
            }
        }
        c.io.reset(); // loading is not part of any measured query
        Ok(c)
    }

    /// The logical shape.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// The chunk shape actually in use.
    pub fn chunk_shape(&self) -> &[usize] {
        &self.chunk_shape
    }

    /// The I/O counters.
    pub fn io(&self) -> &IoStats {
        &self.io
    }

    /// Cells per chunk.
    pub fn chunk_cells(&self) -> usize {
        self.chunk_shape.iter().product()
    }

    /// Bytes per chunk.
    pub fn chunk_bytes(&self) -> usize {
        self.chunk_cells() * 8
    }

    /// Number of chunks that hold at least one value.
    pub fn allocated_chunks(&self) -> usize {
        self.chunks.iter().filter(|c| c.is_some()).count()
    }

    /// Stored bytes (allocated chunks only).
    pub fn size_bytes(&self) -> usize {
        self.allocated_chunks() * self.chunk_bytes()
    }

    #[allow(clippy::needless_range_loop)] // odometer over several parallel arrays
    fn chunk_and_offset(&self, coords: &[usize]) -> Result<(usize, usize)> {
        if coords.len() != self.dims.len() {
            return Err(Error::ArityMismatch { expected: self.dims.len(), got: coords.len() });
        }
        let mut chunk = 0usize;
        let mut offset = 0usize;
        for d in 0..self.dims.len() {
            if coords[d] >= self.dims[d] {
                return Err(Error::InvalidSchema(format!(
                    "coordinate {} out of range {}",
                    coords[d], self.dims[d]
                )));
            }
            chunk = chunk * self.grid[d] + coords[d] / self.chunk_shape[d];
            offset = offset * self.chunk_shape[d] + coords[d] % self.chunk_shape[d];
        }
        Ok((chunk, offset))
    }

    /// Writes a cell, allocating its chunk if needed.
    pub fn set(&mut self, coords: &[usize], v: f64) -> Result<()> {
        let (chunk, offset) = self.chunk_and_offset(coords)?;
        let cells = self.chunk_cells();
        let slot =
            self.chunks[chunk].get_or_insert_with(|| vec![f64::NAN; cells].into_boxed_slice());
        slot[offset] = v;
        Ok(())
    }

    /// Reads a cell (no I/O charged; use range queries for measured access).
    pub fn get(&self, coords: &[usize]) -> Result<Option<f64>> {
        let (chunk, offset) = self.chunk_and_offset(coords)?;
        Ok(self.chunks[chunk].as_ref().and_then(|c| {
            let v = c[offset];
            if v.is_nan() {
                None
            } else {
                Some(v)
            }
        }))
    }

    /// Number of chunks overlapping the half-open region `[lo, hi)`
    /// (allocated or not — the partitioning property, independent of data).
    pub fn chunks_overlapping(&self, lo: &[usize], hi: &[usize]) -> usize {
        let mut n = 1usize;
        for d in 0..self.dims.len() {
            if hi[d] <= lo[d] {
                return 0;
            }
            let c0 = lo[d] / self.chunk_shape[d];
            let c1 = (hi[d] - 1) / self.chunk_shape[d];
            n *= c1 - c0 + 1;
        }
        n
    }

    /// Range query: sum and count over the half-open region `[lo, hi)`.
    /// Charges one whole-chunk read per *allocated* chunk overlapping the
    /// region — the access software must read and assemble whole subcubes
    /// (§6.4).
    #[allow(clippy::needless_range_loop)] // odometer over several parallel arrays
    pub fn range_sum(&self, lo: &[usize], hi: &[usize]) -> Result<(f64, u64)> {
        if lo.len() != self.dims.len() || hi.len() != self.dims.len() {
            return Err(Error::ArityMismatch { expected: self.dims.len(), got: lo.len() });
        }
        for d in 0..self.dims.len() {
            if hi[d] > self.dims[d] {
                return Err(Error::InvalidSchema(format!(
                    "range end {} out of range {}",
                    hi[d], self.dims[d]
                )));
            }
        }
        let mut sum = 0.0;
        let mut count = 0u64;
        // Enumerate overlapping chunk grid coordinates.
        let mut chunk_lo = Vec::with_capacity(self.dims.len());
        let mut chunk_hi = Vec::with_capacity(self.dims.len());
        for d in 0..self.dims.len() {
            if hi[d] <= lo[d] {
                return Ok((0.0, 0));
            }
            chunk_lo.push(lo[d] / self.chunk_shape[d]);
            chunk_hi.push((hi[d] - 1) / self.chunk_shape[d]);
        }
        let mut cursor = chunk_lo.clone();
        loop {
            let mut chunk_idx = 0usize;
            for d in 0..self.dims.len() {
                chunk_idx = chunk_idx * self.grid[d] + cursor[d];
            }
            if let Some(chunk) = &self.chunks[chunk_idx] {
                self.io.charge_seq_read(self.chunk_bytes());
                // Iterate the intersection of the query region and this
                // chunk.
                let mut cell_lo = Vec::with_capacity(self.dims.len());
                let mut cell_hi = Vec::with_capacity(self.dims.len());
                for d in 0..self.dims.len() {
                    let base = cursor[d] * self.chunk_shape[d];
                    cell_lo.push(lo[d].max(base) - base);
                    cell_hi.push(hi[d].min(base + self.chunk_shape[d]) - base);
                }
                let mut cc = cell_lo.clone();
                'cells: loop {
                    let mut off = 0usize;
                    for d in 0..self.dims.len() {
                        off = off * self.chunk_shape[d] + cc[d];
                    }
                    let v = chunk[off];
                    if !v.is_nan() {
                        sum += v;
                        count += 1;
                    }
                    for d in (0..self.dims.len()).rev() {
                        cc[d] += 1;
                        if cc[d] < cell_hi[d] {
                            continue 'cells;
                        }
                        cc[d] = cell_lo[d];
                        if d == 0 {
                            break 'cells;
                        }
                    }
                }
            }
            // Advance the chunk cursor.
            let mut d = self.dims.len();
            loop {
                if d == 0 {
                    return Ok((sum, count));
                }
                d -= 1;
                cursor[d] += 1;
                if cursor[d] <= chunk_hi[d] {
                    break;
                }
                cursor[d] = chunk_lo[d];
            }
        }
    }

    /// Seals the allocated chunks into a checksum manifest.
    pub fn seal(&self) -> ChecksumManifest {
        ChecksumManifest::seal(self)
    }

    /// Re-checksums the allocated chunks against a seal, charging the
    /// store's I/O counters, and reports failing pages.
    pub fn scrub(&self, seal: &ChecksumManifest) -> ScrubReport {
        seal.scrub(self, Some(&self.io))
    }

    /// [`ChunkedArray::scrub`], converted to a typed error on the first
    /// failing page.
    pub fn verify_all(&self, seal: &ChecksumManifest) -> Result<ScrubReport> {
        seal.verify_all(self, Some(&self.io))
    }
}

impl Scrubbable for ChunkedArray {
    fn object_name(&self) -> String {
        format!("ChunkedArray{:?}", self.dims)
    }

    fn content_bytes(&self) -> Vec<u8> {
        // Allocated chunks only, each prefixed with its grid index so a
        // chunk appearing or vanishing also changes the content.
        let mut out = Vec::new();
        for (i, chunk) in self.chunks.iter().enumerate() {
            if let Some(cells) = chunk {
                out.extend_from_slice(&(i as u64).to_le_bytes());
                for v in cells.iter() {
                    out.extend_from_slice(&v.to_bits().to_le_bytes());
                }
            }
        }
        out
    }

    fn inject_bitflip(&mut self, bit: u64) {
        let cells = self.chunk_cells() as u64 * 64;
        let n_alloc = self.chunks.iter().filter(|c| c.is_some()).count() as u64;
        if n_alloc == 0 || cells == 0 {
            return;
        }
        let bit = bit % (n_alloc * cells);
        let (target, within) = (bit / cells, bit % cells);
        // `target < n_alloc` by the modulo above; a fault-injection hook
        // degrades to a no-op rather than panicking if that ever breaks.
        if let Some(chunk) = self.chunks.iter_mut().filter_map(Option::as_mut).nth(target as usize)
        {
            crate::verify::flip_f64_bit(chunk, within);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filled(dims: &[usize], chunk: &[usize]) -> ChunkedArray {
        let mut a = ChunkedArray::new(dims, chunk, 4096).unwrap();
        let total: usize = dims.iter().product();
        for off in 0..total {
            let mut coords = Vec::with_capacity(dims.len());
            let mut rem = off;
            for d in (0..dims.len()).rev() {
                coords.push(rem % dims[d]);
                rem /= dims[d];
            }
            coords.reverse();
            a.set(&coords, off as f64).unwrap();
        }
        a.io().reset();
        a
    }

    #[test]
    fn get_set_round_trip() {
        let mut a = ChunkedArray::new(&[10, 10], &[4, 4], 4096).unwrap();
        assert_eq!(a.get(&[3, 7]).unwrap(), None);
        a.set(&[3, 7], 5.0).unwrap();
        a.set(&[9, 9], 6.0).unwrap();
        assert_eq!(a.get(&[3, 7]).unwrap(), Some(5.0));
        assert_eq!(a.get(&[9, 9]).unwrap(), Some(6.0));
        assert_eq!(a.allocated_chunks(), 2);
        assert!(a.get(&[10, 0]).is_err());
        assert!(a.set(&[0], 1.0).is_err());
    }

    #[test]
    fn range_sum_matches_naive() {
        let a = filled(&[12, 9], &[5, 4]);
        let (sum, count) = a.range_sum(&[2, 3], &[7, 8]).unwrap();
        let mut expected = 0.0;
        let mut n = 0;
        for i in 2..7 {
            for j in 3..8 {
                expected += (i * 9 + j) as f64;
                n += 1;
            }
        }
        assert_eq!(sum, expected);
        assert_eq!(count, n);
    }

    #[test]
    fn io_charges_only_overlapping_chunks() {
        let a = filled(&[100, 100], &[10, 10]);
        // Query region [0,10)x[0,10): exactly 1 chunk.
        a.range_sum(&[0, 0], &[10, 10]).unwrap();
        let one_chunk_pages = a.io().pages_read();
        assert_eq!(one_chunk_pages, a.io().pages_of(a.chunk_bytes()));
        a.io().reset();
        // Region straddling 4 chunks.
        a.range_sum(&[5, 5], &[15, 15]).unwrap();
        assert_eq!(a.io().pages_read(), 4 * one_chunk_pages);
        assert_eq!(a.chunks_overlapping(&[5, 5], &[15, 15]), 4);
    }

    #[test]
    fn non_symmetric_chunks_match_query_shape() {
        // Row-shaped queries: [1 row] x [all columns].
        let sym = filled(&[64, 64], &[8, 8]);
        let tuned = filled(&[64, 64], &[1, 64]);
        let (s1, _) = sym.range_sum(&[10, 0], &[11, 64]).unwrap();
        let (s2, _) = tuned.range_sum(&[10, 0], &[11, 64]).unwrap();
        assert_eq!(s1, s2);
        // Symmetric touches 8 chunks of 64 cells; tuned touches 1 chunk of
        // 64 cells.
        assert_eq!(sym.chunks_overlapping(&[10, 0], &[11, 64]), 8);
        assert_eq!(tuned.chunks_overlapping(&[10, 0], &[11, 64]), 1);
        assert!(tuned.io().pages_read() < sym.io().pages_read());
    }

    #[test]
    fn empty_and_degenerate_ranges() {
        let a = filled(&[10, 10], &[4, 4]);
        assert_eq!(a.range_sum(&[3, 3], &[3, 9]).unwrap(), (0.0, 0));
        assert_eq!(a.chunks_overlapping(&[3, 3], &[3, 9]), 0);
        assert!(a.range_sum(&[0, 0], &[11, 5]).is_err());
        assert!(a.range_sum(&[0], &[1]).is_err());
    }

    #[test]
    fn sparse_allocation_skips_empty_chunks() {
        let mut a = ChunkedArray::symmetric(&[100, 100], 10, 4096).unwrap();
        a.set(&[0, 0], 1.0).unwrap();
        a.set(&[99, 99], 2.0).unwrap();
        assert_eq!(a.allocated_chunks(), 2);
        assert_eq!(a.size_bytes(), 2 * a.chunk_bytes());
        a.io().reset();
        // A full-cube range query charges only the 2 allocated chunks.
        let (sum, count) = a.range_sum(&[0, 0], &[100, 100]).unwrap();
        assert_eq!((sum, count), (3.0, 2));
        assert_eq!(a.io().pages_read(), 2 * a.io().pages_of(a.chunk_bytes()));
    }

    #[test]
    fn from_linearized_round_trips() {
        let mut lin = LinearizedArray::new(&[6, 6]).unwrap();
        lin.set(&[1, 2], 3.0).unwrap();
        lin.set(&[5, 5], 4.0).unwrap();
        let c = ChunkedArray::from_linearized(&lin, &[2, 2], 4096).unwrap();
        assert_eq!(c.get(&[1, 2]).unwrap(), Some(3.0));
        assert_eq!(c.get(&[5, 5]).unwrap(), Some(4.0));
        assert_eq!(c.get(&[0, 0]).unwrap(), None);
        assert_eq!(c.io().pages_read(), 0);
    }

    #[test]
    fn chunk_shape_clamped_to_dims() {
        let a = ChunkedArray::new(&[3, 3], &[10, 2], 4096).unwrap();
        assert_eq!(a.chunk_shape(), &[3, 2]);
        assert!(ChunkedArray::new(&[3], &[0], 4096).is_err());
        assert!(ChunkedArray::new(&[3], &[1, 1], 4096).is_err());
    }
}
