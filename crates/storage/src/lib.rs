//! # statcube-storage
//!
//! Every physical organization surveyed in §6 of Shoshani (PODS 1997),
//! implemented from scratch over a page-granular simulated I/O layer
//! ([`io_stats`]) so benches report the block-access counts the surveyed
//! systems optimized:
//!
//! * [`row`] — the flat relational baseline (Fig 10);
//! * [`mod@column`] — transposed (vertically partitioned) files (\[THC79\]);
//! * [`encoding`] + [`rle`] + [`bittransposed`] — encoded, run-length
//!   compressed, and bit-sliced columns (\[WL+85\], Fig 19), with
//!   [`chunks`] supplying the batch-at-a-time aggregation kernels those
//!   layouts were designed for (run-aware, bitmap-filtered, grouped);
//! * [`header`] — header compression of sparse linearized arrays
//!   (\[EOA81\], Fig 21), searched through the [`btree`] B+tree, with the
//!   [`lzw`] codec as the general-purpose alternative §6.2 mentions;
//! * [`linear`] — array linearization, the MOLAP representation (Fig 20);
//! * [`chunked`] — subcube partitioning for range queries (\[SS94\], Fig 23);
//! * [`extendible`] — extendible arrays for incremental appends
//!   (\[RZ86\], Fig 24), and the [`cubetree`] packed R-tree for bulk cube
//!   updates (\[RKR97\]);
//! * [`star`] — the ROLAP star schema (Fig 11).
//!
//! The paper assumes secondary storage is reliable; this crate does not.
//! [`page_store`] adds a checksummed paged store with deterministic fault
//! injection and retry/backoff ([`crc32`] supplies the in-tree checksum),
//! and [`verify`] gives every store above a seal/scrub pass that turns
//! silent corruption into typed errors. [`wal`] adds the write-ahead delta
//! journal and crash-point instrumentation that make incremental cube
//! maintenance crash-consistent (torn-tail detection, atomically-swapped
//! commit manifest, kill-testable write path).

#![warn(missing_docs)]

pub mod bittransposed;
pub mod btree;
pub mod chunked;
pub mod chunks;
pub mod column;
pub mod crc32;
pub mod cubetree;
pub mod encoding;
pub mod extendible;
pub mod header;
pub mod io_stats;
pub mod linear;
pub mod lzw;
pub mod page_store;
pub mod relation;
pub mod rle;
pub mod row;
pub mod star;
pub mod verify;
pub mod wal;

/// The most commonly used types, for glob import.
pub mod prelude {
    pub use crate::bittransposed::BitSlicedColumn;
    pub use crate::btree::BPlusTree;
    pub use crate::chunked::ChunkedArray;
    pub use crate::chunks::{
        aggregate_chunks, aggregate_dense, aggregate_runs, dense_chunks, filtered_aggregate,
        group_aggregate, run_chunks, MeasureChunk,
    };
    pub use crate::column::TransposedStore;
    pub use crate::cubetree::CubeTree;
    pub use crate::encoding::EncodedColumn;
    pub use crate::extendible::ExtendibleArray;
    pub use crate::header::HeaderCompressed;
    pub use crate::io_stats::{AtomicIoStats, IoStats, PageSet, DEFAULT_PAGE_SIZE};
    pub use crate::linear::LinearizedArray;
    pub use crate::page_store::{FaultInjector, FaultPlan, FaultStats, PageStore, RetryPolicy};
    pub use crate::relation::Relation;
    pub use crate::rle::Rle;
    pub use crate::row::RowStore;
    pub use crate::star::{DimensionTable, StarSchema};
    pub use crate::verify::{ChecksumManifest, ScrubReport, Scrubbable};
    pub use crate::wal::{
        CrashInjector, CrashPoint, DeltaJournal, Manifest, ManifestCell, RecordKind,
    };
}
