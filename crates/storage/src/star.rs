//! Star schemas (§4.3, Fig 11, \[MicroStrategy\]).
//!
//! The ROLAP representation: a central **fact table** holding dimension
//! foreign keys and measures, surrounded by **dimension tables** holding
//! each dimension's descriptive and category attributes (e.g. the hospital
//! table's `city`, `state` columns). Versus the flat Fig 10 relation, the
//! fact table repeats only compact keys, and attribute predicates are
//! resolved against the (small) dimension tables first.

use statcube_core::error::{Error, Result};

use crate::io_stats::IoStats;
use crate::verify::{ChecksumManifest, ScrubReport, Scrubbable};

/// One dimension table: implicit integer primary key (row index) plus named
/// string attribute columns.
#[derive(Debug, Clone)]
pub struct DimensionTable {
    name: String,
    attr_names: Vec<String>,
    /// Column-major attribute values.
    attrs: Vec<Vec<String>>,
    rows: usize,
}

impl DimensionTable {
    /// An empty dimension table with the given attribute columns.
    pub fn new(name: impl Into<String>, attr_names: &[&str]) -> Self {
        Self {
            name: name.into(),
            attr_names: attr_names.iter().map(|s| (*s).to_owned()).collect(),
            attrs: vec![Vec::new(); attr_names.len()],
            rows: 0,
        }
    }

    /// The table's name (the dimension it describes).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends a member row, returning its primary key.
    pub fn push(&mut self, values: &[&str]) -> Result<u32> {
        if values.len() != self.attr_names.len() {
            return Err(Error::ArityMismatch {
                expected: self.attr_names.len(),
                got: values.len(),
            });
        }
        for (col, v) in self.attrs.iter_mut().zip(values) {
            col.push((*v).to_owned());
        }
        self.rows += 1;
        Ok((self.rows - 1) as u32)
    }

    /// Number of member rows.
    pub fn len(&self) -> usize {
        self.rows
    }

    /// True if the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    fn attr_index(&self, attr: &str) -> Result<usize> {
        self.attr_names
            .iter()
            .position(|a| a == attr)
            .ok_or_else(|| Error::ColumnError(format!("no attribute `{attr}` in `{}`", self.name)))
    }

    /// The attribute value of member `pk`.
    pub fn attr(&self, pk: u32, attr: &str) -> Result<&str> {
        let a = self.attr_index(attr)?;
        self.attrs[a]
            .get(pk as usize)
            .map(String::as_str)
            .ok_or_else(|| Error::ColumnError(format!("pk {pk} out of range")))
    }

    /// Primary keys of members whose `attr == value`.
    pub fn find(&self, attr: &str, value: &str) -> Result<Vec<u32>> {
        let a = self.attr_index(attr)?;
        Ok(self.attrs[a]
            .iter()
            .enumerate()
            .filter(|(_, v)| v.as_str() == value)
            .map(|(pk, _)| pk as u32)
            .collect())
    }

    /// Stored bytes: 4 per pk plus the attribute strings.
    pub fn size_bytes(&self) -> usize {
        4 * self.rows + self.attrs.iter().flatten().map(String::len).sum::<usize>()
    }

    /// Average bytes of one member's attribute strings (used for the
    /// denormalized-size comparison).
    pub fn row_attr_bytes(&self, pk: u32) -> usize {
        self.attrs.iter().map(|col| col[pk as usize].len()).sum()
    }
}

/// A star schema: fact table plus dimension tables.
#[derive(Debug)]
pub struct StarSchema {
    dims: Vec<DimensionTable>,
    /// Fact foreign keys, column-major per dimension.
    fks: Vec<Vec<u32>>,
    measure_names: Vec<String>,
    measures: Vec<Vec<f64>>,
    rows: usize,
    io: IoStats,
}

impl StarSchema {
    /// Builds the schema around prepared dimension tables.
    pub fn new(dims: Vec<DimensionTable>, measures: &[&str], page_size: usize) -> Self {
        let n = dims.len();
        Self {
            dims,
            fks: vec![Vec::new(); n],
            measure_names: measures.iter().map(|s| (*s).to_owned()).collect(),
            measures: vec![Vec::new(); measures.len()],
            rows: 0,
            io: IoStats::labeled(page_size, "star"),
        }
    }

    /// The I/O counters.
    pub fn io(&self) -> &IoStats {
        &self.io
    }

    /// The dimension tables.
    pub fn dimensions(&self) -> &[DimensionTable] {
        &self.dims
    }

    /// Appends one fact row.
    pub fn push_fact(&mut self, fks: &[u32], measures: &[f64]) -> Result<()> {
        if fks.len() != self.dims.len() || measures.len() != self.measure_names.len() {
            return Err(Error::ArityMismatch {
                expected: self.dims.len() + self.measure_names.len(),
                got: fks.len() + measures.len(),
            });
        }
        for (d, (&fk, table)) in fks.iter().zip(&self.dims).enumerate() {
            if fk as usize >= table.len() {
                return Err(Error::UnknownMember {
                    dimension: table.name().to_owned(),
                    member: format!("pk {fk}"),
                });
            }
            self.fks[d].push(fk);
        }
        for (col, &m) in self.measures.iter_mut().zip(measures) {
            col.push(m);
        }
        self.rows += 1;
        Ok(())
    }

    /// Number of fact rows.
    pub fn fact_rows(&self) -> usize {
        self.rows
    }

    /// Bytes of the (row-oriented) fact table: 4 per foreign key, 8 per
    /// measure.
    pub fn fact_bytes(&self) -> usize {
        self.rows * (4 * self.dims.len() + 8 * self.measure_names.len())
    }

    /// Total stored bytes: fact table plus dimension tables.
    pub fn size_bytes(&self) -> usize {
        self.fact_bytes() + self.dims.iter().map(DimensionTable::size_bytes).sum::<usize>()
    }

    /// Bytes the same data costs fully denormalized (Fig 10): every fact
    /// row repeats all attribute strings of all its members.
    pub fn denormalized_bytes(&self) -> usize {
        let mut total = 0;
        for row in 0..self.rows {
            for (d, table) in self.dims.iter().enumerate() {
                total += table.row_attr_bytes(self.fks[d][row]);
            }
            total += 8 * self.measure_names.len();
        }
        total
    }

    fn dim_index(&self, dim: &str) -> Result<usize> {
        self.dims
            .iter()
            .position(|t| t.name() == dim)
            .ok_or_else(|| Error::DimensionNotFound(dim.to_owned()))
    }

    fn measure_index(&self, m: &str) -> Result<usize> {
        self.measure_names
            .iter()
            .position(|n| n == m)
            .ok_or_else(|| Error::MeasureNotFound(m.to_owned()))
    }

    /// Star query: `sum`/`count` of `measure` over facts whose member in
    /// `dim` satisfies `attr == value`. Charges a scan of the dimension
    /// table (small) plus a scan of the fact table.
    pub fn query_sum(
        &self,
        dim: &str,
        attr: &str,
        value: &str,
        measure: &str,
    ) -> Result<(f64, u64)> {
        let d = self.dim_index(dim)?;
        let m = self.measure_index(measure)?;
        self.io.charge_seq_read(self.dims[d].size_bytes());
        let pks = self.dims[d].find(attr, value)?;
        let pk_set: std::collections::HashSet<u32> = pks.into_iter().collect();
        self.io.charge_seq_read(self.fact_bytes());
        let mut sum = 0.0;
        let mut count = 0;
        for row in 0..self.rows {
            if pk_set.contains(&self.fks[d][row]) {
                sum += self.measures[m][row];
                count += 1;
            }
        }
        Ok((sum, count))
    }

    /// Pages a denormalized flat relation would read for the same query
    /// (full scan of the wide table).
    pub fn denormalized_scan_pages(&self) -> u64 {
        self.io.pages_of(self.denormalized_bytes())
    }

    /// Seals the fact table (foreign keys + measures) and dimension-table
    /// attributes into a checksum manifest.
    pub fn seal(&self) -> ChecksumManifest {
        ChecksumManifest::seal(self)
    }

    /// Re-checksums fact and dimension tables against a seal, charging the
    /// store's I/O counters, and reports failing pages.
    pub fn scrub(&self, seal: &ChecksumManifest) -> ScrubReport {
        seal.scrub(self, Some(&self.io))
    }

    /// [`StarSchema::scrub`], converted to a typed error on the first
    /// failing page.
    pub fn verify_all(&self, seal: &ChecksumManifest) -> Result<ScrubReport> {
        seal.verify_all(self, Some(&self.io))
    }
}

impl Scrubbable for StarSchema {
    fn object_name(&self) -> String {
        format!("StarSchema({} facts)", self.rows)
    }

    fn content_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.fact_bytes() + 8);
        out.extend_from_slice(&(self.rows as u64).to_le_bytes());
        for col in &self.fks {
            for &fk in col {
                out.extend_from_slice(&fk.to_le_bytes());
            }
        }
        for col in &self.measures {
            for &v in col {
                out.extend_from_slice(&v.to_bits().to_le_bytes());
            }
        }
        // Dimension attributes are part of the answer path (predicates are
        // resolved against them), so they are sealed too.
        for table in &self.dims {
            for col in &table.attrs {
                for v in col {
                    out.extend_from_slice(&(v.len() as u64).to_le_bytes());
                    out.extend_from_slice(v.as_bytes());
                }
            }
        }
        out
    }

    fn inject_bitflip(&mut self, bit: u64) {
        let m_bits: u64 = self.measures.iter().map(|c| c.len() as u64 * 64).sum();
        let fk_bits: u64 = self.fks.iter().map(|c| c.len() as u64 * 32).sum();
        if m_bits + fk_bits == 0 {
            return;
        }
        let mut bit = bit % (m_bits + fk_bits);
        if bit < m_bits {
            for col in &mut self.measures {
                let span = col.len() as u64 * 64;
                if bit < span {
                    crate::verify::flip_f64_bit(col, bit);
                    return;
                }
                bit -= span;
            }
        }
        bit -= m_bits;
        for col in &mut self.fks {
            let span = col.len() as u64 * 32;
            if bit < span {
                crate::verify::flip_u32_bit(col, bit);
                return;
            }
            bit -= span;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Fig 11 schema: hospital × procedure × time → number.
    fn hospital_star() -> StarSchema {
        let mut hospital = DimensionTable::new("hospital", &["name", "size", "city", "state"]);
        let h0 = hospital.push(&["st. mary", "large", "oakland", "CA"]).unwrap();
        let h1 = hospital.push(&["county general", "small", "fresno", "CA"]).unwrap();
        let h2 = hospital.push(&["mercy", "large", "reno", "NV"]).unwrap();

        let mut procedure = DimensionTable::new("procedure", &["name", "type", "branch"]);
        let p0 = procedure.push(&["appendectomy", "surgery", "general"]).unwrap();
        let p1 = procedure.push(&["x-ray", "imaging", "radiology"]).unwrap();

        let mut time = DimensionTable::new("time", &["day", "month", "year"]);
        let t0 = time.push(&["13", "11", "1996"]).unwrap();
        let t1 = time.push(&["14", "11", "1996"]).unwrap();

        let mut star = StarSchema::new(vec![hospital, procedure, time], &["number"], 4096);
        star.push_fact(&[h0, p0, t0], &[5.0]).unwrap();
        star.push_fact(&[h0, p1, t0], &[20.0]).unwrap();
        star.push_fact(&[h1, p0, t1], &[2.0]).unwrap();
        star.push_fact(&[h2, p1, t1], &[7.0]).unwrap();
        star
    }

    #[test]
    fn dimension_table_basics() {
        let mut t = DimensionTable::new("d", &["a", "b"]);
        assert!(t.is_empty());
        let pk = t.push(&["x", "y"]).unwrap();
        assert_eq!(pk, 0);
        assert_eq!(t.attr(0, "a").unwrap(), "x");
        assert!(t.attr(0, "z").is_err());
        assert!(t.attr(5, "a").is_err());
        assert!(t.push(&["only one"]).is_err());
        assert_eq!(t.size_bytes(), 4 + 2);
    }

    #[test]
    fn query_filters_through_dimension_attribute() {
        let star = hospital_star();
        // All CA hospitals: facts for h0 and h1.
        let (sum, count) = star.query_sum("hospital", "state", "CA", "number").unwrap();
        assert_eq!((sum, count), (27.0, 3));
        let (sum, count) = star.query_sum("procedure", "type", "imaging", "number").unwrap();
        assert_eq!((sum, count), (27.0, 2));
        let (sum, count) = star.query_sum("time", "month", "12", "number").unwrap();
        assert_eq!((sum, count), (0.0, 0));
        assert!(star.query_sum("planet", "x", "y", "number").is_err());
        assert!(star.query_sum("hospital", "state", "CA", "cost").is_err());
    }

    #[test]
    fn fact_table_is_far_narrower_than_denormalized() {
        let star = hospital_star();
        // 3 fks × 4 B + 1 measure × 8 B = 20 B/row.
        assert_eq!(star.fact_bytes(), 4 * 20);
        assert!(star.denormalized_bytes() > star.fact_bytes());
        // With realistic data volumes the gap dominates total size too.
        assert!(star.size_bytes() < star.denormalized_bytes() + 1000);
    }

    #[test]
    fn query_charges_dimension_plus_fact_scan() {
        let star = hospital_star();
        star.query_sum("hospital", "state", "NV", "number").unwrap();
        // Tiny tables: 1 page for the dim table + 1 page for the fact table.
        assert_eq!(star.io().pages_read(), 2);
    }

    #[test]
    fn push_fact_validates_foreign_keys() {
        let mut star = hospital_star();
        assert!(star.push_fact(&[99, 0, 0], &[1.0]).is_err());
        assert!(star.push_fact(&[0, 0], &[1.0]).is_err());
        assert!(star.push_fact(&[0, 0, 0], &[]).is_err());
    }
}
