//! Transposed (vertically partitioned) files (§6.1, Fig 18, \[THC79\]).
//!
//! Statistics Canada's observation: statistical queries touch a few category
//! attributes and usually one summary attribute, so store each column as its
//! own file and a summary query reads only the relevant columns. The price
//! (noted in the paper) is full-row retrieval: each row is scattered across
//! one file per column.

use statcube_core::error::Result;

use crate::io_stats::{IoStats, PageSet};
use crate::relation::{EqPredicates, Relation};
use crate::verify::{ChecksumManifest, ScrubReport, Scrubbable};

/// A transposed store over a [`Relation`], charging page I/O column-wise.
#[derive(Debug)]
pub struct TransposedStore {
    rel: Relation,
    io: IoStats,
}

impl TransposedStore {
    /// Wraps a relation with the given page size.
    pub fn new(rel: Relation, page_size: usize) -> Self {
        Self { rel, io: IoStats::labeled(page_size, "transposed") }
    }

    /// The underlying relation.
    pub fn relation(&self) -> &Relation {
        &self.rel
    }

    /// The I/O counters.
    pub fn io(&self) -> &IoStats {
        &self.io
    }

    /// Stored bytes: identical to the row store — transposition alone does
    /// not compress (that is what [`crate::encoding`] and [`crate::rle`]
    /// add, per \[WL+85\]).
    pub fn size_bytes(&self) -> usize {
        self.rel.total_bytes()
    }

    /// Bytes of one category column file.
    pub fn cat_file_bytes(&self) -> usize {
        4 * self.rel.len()
    }

    /// Bytes of one measure column file.
    pub fn num_file_bytes(&self) -> usize {
        8 * self.rel.len()
    }

    /// Summary query: reads only the predicate columns and the measure
    /// column — the transposed file's win.
    pub fn sum_where(&self, preds: &EqPredicates, m: usize) -> (f64, u64) {
        let mut distinct: Vec<usize> = preds.iter().map(|&(c, _)| c).collect();
        distinct.sort_unstable();
        distinct.dedup();
        for _ in &distinct {
            self.io.charge_seq_read(self.cat_file_bytes());
        }
        let _ = m;
        self.io.charge_seq_read(self.num_file_bytes());
        self.rel.sum_where(preds, m)
    }

    /// Fetches a full row: one page per column file — the transposed
    /// file's penalty (§6.1).
    pub fn fetch_row(&self, row: usize) -> (Vec<u32>, Vec<f64>) {
        let mut ps = PageSet::new();
        for c in 0..self.rel.cat_count() {
            ps.touch(&self.io, c as u32, row * 4, 4);
        }
        for n in 0..self.rel.num_count() {
            ps.touch(&self.io, (self.rel.cat_count() + n) as u32, row * 8, 8);
        }
        ps.commit_reads(&self.io);
        self.rel.row(row)
    }

    /// Name-based predicate resolution, forwarded to the relation.
    pub fn predicates(&self, preds: &[(&str, &str)]) -> Result<EqPredicates> {
        self.rel.predicates(preds)
    }

    /// Seals the relation payload (all column files) into a checksum
    /// manifest.
    pub fn seal(&self) -> ChecksumManifest {
        ChecksumManifest::seal(self)
    }

    /// Re-checksums the column files against a seal, charging the store's
    /// I/O counters, and reports failing pages.
    pub fn scrub(&self, seal: &ChecksumManifest) -> ScrubReport {
        seal.scrub(self, Some(&self.io))
    }

    /// [`TransposedStore::scrub`], converted to a typed error on the first
    /// failing page.
    pub fn verify_all(&self, seal: &ChecksumManifest) -> Result<ScrubReport> {
        seal.verify_all(self, Some(&self.io))
    }
}

impl Scrubbable for TransposedStore {
    fn object_name(&self) -> String {
        format!("TransposedStore({} rows)", self.rel.len())
    }

    fn content_bytes(&self) -> Vec<u8> {
        // The relation payload is already column-major — exactly the byte
        // layout of the transposed files.
        self.rel.payload_bytes()
    }

    fn inject_bitflip(&mut self, bit: u64) {
        self.rel.flip_payload_bit(bit);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row::RowStore;

    fn rel(rows: usize, cats: usize) -> Relation {
        let cat_names: Vec<String> = (0..cats).map(|i| format!("c{i}")).collect();
        let cat_refs: Vec<&str> = cat_names.iter().map(String::as_str).collect();
        let mut rel = Relation::new(&cat_refs, &["m"]);
        let vals = ["a", "b", "c", "d"];
        for i in 0..rows {
            let row: Vec<&str> = (0..cats).map(|c| vals[(i + c) % vals.len()]).collect();
            rel.push(&row, &[i as f64]).unwrap();
        }
        rel
    }

    #[test]
    fn summary_query_reads_only_needed_columns() {
        // 8 category columns, query touches 1: transposed reads
        // 1 cat file (4 B/row) + 1 measure file (8 B/row); row store reads
        // all 40 B/row.
        let r = rel(8192, 8);
        let t = TransposedStore::new(r.clone(), 4096);
        let row = RowStore::new(r, 4096);
        let p = t.predicates(&[("c0", "a")]).unwrap();
        let (ts, tc) = t.sum_where(&p, 0);
        let (rs, rc) = row.sum_where(&p, 0);
        assert_eq!((ts, tc), (rs, rc));
        // Transposed: (8192*4 + 8192*8)/4096 = 8 + 16 = 24 pages.
        assert_eq!(t.io().pages_read(), 24);
        // Row: 8192*40/4096 = 80 pages.
        assert_eq!(row.io().pages_read(), 80);
    }

    #[test]
    fn duplicate_predicate_columns_charged_once() {
        let r = rel(4096, 2);
        let t = TransposedStore::new(r, 4096);
        let p = vec![(0, 0), (0, 1)]; // contradictory but same column
        let (_, count) = t.sum_where(&p, 0);
        assert_eq!(count, 0);
        // 1 cat file (4 pages) + 1 num file (8 pages).
        assert_eq!(t.io().pages_read(), 12);
    }

    #[test]
    fn full_row_fetch_pays_one_page_per_file() {
        let r = rel(8192, 8);
        let t = TransposedStore::new(r.clone(), 4096);
        let row = RowStore::new(r, 4096);
        let (tc, tn) = t.fetch_row(4000);
        let (rc, rn) = row.fetch_row(4000);
        assert_eq!((tc, tn), (rc, rn));
        // Transposed: 9 files → 9 pages. Row store: ≤ 2.
        assert_eq!(t.io().pages_read(), 9);
        assert!(row.io().pages_read() <= 2);
    }

    #[test]
    fn sizes_match_row_store() {
        let r = rel(100, 3);
        let t = TransposedStore::new(r.clone(), 4096);
        assert_eq!(t.size_bytes(), RowStore::new(r, 4096).size_bytes());
        assert_eq!(t.cat_file_bytes(), 400);
        assert_eq!(t.num_file_bytes(), 800);
    }
}
