//! Bit-transposed files (§6.1, Fig 19, \[WL+85\]).
//!
//! "Transposing the table to the extreme": each *bit* of the encoded
//! category column becomes its own file. A predicate `col == v` is then
//! evaluated by combining only the bit planes — `bits` sequential scans of
//! `n/8` bytes each instead of one scan of `4·n` — and planes that are
//! constant over the column can be skipped entirely. \[WL+85\]'s simulations
//! showed this extreme transposition increases both compression and
//! performance; experiment E12 reproduces that shape.

use statcube_core::error::{Error, Result};

use crate::io_stats::IoStats;

/// A column stored as one bitmap per bit position of its code.
#[derive(Debug, Clone, PartialEq)]
pub struct BitSlicedColumn {
    bits: u32,
    len: usize,
    /// `planes[b]` holds bit `b` of every value, 64 values per word.
    planes: Vec<Vec<u64>>,
}

impl BitSlicedColumn {
    /// Slices `codes` into `bits` planes. Every code must fit.
    pub fn build(codes: &[u32], bits: u32) -> Result<Self> {
        if bits == 0 || bits > 32 {
            return Err(Error::InvalidSchema(format!("code width {bits} out of range 1..=32")));
        }
        let limit = if bits == 32 { u32::MAX } else { (1u32 << bits) - 1 };
        let words = codes.len().div_ceil(64);
        let mut planes = vec![vec![0u64; words]; bits as usize];
        for (i, &code) in codes.iter().enumerate() {
            if code > limit {
                return Err(Error::InvalidSchema(format!(
                    "code {code} does not fit in {bits} bits"
                )));
            }
            for (b, plane) in planes.iter_mut().enumerate() {
                if code & (1 << b) != 0 {
                    plane[i / 64] |= 1u64 << (i % 64);
                }
            }
        }
        Ok(Self { bits, len: codes.len(), planes })
    }

    /// Code width.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Number of values.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads the value at `i` by probing every plane.
    pub fn get(&self, i: usize) -> Option<u32> {
        if i >= self.len {
            return None;
        }
        let mut v = 0u32;
        for (b, plane) in self.planes.iter().enumerate() {
            if plane[i / 64] & (1u64 << (i % 64)) != 0 {
                v |= 1 << b;
            }
        }
        Some(v)
    }

    /// Bytes of one bit plane.
    pub fn plane_bytes(&self) -> usize {
        self.len.div_ceil(64) * 8
    }

    /// Total stored bytes (all planes).
    pub fn size_bytes(&self) -> usize {
        self.plane_bytes() * self.bits as usize
    }

    /// Evaluates `column == value` over all rows, returning a result bitmap
    /// (one bit per row) and charging `io` for exactly the planes read.
    ///
    /// Combination rule per \[WL+85\]: start from all-ones and AND in each
    /// plane, complemented where `value`'s bit is 0.
    pub fn eq_scan(&self, value: u32, io: &IoStats) -> Vec<u64> {
        let words = self.len.div_ceil(64);
        let mut result = vec![u64::MAX; words];
        for (b, plane) in self.planes.iter().enumerate() {
            io.charge_seq_read(self.plane_bytes());
            if value & (1 << b) != 0 {
                for (r, &p) in result.iter_mut().zip(plane) {
                    *r &= p;
                }
            } else {
                for (r, &p) in result.iter_mut().zip(plane) {
                    *r &= !p;
                }
            }
        }
        // Mask out the tail beyond `len`.
        if !self.len.is_multiple_of(64) {
            if let Some(last) = result.last_mut() {
                *last &= (1u64 << (self.len % 64)) - 1;
            }
        }
        if self.len == 0 {
            result.clear();
        }
        result
    }

    /// Number of rows set in a result bitmap.
    pub fn count_ones(bitmap: &[u64]) -> u64 {
        bitmap.iter().map(|w| w.count_ones() as u64).sum()
    }

    /// ANDs two result bitmaps (conjunctive predicates across columns).
    pub fn and(a: &[u64], b: &[u64]) -> Vec<u64> {
        a.iter().zip(b).map(|(x, y)| x & y).collect()
    }

    /// Iterates the row indices set in a bitmap.
    pub fn iter_ones(bitmap: &[u64]) -> impl Iterator<Item = usize> + '_ {
        bitmap.iter().enumerate().flat_map(|(w, &word)| {
            (0..64).filter(move |b| word & (1u64 << b) != 0).map(move |b| w * 64 + b)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codes(n: usize, card: u32) -> Vec<u32> {
        (0..n).map(|i| (i as u64 * 2654435761 % card as u64) as u32).collect()
    }

    #[test]
    fn get_round_trips() {
        let cs = codes(300, 50);
        let col = BitSlicedColumn::build(&cs, 6).unwrap();
        for (i, &c) in cs.iter().enumerate() {
            assert_eq!(col.get(i), Some(c));
        }
        assert_eq!(col.get(300), None);
    }

    #[test]
    fn eq_scan_matches_naive_filter() {
        let cs = codes(1000, 7);
        let col = BitSlicedColumn::build(&cs, 3).unwrap();
        let io = IoStats::new(4096);
        for v in 0..7u32 {
            let bm = col.eq_scan(v, &io);
            let expected: Vec<usize> =
                cs.iter().enumerate().filter(|(_, &c)| c == v).map(|(i, _)| i).collect();
            let got: Vec<usize> = BitSlicedColumn::iter_ones(&bm).collect();
            assert_eq!(got, expected, "value {v}");
            assert_eq!(BitSlicedColumn::count_ones(&bm), expected.len() as u64);
        }
    }

    #[test]
    fn eq_scan_charges_only_bit_planes() {
        let cs = codes(65536, 50); // 6-bit codes
        let col = BitSlicedColumn::build(&cs, 6).unwrap();
        let io = IoStats::new(4096);
        col.eq_scan(3, &io);
        // plane = 65536/8 = 8192 B = 2 pages; 6 planes → 12 pages.
        assert_eq!(io.pages_read(), 12);
        // Raw u32 storage of the same column would be 64 pages to scan.
        assert_eq!(65536 * 4 / 4096, 64);
    }

    #[test]
    fn tail_bits_are_masked() {
        let cs = vec![0u32; 70]; // 70 rows, value 0 everywhere
        let col = BitSlicedColumn::build(&cs, 3).unwrap();
        let io = IoStats::new(4096);
        let bm = col.eq_scan(0, &io);
        assert_eq!(BitSlicedColumn::count_ones(&bm), 70);
    }

    #[test]
    fn and_combines_columns() {
        let a = BitSlicedColumn::build(&[0, 1, 0, 1], 1).unwrap();
        let b = BitSlicedColumn::build(&[0, 0, 1, 1], 1).unwrap();
        let io = IoStats::new(4096);
        let both = BitSlicedColumn::and(&a.eq_scan(1, &io), &b.eq_scan(1, &io));
        assert_eq!(BitSlicedColumn::iter_ones(&both).collect::<Vec<_>>(), vec![3]);
    }

    #[test]
    fn sizes() {
        let col = BitSlicedColumn::build(&codes(64_000, 50), 6).unwrap();
        assert_eq!(col.plane_bytes(), 8000);
        assert_eq!(col.size_bytes(), 48_000);
        // vs. 256_000 bytes raw.
        assert!(col.size_bytes() * 5 < 64_000 * 4 * 2);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(BitSlicedColumn::build(&[8], 3).is_err());
        assert!(BitSlicedColumn::build(&[0], 0).is_err());
        let empty = BitSlicedColumn::build(&[], 4).unwrap();
        assert!(empty.is_empty());
        let io = IoStats::new(4096);
        assert!(empty.eq_scan(0, &io).is_empty());
    }
}
