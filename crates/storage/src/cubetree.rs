//! Cubetree: a packed R-tree over cube cells with bulk updates (§6.5,
//! \[RKR97\]: *"Cubetree: Organization of and Bulk Updates on the Data
//! Cube"*).
//!
//! The cube's populated cells are points in the multidimensional
//! coordinate space. Packing them in **Z-order** (Morton code) and cutting
//! the sorted run into full pages yields an R-tree with no insertion
//! overlap — every node is exactly full, range queries touch few nodes —
//! and, crucially for warehouses, an append batch is absorbed by *merging*
//! two sorted runs and re-packing, a sequential operation, instead of
//! record-at-a-time inserts.

use statcube_core::error::{Error, Result};

use crate::io_stats::IoStats;

/// Entries per leaf / children per internal node (a page's worth).
const NODE_CAPACITY: usize = 64;

/// Interleaves up to 4 dimensions of `u32` coordinates into a Morton code.
fn morton(coords: &[u32]) -> u128 {
    let mut code: u128 = 0;
    for bit in 0..32 {
        for (d, &c) in coords.iter().enumerate() {
            if c & (1 << bit) != 0 {
                code |= 1u128 << (bit * coords.len() + d);
            }
        }
    }
    code
}

#[derive(Debug, Clone, PartialEq)]
struct Node {
    lo: Vec<u32>,
    hi: Vec<u32>,
    /// Child range: indices into the next level down (or the entry array
    /// for leaves).
    start: usize,
    end: usize,
}

impl Node {
    fn intersects(&self, lo: &[u32], hi: &[u32]) -> bool {
        self.lo.iter().zip(hi).all(|(a, b)| a <= b) && self.hi.iter().zip(lo).all(|(a, b)| a >= b)
    }
}

/// A bulk-loaded, Z-order packed R-tree over `(coordinates, value)` points.
#[derive(Debug)]
pub struct CubeTree {
    dims: usize,
    /// Entries in Morton order.
    entries: Vec<(Box<[u32]>, f64)>,
    /// `levels[0]` = leaves (over entries); each higher level groups the
    /// one below. The last level has a single root node.
    levels: Vec<Vec<Node>>,
    io: IoStats,
}

impl CubeTree {
    /// Bulk-loads a tree from `(coordinates, value)` points. Duplicate
    /// coordinates merge by summing values (cube cells are unique keys).
    pub fn bulk_load(
        points: impl IntoIterator<Item = (Vec<u32>, f64)>,
        dims: usize,
        page_size: usize,
    ) -> Result<Self> {
        if dims == 0 || dims > 4 {
            return Err(Error::InvalidSchema("cubetree supports 1..=4 dimensions".into()));
        }
        let mut entries: Vec<(Box<[u32]>, f64)> = Vec::new();
        for (coords, v) in points {
            if coords.len() != dims {
                return Err(Error::ArityMismatch { expected: dims, got: coords.len() });
            }
            entries.push((coords.into_boxed_slice(), v));
        }
        entries.sort_by_key(|(c, _)| morton(c));
        entries.dedup_by(|b, a| {
            if a.0 == b.0 {
                a.1 += b.1;
                true
            } else {
                false
            }
        });
        let mut tree =
            Self { dims, entries, levels: Vec::new(), io: IoStats::labeled(page_size, "cubetree") };
        tree.pack();
        // Loading writes every page once, sequentially.
        tree.io.charge_page_writes(tree.page_count());
        Ok(tree)
    }

    fn pack(&mut self) {
        self.levels.clear();
        if self.entries.is_empty() {
            return;
        }
        // Leaves over entry ranges.
        let mut level: Vec<Node> = self
            .entries
            .chunks(NODE_CAPACITY)
            .enumerate()
            .map(|(i, chunk)| {
                let mut lo = vec![u32::MAX; self.dims];
                let mut hi = vec![0u32; self.dims];
                for (c, _) in chunk {
                    for d in 0..self.dims {
                        lo[d] = lo[d].min(c[d]);
                        hi[d] = hi[d].max(c[d]);
                    }
                }
                let start = i * NODE_CAPACITY;
                Node { lo, hi, start, end: (start + chunk.len()).min(self.entries.len()) }
            })
            .collect();
        self.levels.push(level.clone());
        // Upper levels until a single root.
        while level.len() > 1 {
            let next: Vec<Node> = level
                .chunks(NODE_CAPACITY)
                .enumerate()
                .map(|(i, chunk)| {
                    let mut lo = vec![u32::MAX; self.dims];
                    let mut hi = vec![0u32; self.dims];
                    for n in chunk {
                        for d in 0..self.dims {
                            lo[d] = lo[d].min(n.lo[d]);
                            hi[d] = hi[d].max(n.hi[d]);
                        }
                    }
                    let start = i * NODE_CAPACITY;
                    Node { lo, hi, start, end: (start + chunk.len()).min(level.len()) }
                })
                .collect();
            self.levels.push(next.clone());
            level = next;
        }
    }

    /// Number of stored points.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no point is stored.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Tree height (levels of nodes above the entries).
    pub fn height(&self) -> usize {
        self.levels.len()
    }

    /// Total pages (leaf + internal), the tree's disk footprint.
    pub fn page_count(&self) -> u64 {
        self.levels.iter().map(Vec::len).sum::<usize>() as u64
    }

    /// The I/O counters.
    pub fn io(&self) -> &IoStats {
        &self.io
    }

    /// Range query over the **closed** box `[lo, hi]`: returns
    /// `(sum, count)` and charges one page read per node visited.
    pub fn range_sum(&self, lo: &[u32], hi: &[u32]) -> Result<(f64, u64)> {
        if lo.len() != self.dims || hi.len() != self.dims {
            return Err(Error::ArityMismatch { expected: self.dims, got: lo.len() });
        }
        if self.levels.is_empty() {
            return Ok((0.0, 0));
        }
        let mut sum = 0.0;
        let mut count = 0u64;
        // Descend level by level. A node's page stores its children's
        // MBRs, so only children whose MBR intersects the query are read —
        // the frontier is pruned *before* charging child pages.
        let root_level = self.levels.len() - 1;
        let root = &self.levels[root_level][0];
        self.io.charge_page_reads(1);
        if !root.intersects(lo, hi) {
            return Ok((0.0, 0));
        }
        let mut frontier: Vec<usize> = vec![0];
        for lvl in (1..=root_level).rev() {
            let mut next = Vec::new();
            for &ni in &frontier {
                let node = &self.levels[lvl][ni];
                for ci in node.start..node.end {
                    if self.levels[lvl - 1][ci].intersects(lo, hi) {
                        next.push(ci);
                    }
                }
            }
            self.io.charge_page_reads(next.len() as u64);
            frontier = next;
        }
        for &ni in &frontier {
            let leaf = &self.levels[0][ni];
            for (c, v) in &self.entries[leaf.start..leaf.end] {
                if c.iter().zip(lo).all(|(a, b)| a >= b) && c.iter().zip(hi).all(|(a, b)| a <= b) {
                    sum += v;
                    count += 1;
                }
            }
        }
        Ok((sum, count))
    }

    /// Point lookup.
    pub fn get(&self, coords: &[u32]) -> Result<Option<f64>> {
        let (sum, count) = self.range_sum(coords, coords)?;
        Ok((count > 0).then_some(sum))
    }

    /// Bulk update (\[RKR97\]'s contribution): merges an append batch by
    /// merging two Morton-sorted runs and re-packing — sequential I/O
    /// proportional to the data size, no per-record R-tree inserts.
    /// Coordinates already present merge by summing.
    pub fn bulk_update(&mut self, points: impl IntoIterator<Item = (Vec<u32>, f64)>) -> Result<()> {
        let mut batch: Vec<(Box<[u32]>, f64)> = Vec::new();
        for (coords, v) in points {
            if coords.len() != self.dims {
                return Err(Error::ArityMismatch { expected: self.dims, got: coords.len() });
            }
            batch.push((coords.into_boxed_slice(), v));
        }
        batch.sort_by_key(|(c, _)| morton(c));
        batch.dedup_by(|b, a| {
            if a.0 == b.0 {
                a.1 += b.1;
                true
            } else {
                false
            }
        });
        // Merge the two sorted runs.
        let old = std::mem::take(&mut self.entries);
        let mut merged = Vec::with_capacity(old.len() + batch.len());
        let (mut i, mut j) = (0, 0);
        while i < old.len() && j < batch.len() {
            match morton(&old[i].0).cmp(&morton(&batch[j].0)) {
                std::cmp::Ordering::Less => {
                    merged.push(old[i].clone());
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    merged.push(batch[j].clone());
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    merged.push((old[i].0.clone(), old[i].1 + batch[j].1));
                    i += 1;
                    j += 1;
                }
            }
        }
        merged.extend_from_slice(&old[i..]);
        merged.extend_from_slice(&batch[j..]);
        // Sequential read of the old run + sequential write of the new.
        self.io.charge_page_reads(self.page_count());
        self.entries = merged;
        self.pack();
        self.io.charge_page_writes(self.page_count());
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_points(n: usize) -> Vec<(Vec<u32>, f64)> {
        let mut out = Vec::new();
        let mut x = 1u64;
        for _ in 0..n {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            out.push((vec![(x % 100) as u32, ((x >> 8) % 100) as u32], (x % 50) as f64));
        }
        out
    }

    fn naive_range(points: &[(Vec<u32>, f64)], lo: &[u32], hi: &[u32]) -> (f64, u64) {
        use std::collections::HashMap;
        let mut cells: HashMap<Vec<u32>, f64> = HashMap::new();
        for (c, v) in points {
            *cells.entry(c.clone()).or_insert(0.0) += v;
        }
        let mut sum = 0.0;
        let mut count = 0;
        for (c, v) in cells {
            if c.iter().zip(lo).all(|(a, b)| a >= b) && c.iter().zip(hi).all(|(a, b)| a <= b) {
                sum += v;
                count += 1;
            }
        }
        (sum, count)
    }

    #[test]
    fn morton_orders_locally() {
        // Z-order keeps small boxes contiguous-ish: within a 2x2 block the
        // codes are consecutive.
        let codes: Vec<u128> =
            [(0u32, 0u32), (1, 0), (0, 1), (1, 1)].iter().map(|&(x, y)| morton(&[x, y])).collect();
        let mut sorted = codes.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3]);
    }

    #[test]
    fn range_queries_match_naive() {
        let points = grid_points(3000);
        let tree = CubeTree::bulk_load(points.clone(), 2, 4096).unwrap();
        for (lo, hi) in [([10u32, 10], [30u32, 30]), ([0, 0], [99, 99]), ([50, 0], [50, 99])] {
            let (s, c) = tree.range_sum(&lo, &hi).unwrap();
            let (ns, nc) = naive_range(&points, &lo, &hi);
            assert!((s - ns).abs() < 1e-9, "{lo:?}..{hi:?}");
            assert_eq!(c, nc);
        }
        // Empty box.
        assert_eq!(tree.range_sum(&[200, 200], &[300, 300]).unwrap(), (0.0, 0));
        assert!(tree.range_sum(&[0], &[1]).is_err());
    }

    #[test]
    fn point_lookup_and_duplicate_merge() {
        let tree = CubeTree::bulk_load(
            vec![(vec![5, 5], 1.0), (vec![5, 5], 2.0), (vec![6, 6], 4.0)],
            2,
            4096,
        )
        .unwrap();
        assert_eq!(tree.len(), 2);
        assert_eq!(tree.get(&[5, 5]).unwrap(), Some(3.0));
        assert_eq!(tree.get(&[6, 6]).unwrap(), Some(4.0));
        assert_eq!(tree.get(&[7, 7]).unwrap(), None);
    }

    #[test]
    fn small_queries_touch_few_pages() {
        let points = grid_points(20_000);
        let tree = CubeTree::bulk_load(points, 2, 4096).unwrap();
        let total_pages = tree.page_count();
        tree.io().reset();
        tree.range_sum(&[40, 40], &[45, 45]).unwrap();
        let touched = tree.io().pages_read();
        assert!(touched * 5 < total_pages, "small query touched {touched} of {total_pages} pages");
        assert!(tree.height() >= 2);
    }

    #[test]
    fn bulk_update_equals_rebuild() {
        let mut points = grid_points(2000);
        let batch = grid_points(500)
            .into_iter()
            .map(|(mut c, v)| {
                c[0] += 1; // shift so some coords are new, some collide
                (c, v)
            })
            .collect::<Vec<_>>();
        let mut tree = CubeTree::bulk_load(points.clone(), 2, 4096).unwrap();
        tree.bulk_update(batch.clone()).unwrap();
        points.extend(batch);
        let rebuilt = CubeTree::bulk_load(points, 2, 4096).unwrap();
        assert_eq!(tree.len(), rebuilt.len());
        assert_eq!(tree.entries, rebuilt.entries);
        let (a, ca) = tree.range_sum(&[0, 0], &[200, 200]).unwrap();
        let (b, cb) = rebuilt.range_sum(&[0, 0], &[200, 200]).unwrap();
        assert!((a - b).abs() < 1e-9);
        assert_eq!(ca, cb);
        // Arity checked.
        assert!(tree.bulk_update(vec![(vec![1], 1.0)]).is_err());
    }

    #[test]
    fn empty_tree_and_bounds() {
        let tree = CubeTree::bulk_load(Vec::new(), 2, 4096).unwrap();
        assert!(tree.is_empty());
        assert_eq!(tree.range_sum(&[0, 0], &[10, 10]).unwrap(), (0.0, 0));
        assert_eq!(tree.height(), 0);
        assert!(CubeTree::bulk_load(Vec::new(), 0, 4096).is_err());
        assert!(CubeTree::bulk_load(Vec::new(), 5, 4096).is_err());
        assert!(CubeTree::bulk_load(vec![(vec![1], 1.0)], 2, 4096).is_err());
    }

    #[test]
    fn packing_fills_nodes() {
        // Packed trees have every node (except possibly the last per
        // level) exactly full — the [RKR97] space advantage.
        let tree = CubeTree::bulk_load(grid_points(10_000), 2, 4096).unwrap();
        let leaves = &tree.levels[0];
        for leaf in &leaves[..leaves.len() - 1] {
            assert_eq!(leaf.end - leaf.start, NODE_CAPACITY);
        }
    }
}
