//! Query-set-size restriction (§7).
//!
//! The first line of defense: answer a statistical query only if its
//! *query set* (the individuals it summarizes) is neither too small nor —
//! per \[DS80\] — too large (the complement of a small set is equally
//! revealing). The paper is blunt that this alone is insufficient;
//! [`crate::tracker`] demonstrates why and [`crate::overlap`],
//! [`crate::suppress`], [`crate::sample`], [`crate::perturb`] implement the
//! stronger responses.

use statcube_core::error::Error as CoreError;
use statcube_core::microdata::MicroTable;
use std::fmt;

/// Comparison operator of a predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cmp {
    /// Keep rows where the column equals the value.
    Eq,
    /// Keep rows where the column differs from the value.
    Ne,
}

/// One predicate of a characteristic formula (conjunctions only).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pred {
    /// Categorical column name.
    pub column: String,
    /// Value compared against.
    pub value: String,
    /// Comparison.
    pub cmp: Cmp,
}

impl Pred {
    /// `column == value`.
    pub fn eq(column: &str, value: &str) -> Self {
        Pred { column: column.into(), value: value.into(), cmp: Cmp::Eq }
    }

    /// `column != value`.
    pub fn ne(column: &str, value: &str) -> Self {
        Pred { column: column.into(), value: value.into(), cmp: Cmp::Ne }
    }
}

/// Why a protected query was not answered.
#[derive(Debug, Clone, PartialEq)]
pub enum PrivacyError {
    /// The query set was smaller than `k` or larger than `n − k`.
    Denied {
        /// The (undisclosed-to-attackers, disclosed-to-tests) set size.
        size: usize,
        /// The enforced minimum.
        min: usize,
        /// The enforced maximum.
        max: usize,
    },
    /// The overlap auditor refused the query (see [`crate::overlap`]).
    OverlapDenied {
        /// Size of the offending intersection.
        overlap: usize,
        /// The enforced maximum overlap.
        max_overlap: usize,
    },
    /// An underlying schema/column error.
    Core(CoreError),
}

impl fmt::Display for PrivacyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PrivacyError::Denied { size, min, max } => {
                write!(f, "query denied: set size {size} outside [{min}, {max}]")
            }
            PrivacyError::OverlapDenied { overlap, max_overlap } => {
                write!(f, "query denied: overlap {overlap} exceeds {max_overlap}")
            }
            PrivacyError::Core(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for PrivacyError {}

impl From<CoreError> for PrivacyError {
    fn from(e: CoreError) -> Self {
        PrivacyError::Core(e)
    }
}

/// A micro database answering statistical queries under query-set-size
/// restriction with parameter `k`: answers only when
/// `k ≤ |query set| ≤ n − k`.
#[derive(Debug, Clone)]
pub struct ProtectedDatabase {
    micro: MicroTable,
    k: usize,
    upper: bool,
}

impl ProtectedDatabase {
    /// Protects `micro` with restriction parameter `k` (both bounds, per
    /// \[DS80\]).
    pub fn new(micro: MicroTable, k: usize) -> Self {
        Self { micro, k, upper: true }
    }

    /// Drops the upper bound, leaving only `|query set| ≥ k` — the naive
    /// restriction of the paper's 65-year-old example, under which
    /// whole-population queries are answered.
    pub fn lower_bound_only(mut self) -> Self {
        self.upper = false;
        self
    }

    /// The restriction parameter.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of individuals.
    pub fn population(&self) -> usize {
        self.micro.len()
    }

    /// The row ids matching a conjunction of predicates. Internal — a real
    /// deployment never exposes this; tests and the tracker demonstration
    /// use it to verify ground truth.
    pub fn query_set(&self, preds: &[Pred]) -> Result<Vec<usize>, PrivacyError> {
        let mut out = Vec::new();
        'rows: for row in 0..self.micro.len() {
            for p in preds {
                let v = self.micro.cat_value(&p.column, row)?;
                let hit = v == p.value;
                match p.cmp {
                    Cmp::Eq if !hit => continue 'rows,
                    Cmp::Ne if hit => continue 'rows,
                    _ => {}
                }
            }
            out.push(row);
        }
        Ok(out)
    }

    fn admit(&self, set: &[usize]) -> Result<(), PrivacyError> {
        let n = self.micro.len();
        let max = if self.upper { n.saturating_sub(self.k) } else { n };
        if set.len() < self.k || set.len() > max {
            return Err(PrivacyError::Denied { size: set.len(), min: self.k, max });
        }
        Ok(())
    }

    /// `COUNT` under restriction.
    pub fn count(&self, preds: &[Pred]) -> Result<u64, PrivacyError> {
        let set = self.query_set(preds)?;
        self.admit(&set)?;
        Ok(set.len() as u64)
    }

    /// `SUM(measure)` under restriction.
    pub fn sum(&self, preds: &[Pred], measure: &str) -> Result<f64, PrivacyError> {
        let set = self.query_set(preds)?;
        self.admit(&set)?;
        let mut s = 0.0;
        for &row in &set {
            s += self.micro.num_value(measure, row)?;
        }
        Ok(s)
    }

    /// `AVG(measure)` under restriction.
    pub fn avg(&self, preds: &[Pred], measure: &str) -> Result<f64, PrivacyError> {
        let set = self.query_set(preds)?;
        self.admit(&set)?;
        let mut s = 0.0;
        for &row in &set {
            s += self.micro.num_value(measure, row)?;
        }
        Ok(s / set.len() as f64)
    }

    /// The protected micro data (for the defense layers built on top).
    pub fn micro(&self) -> &MicroTable {
        &self.micro
    }

    /// The row ids matching a DNF formula (a union of conjunctions) —
    /// the formula class the [DS80] *general tracker* needs.
    pub fn query_set_formula(&self, dnf: &[Vec<Pred>]) -> Result<Vec<usize>, PrivacyError> {
        let mut hit = vec![false; self.micro.len()];
        for conj in dnf {
            for row in self.query_set(conj)? {
                hit[row] = true;
            }
        }
        Ok(hit.iter().enumerate().filter(|(_, &h)| h).map(|(i, _)| i).collect())
    }

    /// `COUNT` of a DNF formula under restriction.
    pub fn count_formula(&self, dnf: &[Vec<Pred>]) -> Result<u64, PrivacyError> {
        let set = self.query_set_formula(dnf)?;
        self.admit(&set)?;
        Ok(set.len() as u64)
    }

    /// `SUM(measure)` of a DNF formula under restriction.
    pub fn sum_formula(&self, dnf: &[Vec<Pred>], measure: &str) -> Result<f64, PrivacyError> {
        let set = self.query_set_formula(dnf)?;
        self.admit(&set)?;
        let mut s = 0.0;
        for &row in &set {
            s += self.micro.num_value(measure, row)?;
        }
        Ok(s)
    }
}

/// The negation of a conjunction, as DNF (De Morgan): `¬(p1 ∧ … ∧ pn)` =
/// `¬p1 ∨ … ∨ ¬pn`.
pub fn negate_conjunction(conj: &[Pred]) -> Vec<Vec<Pred>> {
    conj.iter()
        .map(|p| {
            vec![Pred {
                column: p.column.clone(),
                value: p.value.clone(),
                cmp: match p.cmp {
                    Cmp::Eq => Cmp::Ne,
                    Cmp::Ne => Cmp::Eq,
                },
            }]
        })
        .collect()
}

/// A small employee database used across the privacy modules' tests and
/// the E19 harness — one employee ("dorothy") is the unique 65-year-old,
/// mirroring the paper's example.
pub fn demo_database() -> MicroTable {
    let mut t = MicroTable::new(&["name", "dept", "age_group", "senior"], &["salary"]);
    let rows: &[(&str, &str, &str, &str, f64)] = &[
        ("alice", "eng", "30-39", "no", 95_000.0),
        ("bob", "eng", "40-49", "no", 105_000.0),
        ("carol", "eng", "30-39", "no", 98_000.0),
        ("dave", "eng", "50-59", "no", 120_000.0),
        ("dorothy", "eng", "65", "yes", 180_000.0),
        ("erin", "sales", "30-39", "no", 70_000.0),
        ("frank", "sales", "40-49", "no", 75_000.0),
        ("grace", "sales", "50-59", "no", 82_000.0),
        ("heidi", "sales", "30-39", "no", 68_000.0),
        ("ivan", "hr", "40-49", "no", 60_000.0),
        ("judy", "hr", "50-59", "no", 66_000.0),
        ("mallory", "hr", "30-39", "no", 58_000.0),
    ];
    for (name, dept, age, senior, salary) in rows {
        // The literal rows match the literal schema arity, so push cannot
        // fail; consumers assert on the table's contents immediately.
        let _ = t.push(&[name, dept, age, senior], &[*salary]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_sets_denied_large_sets_denied() {
        let db = ProtectedDatabase::new(demo_database(), 3);
        // The unique 65-year-old: denied.
        let err = db.count(&[Pred::eq("age_group", "65")]).unwrap_err();
        assert!(matches!(err, PrivacyError::Denied { size: 1, .. }));
        // The complement (everyone but her): 11 of 12 > n−k = 9 — denied.
        let err = db.count(&[Pred::ne("age_group", "65")]).unwrap_err();
        assert!(matches!(err, PrivacyError::Denied { size: 11, .. }));
        // A mid-size set: answered.
        assert_eq!(db.count(&[Pred::eq("dept", "eng")]).unwrap(), 5);
    }

    #[test]
    fn sum_and_avg_answerable_sets() {
        let db = ProtectedDatabase::new(demo_database(), 3);
        let sales_sum = db.sum(&[Pred::eq("dept", "sales")], "salary").unwrap();
        assert_eq!(sales_sum, 70_000.0 + 75_000.0 + 82_000.0 + 68_000.0);
        let sales_avg = db.avg(&[Pred::eq("dept", "sales")], "salary").unwrap();
        assert_eq!(sales_avg, sales_sum / 4.0);
        assert!(db.sum(&[Pred::eq("age_group", "65")], "salary").is_err());
    }

    #[test]
    fn conjunction_and_negation_predicates() {
        let db = ProtectedDatabase::new(demo_database(), 1);
        let set = db.query_set(&[Pred::eq("dept", "eng"), Pred::ne("age_group", "65")]).unwrap();
        assert_eq!(set.len(), 4);
        assert!(db.query_set(&[Pred::eq("planet", "mars")]).is_err());
    }

    #[test]
    fn k_zero_answers_everything() {
        let db = ProtectedDatabase::new(demo_database(), 0);
        assert_eq!(db.count(&[Pred::eq("age_group", "65")]).unwrap(), 1);
        // With no restriction the snooper reads the salary directly.
        assert_eq!(db.sum(&[Pred::eq("age_group", "65")], "salary").unwrap(), 180_000.0);
    }

    #[test]
    fn error_display() {
        let e = PrivacyError::Denied { size: 1, min: 3, max: 9 };
        assert!(e.to_string().contains("[3, 9]"));
    }
}
