//! # statcube-privacy
//!
//! Statistical inference control (§7 of Shoshani, PODS 1997): the privacy
//! problem the SDB community studied extensively and the OLAP literature
//! ignored. All of §7's mechanisms are here, attacks included, because the
//! section's point is a negative result — restriction alone is always
//! beatable (\[DS80\]) — and every proposed remedy has a cost:
//!
//! * [`restrict`] — query-set-size restriction, the baseline defense;
//! * [`tracker`] — the \[DS80\] individual tracker and the 65-year-old
//!   difference attack, defeating the baseline with only legal queries;
//! * [`overlap`] — query-set overlap auditing (blocks trackers, eventually
//!   refuses everything);
//! * [`suppress`] — cell suppression with complementary protection (the
//!   census practice);
//! * [`sample`] — random-sample answers (\[OR95\]);
//! * [`perturb`] — input and output perturbation.
//!
//! [`enforcement`] bridges to the query engine: presets for the
//! plan-layer privacy pass every query path runs through, cross-validated
//! here against the reference implementations above.

#![warn(missing_docs)]

pub mod enforcement;
pub mod overlap;
pub mod perturb;
pub mod restrict;
pub mod sample;
pub mod suppress;
pub mod tracker;

/// The most commonly used types, for glob import.
pub mod prelude {
    pub use crate::enforcement::{cell_suppression, full, output_perturbed, tracker_guarded};
    pub use crate::overlap::OverlapAuditedDatabase;
    pub use crate::perturb::{input_perturb, OutputPerturbedDatabase};
    pub use crate::restrict::negate_conjunction;
    pub use crate::restrict::{Cmp, Pred, PrivacyError, ProtectedDatabase};
    pub use crate::sample::SampledDatabase;
    pub use crate::suppress::{apply_suppression, plan_suppression, SuppressionPlan};
    pub use crate::tracker::{difference_attack, general_tracker, individual_tracker, Compromise};
}
