//! Tracker attacks (§7, \[DS80\]).
//!
//! The paper's "important negative result": query-set-size restriction can
//! *always* be defeated by a combination of legal queries. Two attacks are
//! implemented, both issuing only queries the
//! [`crate::restrict::ProtectedDatabase`] actually
//! answers:
//!
//! * the **individual tracker** of \[DS80\] — to learn about the unique
//!   individual matching `C1 ∧ C2`, pad with `T = C1 ∧ ¬C2` and subtract;
//! * the **difference attack** of the paper's 65-year-old example — "query
//!   the average salary and count of all employees, then of all employees
//!   under 65" and subtract.

use crate::restrict::{Pred, PrivacyError, ProtectedDatabase};

/// What a successful compromise learned about the target.
#[derive(Debug, Clone, PartialEq)]
pub struct Compromise {
    /// The inferred number of individuals matching the target formula
    /// (1 for a full individual compromise).
    pub count: u64,
    /// The inferred total of the measure over those individuals (equals
    /// the individual's value when `count == 1`).
    pub value: f64,
    /// The legal queries that were issued, for the audit trail.
    pub queries_used: Vec<String>,
}

/// The \[DS80\] individual tracker. `c1` is the broad part of the target's
/// characteristic formula, `c2` the narrowing predicate such that
/// `c1 ∧ c2` identifies the target. Every query issued passes the size
/// restriction; the target's measure total falls out by subtraction:
///
/// `sum(C1 ∧ C2) = sum(C1) − sum(C1 ∧ ¬C2)`.
pub fn individual_tracker(
    db: &ProtectedDatabase,
    c1: &[Pred],
    c2: &Pred,
    measure: &str,
) -> Result<Compromise, PrivacyError> {
    let mut queries_used = Vec::new();
    let not_c2 = match c2.cmp {
        crate::restrict::Cmp::Eq => Pred::ne(&c2.column, &c2.value),
        crate::restrict::Cmp::Ne => Pred::eq(&c2.column, &c2.value),
    };
    let mut tracker = c1.to_vec();
    tracker.push(not_c2);

    let count_c1 = db.count(c1)?;
    queries_used.push(format!("count({c1:?})"));
    let count_t = db.count(&tracker)?;
    queries_used.push(format!("count({tracker:?})"));
    let sum_c1 = db.sum(c1, measure)?;
    queries_used.push(format!("sum({c1:?}, {measure})"));
    let sum_t = db.sum(&tracker, measure)?;
    queries_used.push(format!("sum({tracker:?}, {measure})"));

    Ok(Compromise { count: count_c1 - count_t, value: sum_c1 - sum_t, queries_used })
}

/// The paper's difference attack: learn the measure of the unique
/// individual matching `distinguishing` by querying the whole population
/// and the population minus the target. `broad` may be empty (the whole
/// database) or a coarse formula both queries share.
pub fn difference_attack(
    db: &ProtectedDatabase,
    broad: &[Pred],
    distinguishing: &Pred,
    measure: &str,
) -> Result<Compromise, PrivacyError> {
    individual_tracker(db, broad, distinguishing, measure)
}

/// The \[DS80\] **general tracker**: once ANY formula `T` with
/// `2k ≤ |T| ≤ n − 2k` is found, *every* characteristic formula `C` can be
/// evaluated — even ones whose query set is far below the restriction —
/// via
///
/// `q(C) = q(C ∨ T) + q(C ∨ ¬T) − q(T) − q(¬T)`,
///
/// where all four right-hand queries are legal. This is the paper's
/// "always possible to compromise a database" negative result in its full
/// strength: the tracker is found once and reused for any target.
pub fn general_tracker(
    db: &ProtectedDatabase,
    target: &[Pred],
    tracker: &[Pred],
    measure: &str,
) -> Result<Compromise, PrivacyError> {
    use crate::restrict::negate_conjunction;
    let not_tracker = negate_conjunction(tracker);
    let mut queries_used = Vec::new();

    // C ∨ T and C ∨ ¬T as DNF formulas.
    let c_or_t: Vec<Vec<Pred>> = vec![target.to_vec(), tracker.to_vec()];
    let mut c_or_not_t: Vec<Vec<Pred>> = vec![target.to_vec()];
    c_or_not_t.extend(not_tracker.iter().cloned());
    let t_only: Vec<Vec<Pred>> = vec![tracker.to_vec()];

    let count_c_or_t = db.count_formula(&c_or_t)?;
    queries_used.push(format!("count(C ∨ T) = {count_c_or_t}"));
    let count_c_or_not_t = db.count_formula(&c_or_not_t)?;
    queries_used.push(format!("count(C ∨ ¬T) = {count_c_or_not_t}"));
    let count_t = db.count_formula(&t_only)?;
    queries_used.push(format!("count(T) = {count_t}"));
    let count_not_t = db.count_formula(&not_tracker)?;
    queries_used.push(format!("count(¬T) = {count_not_t}"));

    let sum_c_or_t = db.sum_formula(&c_or_t, measure)?;
    let sum_c_or_not_t = db.sum_formula(&c_or_not_t, measure)?;
    let sum_t = db.sum_formula(&t_only, measure)?;
    let sum_not_t = db.sum_formula(&not_tracker, measure)?;
    queries_used.push(format!("4 matching sum() queries over `{measure}`"));

    Ok(Compromise {
        count: (count_c_or_t + count_c_or_not_t)
            .saturating_sub(count_t)
            .saturating_sub(count_not_t),
        value: sum_c_or_t + sum_c_or_not_t - sum_t - sum_not_t,
        queries_used,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::restrict::demo_database;

    #[test]
    fn age_65_example_compromises_salary() {
        // The paper's setting: only a lower bound on query-set size. The
        // direct query for the unique 65-year-old is denied…
        let db = ProtectedDatabase::new(demo_database(), 3).lower_bound_only();
        assert!(db.sum(&[Pred::eq("age_group", "65")], "salary").is_err());
        // …but "average salary and count of all employees, then of all
        // employees under 65" recovers it exactly.
        let c = difference_attack(&db, &[], &Pred::eq("age_group", "65"), "salary").unwrap();
        assert_eq!(c.count, 1);
        assert_eq!(c.value, 180_000.0);
        assert_eq!(c.queries_used.len(), 4);
    }

    #[test]
    fn two_sided_bound_blocks_whole_population_but_not_trackers() {
        // With the [DS80] upper bound, the whole-population difference
        // attack is denied…
        let db = ProtectedDatabase::new(demo_database(), 3);
        assert!(difference_attack(&db, &[], &Pred::eq("age_group", "65"), "salary").is_err());
        // …but a tracker with a narrower C1 (dept ≠ hr: 9 = n−k members)
        // still compromises the same individual — the negative result.
        let c = individual_tracker(
            &db,
            &[Pred::ne("dept", "hr")],
            &Pred::eq("age_group", "65"),
            "salary",
        )
        .unwrap();
        assert_eq!(c.count, 1);
        assert_eq!(c.value, 180_000.0);
    }

    #[test]
    fn individual_tracker_with_narrower_c1() {
        let db = ProtectedDatabase::new(demo_database(), 3);
        // Target: the engineer who is senior (dorothy). C1 = dept=eng
        // (size 5, legal), T = eng ∧ ¬senior (size 4, legal).
        let c = individual_tracker(
            &db,
            &[Pred::eq("dept", "eng")],
            &Pred::eq("senior", "yes"),
            "salary",
        )
        .unwrap();
        assert_eq!(c.count, 1);
        assert_eq!(c.value, 180_000.0);
    }

    #[test]
    fn tracker_fails_when_padding_is_itself_too_small() {
        // k = 5: C1 = hr has only 3 members, so even the padded queries are
        // denied — the restriction holds against THIS tracker (but a
        // broader C1 still works, which is the negative result).
        let db = ProtectedDatabase::new(demo_database(), 5);
        let narrow = individual_tracker(
            &db,
            &[Pred::eq("dept", "hr")],
            &Pred::eq("age_group", "40-49"),
            "salary",
        );
        assert!(narrow.is_err());
        // Broad C1 = everyone: count() = 12 ≤ n−k = 7? No — 12 > 7, denied
        // too. The whole-population query itself violates the upper bound,
        // so with k=5 on n=12 this particular attack shape is blocked.
        assert!(difference_attack(&db, &[], &Pred::eq("age_group", "65"), "salary").is_err());
    }

    #[test]
    fn general_tracker_defeats_stronger_restriction() {
        // k = 5 on n = 12 blocked both the whole-population difference
        // attack AND the hr-padded individual tracker (see
        // `tracker_fails_when_padding_is_itself_too_small`). The general
        // tracker still wins: T = dept=eng has |T| = 5 ≥ k and |¬T| = 7,
        // so all four of its queries are legal.
        let db = ProtectedDatabase::new(demo_database(), 5).lower_bound_only();
        assert!(db.sum(&[Pred::eq("age_group", "65")], "salary").is_err());
        let c = general_tracker(
            &db,
            &[Pred::eq("age_group", "65")],
            &[Pred::eq("dept", "eng")],
            "salary",
        )
        .unwrap();
        assert_eq!(c.count, 1);
        assert_eq!(c.value, 180_000.0);
        assert!(c.queries_used.len() >= 5);
    }

    #[test]
    fn general_tracker_works_for_multi_member_targets_and_conjunction_trackers() {
        let db = ProtectedDatabase::new(demo_database(), 4).lower_bound_only();
        // Target: hr employees (3 people, below k=4 directly).
        assert!(db.count(&[Pred::eq("dept", "hr")]).is_err());
        // Tracker: a conjunction — non-senior sales (4 people).
        let c = general_tracker(
            &db,
            &[Pred::eq("dept", "hr")],
            &[Pred::eq("dept", "sales"), Pred::eq("senior", "no")],
            "salary",
        )
        .unwrap();
        assert_eq!(c.count, 3);
        assert_eq!(c.value, 60_000.0 + 66_000.0 + 58_000.0);
    }

    #[test]
    fn formula_queries_respect_restriction() {
        let db = ProtectedDatabase::new(demo_database(), 3).lower_bound_only();
        // A DNF formula with a tiny union still gets denied.
        let tiny = vec![vec![Pred::eq("age_group", "65")]];
        assert!(db.count_formula(&tiny).is_err());
        // Overlapping conjunctions are deduplicated (union semantics).
        let overlapping = vec![
            vec![Pred::eq("dept", "eng")],
            vec![Pred::eq("dept", "eng"), Pred::eq("senior", "no")],
        ];
        assert_eq!(db.count_formula(&overlapping).unwrap(), 5);
    }

    #[test]
    fn tracker_count_can_exceed_one() {
        let db = ProtectedDatabase::new(demo_database(), 3);
        // Target: the 30-39 sales employees (erin + heidi). C1 = age 30-39
        // (5 members, legal); T = 30-39 ∧ dept ≠ sales (3 members, legal).
        let c = individual_tracker(
            &db,
            &[Pred::eq("age_group", "30-39")],
            &Pred::eq("dept", "sales"),
            "salary",
        )
        .unwrap();
        assert_eq!(c.count, 2);
        assert_eq!(c.value, 70_000.0 + 68_000.0);
    }
}
