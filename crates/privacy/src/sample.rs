//! Random-sample queries (§7, approach (ii); \[OR95\]).
//!
//! "Random sample from a query set … is useful for very large datasets,
//! when the typical query set is large": instead of the exact statistic,
//! answer with the statistic of a random subsample, so repeated
//! intersection attacks estimate rather than determine an individual's
//! value. The sample is drawn *inside* the engine (the efficiency argument
//! of §5.6).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::restrict::{Pred, PrivacyError, ProtectedDatabase};

/// A [`ProtectedDatabase`] whose answers are computed over a random sample
/// of each query set.
#[derive(Debug)]
pub struct SampledDatabase {
    db: ProtectedDatabase,
    sample_size: usize,
    rng: StdRng,
}

impl SampledDatabase {
    /// Wraps `db`, answering from samples of at most `sample_size`
    /// individuals, seeded for reproducibility.
    pub fn new(db: ProtectedDatabase, sample_size: usize, seed: u64) -> Self {
        Self { db, sample_size, rng: StdRng::seed_from_u64(seed) }
    }

    /// Estimated `AVG(measure)`: the exact average of a fresh random
    /// subsample of the query set.
    pub fn avg(&mut self, preds: &[Pred], measure: &str) -> Result<f64, PrivacyError> {
        let set = self.admitted_set(preds)?;
        let sample = self.draw(&set);
        let mut s = 0.0;
        for &row in &sample {
            s += self.db.micro().num_value(measure, row)?;
        }
        Ok(s / sample.len() as f64)
    }

    /// Estimated `SUM(measure)`: subsample mean scaled to the (exact) set
    /// size — a Horvitz–Thompson style estimator.
    pub fn sum(&mut self, preds: &[Pred], measure: &str) -> Result<f64, PrivacyError> {
        let set = self.admitted_set(preds)?;
        let n = set.len();
        let sample = self.draw(&set);
        let mut s = 0.0;
        for &row in &sample {
            s += self.db.micro().num_value(measure, row)?;
        }
        Ok(s / sample.len() as f64 * n as f64)
    }

    fn admitted_set(&self, preds: &[Pred]) -> Result<Vec<usize>, PrivacyError> {
        let set = self.db.query_set(preds)?;
        // Reuse the underlying size restriction by issuing the count.
        self.db.count(preds)?;
        Ok(set)
    }

    fn draw(&mut self, set: &[usize]) -> Vec<usize> {
        if set.len() <= self.sample_size {
            return set.to_vec();
        }
        let mut pool = set.to_vec();
        pool.shuffle(&mut self.rng);
        pool.truncate(self.sample_size);
        pool
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::restrict::demo_database;

    fn big_db(n: usize) -> ProtectedDatabase {
        let mut t = statcube_core::microdata::MicroTable::new(&["group"], &["v"]);
        for i in 0..n {
            let g = if i % 2 == 0 { "a" } else { "b" };
            t.push(&[g], &[(i % 100) as f64]).unwrap();
        }
        ProtectedDatabase::new(t, 5).lower_bound_only()
    }

    #[test]
    fn small_sets_pass_through_exactly() {
        let db = ProtectedDatabase::new(demo_database(), 3).lower_bound_only();
        let mut s = SampledDatabase::new(db.clone(), 100, 1);
        // Sample size exceeds every set: answers are exact.
        let exact = db.avg(&[Pred::eq("dept", "sales")], "salary").unwrap();
        assert_eq!(s.avg(&[Pred::eq("dept", "sales")], "salary").unwrap(), exact);
    }

    #[test]
    fn estimates_are_near_but_not_equal() {
        let db = big_db(10_000);
        let exact = db.avg(&[Pred::eq("group", "a")], "v").unwrap();
        let mut s = SampledDatabase::new(db, 500, 42);
        let est = s.avg(&[Pred::eq("group", "a")], "v").unwrap();
        assert!((est - exact).abs() < 10.0, "estimate {est} vs exact {exact}");
        assert_ne!(est, exact);
        // Repeated queries see different samples.
        let est2 = s.avg(&[Pred::eq("group", "a")], "v").unwrap();
        assert_ne!(est, est2);
    }

    #[test]
    fn sum_estimator_is_unbiased_in_expectation() {
        let db = big_db(2_000);
        let exact = db.sum(&[Pred::eq("group", "b")], "v").unwrap();
        let mut s = SampledDatabase::new(db, 200, 7);
        let mut total = 0.0;
        let trials = 50;
        for _ in 0..trials {
            total += s.sum(&[Pred::eq("group", "b")], "v").unwrap();
        }
        let mean = total / trials as f64;
        assert!((mean - exact).abs() / exact < 0.05, "mean of estimates {mean} vs exact {exact}");
    }

    #[test]
    fn restriction_still_enforced() {
        let db = ProtectedDatabase::new(demo_database(), 3).lower_bound_only();
        let mut s = SampledDatabase::new(db, 100, 1);
        assert!(s.avg(&[Pred::eq("age_group", "65")], "salary").is_err());
    }

    #[test]
    fn tracker_against_samples_only_estimates() {
        // The difference attack still runs, but its answer is now noisy:
        // the attacker cannot pin the individual's exact salary.
        let db = big_db(10_000);
        let exact_total = db.sum(&[], "v").unwrap();
        let mut s = SampledDatabase::new(db, 500, 9);
        let broad = s.sum(&[], "v").unwrap();
        let rest = s.sum(&[Pred::eq("group", "a")], "v").unwrap();
        // broad − rest should be the "b" total, but sampling error is large
        // relative to any single individual's value (≤ 99).
        let inferred_b = broad - rest;
        let exact_b =
            exact_total - (0..10_000).filter(|i| i % 2 == 0).map(|i| (i % 100) as f64).sum::<f64>();
        assert!((inferred_b - exact_b).abs() > 100.0, "sampling noise should swamp an individual");
    }
}
