//! Bridge to the in-path enforcement the workspace planner applies.
//!
//! The modules of this crate implement §7's mechanisms over *microdata*
//! tables, attacks included — the study side. The query engine enforces
//! the same mechanisms *in-path*: every plan carries a mandatory privacy
//! pass ([`statcube_core::plan::PrivacyPolicy`]), and the one workspace
//! executor runs suppression, the tracker guard, complementary
//! suppression, and output perturbation on every answered grouping set
//! before any row leaves the plan layer — SQL, the cube store, cached
//! sessions, and the navigator all go through it.
//!
//! This module provides the presets connecting the two sides, and its
//! tests cross-validate the plan-layer operators against this crate's
//! reference implementations ([`crate::suppress`], [`crate::tracker`],
//! [`crate::perturb`]): same primary-suppression rule, same no-invertible-
//! line invariant, same bounded-deterministic-noise contract.

use statcube_core::plan::PrivacyPolicy;

/// Census-style cell suppression: withhold cells built from fewer than
/// `k` micro units, plus complementary cells so no published line can be
/// inverted (the in-path analogue of [`crate::suppress::plan_suppression`]).
pub fn cell_suppression(k: u64) -> PrivacyPolicy {
    PrivacyPolicy::suppress(k)
}

/// [`cell_suppression`] hardened against the \[DS80\] difference attack:
/// a cell within `k` of its grouping set's total is also withheld, since
/// `total − cell` would disclose a small complement (the in-path analogue
/// of the attacks in [`crate::tracker`]).
pub fn tracker_guarded(k: u64) -> PrivacyPolicy {
    PrivacyPolicy::suppress(k).with_tracker_guard()
}

/// Output perturbation: seeded noise in `[−magnitude, magnitude)` on every
/// published sum. Deterministic per cell, so averaging repeated queries
/// gains nothing (the in-path analogue of
/// [`crate::perturb::OutputPerturbedDatabase`]).
pub fn output_perturbed(magnitude: f64, seed: u64) -> PrivacyPolicy {
    PrivacyPolicy::none().with_perturbation(magnitude, seed)
}

/// The full §7 stack: suppression, tracker guard, and output perturbation
/// composed in one policy.
pub fn full(k: u64, magnitude: f64, seed: u64) -> PrivacyPolicy {
    PrivacyPolicy::suppress(k).with_tracker_guard().with_perturbation(magnitude, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suppress::plan_suppression;
    use statcube_core::dimension::Dimension;
    use statcube_core::measure::{MeasureKind, SummaryAttribute, SummaryFunction};
    use statcube_core::object::StatisticalObject;
    use statcube_core::plan::{
        self, AggRequest, GroupingSpec, ObjectSource, Plan, PlanExecution, Planner,
    };
    use statcube_core::schema::Schema;

    /// A 3×3 count table as a statistical object: `t[r][c]` micro units in
    /// cell (product r, store c).
    fn object_of(t: &[Vec<u64>]) -> StatisticalObject {
        let products = ["p0", "p1", "p2"];
        let stores = ["s0", "s1", "s2"];
        let schema = Schema::builder("t")
            .dimension(Dimension::categorical("product", products))
            .dimension(Dimension::categorical("store", stores))
            .measure(SummaryAttribute::new("v", MeasureKind::Flow))
            .build()
            .unwrap();
        let mut o = StatisticalObject::empty(schema);
        for (r, row) in t.iter().enumerate() {
            for (c, &n) in row.iter().enumerate() {
                for _ in 0..n {
                    o.insert(&[products[r], stores[c]], 1.0).unwrap();
                }
            }
        }
        o
    }

    fn run(o: &StatisticalObject, plan: &Plan, policy: PrivacyPolicy) -> PlanExecution {
        let planned = Planner::for_object(o.schema()).with_policy(policy).plan(plan).unwrap();
        // Project the object down to the plan's base mask (the source
        // contract: the object holds exactly the scanned dimensions).
        let mut base = o.clone();
        for (d, dim) in o.schema().dimensions().iter().enumerate() {
            if planned.base_mask() >> d & 1 == 0 {
                base = statcube_core::ops::s_project_unchecked(&base, dim.name()).unwrap();
            }
        }
        let src = ObjectSource::new(&base, planned.base_mask()).unwrap();
        plan::execute(&planned, &src).unwrap()
    }

    fn count_agg() -> AggRequest {
        AggRequest { func: SummaryFunction::Count, measure: None, label: "COUNT(*)".into() }
    }

    #[test]
    fn plan_layer_suppression_matches_the_reference_planner() {
        let t = vec![vec![2, 20, 30], vec![15, 25, 35], vec![40, 45, 50]];
        let reference = plan_suppression(&t, 5);
        assert_eq!(reference.primary.len(), 1);

        let o = object_of(&t);
        let cube = Plan::scan("t").grouping_sets(
            vec!["product".into(), "store".into()],
            GroupingSpec::Cube,
            vec![count_agg()],
        );
        let exec = run(&o, &cube, cell_suppression(5));

        let fine = exec.sets.iter().find(|s| s.target == 0b11).unwrap();
        let by_product = exec.sets.iter().find(|s| s.target == 0b01).unwrap();
        let by_store = exec.sets.iter().find(|s| s.target == 0b10).unwrap();
        let suppressed_at = |block: &statcube_core::plan::CellBlock, key: &[u32]| {
            block.is_suppressed(block.find(key).unwrap())
        };
        let hidden = |r: usize, c: usize| suppressed_at(&fine.cells, &[r as u32, c as u32]);

        // Same primary rule: every reference-primary cell is withheld.
        for &(r, c) in &reference.primary {
            assert!(hidden(r, c), "primary cell ({r},{c}) published");
        }
        // Complementary suppression fired in-path too.
        let total_hidden: usize = (0..3).map(|r| (0..3).filter(|&c| hidden(r, c)).count()).sum();
        assert!(total_hidden >= 2, "no complementary partner was withheld");
        // Same invariant as `suppress::line_safe`: a published marginal
        // line never contains exactly one suppressed interior cell.
        for r in 0..3 {
            let in_row = (0..3).filter(|&c| hidden(r, c)).count();
            assert!(
                suppressed_at(&by_product.cells, &[r as u32]) || in_row != 1,
                "row {r} invertible from its published marginal"
            );
        }
        for c in 0..3 {
            let in_col = (0..3).filter(|&r| hidden(r, c)).count();
            assert!(
                suppressed_at(&by_store.cells, &[c as u32]) || in_col != 1,
                "column {c} invertible from its published marginal"
            );
        }
        // Published cells carry the exact counts.
        for (r, row) in t.iter().enumerate() {
            for (c, &expected) in row.iter().enumerate() {
                let i = fine.cells.find(&[r as u32, c as u32]).unwrap();
                if !fine.cells.is_suppressed(i) {
                    assert_eq!(fine.cells.state(0, i).count, expected);
                }
            }
        }
    }

    #[test]
    fn tracker_guard_withholds_the_difference_attack_cell() {
        // One dominant cell: `total − dominant` is a small count, the
        // exact disclosure the [DS80] tracker exploits.
        let t = vec![vec![96, 0, 0], vec![2, 0, 0], vec![2, 0, 0]];
        let o = object_of(&t);
        let by_product = Plan::scan("t").grouping_sets(
            vec!["product".into()],
            GroupingSpec::Single,
            vec![count_agg()],
        );
        let dominant = [0u32];

        // Plain suppression withholds the two small cells but publishes
        // the dominant one…
        let open = &run(&o, &by_product, cell_suppression(5)).sets[0].cells;
        assert!(!open.is_suppressed(open.find(&dominant).unwrap()));
        // …which the tracker guard recognizes as a difference attack.
        let guarded = &run(&o, &by_product, tracker_guarded(5)).sets[0].cells;
        assert!(guarded.is_suppressed(guarded.find(&dominant).unwrap()));
        assert!((0..guarded.len()).all(|i| guarded.is_suppressed(i)));
    }

    #[test]
    fn output_perturbation_is_bounded_and_deterministic() {
        let t = vec![vec![10, 20, 30], vec![40, 50, 60], vec![70, 80, 90]];
        let o = object_of(&t);
        let by_product = Plan::scan("t").grouping_sets(
            vec!["product".into()],
            GroupingSpec::Single,
            vec![count_agg()],
        );
        let sums = |exec: &PlanExecution| {
            let block = &exec.sets[0].cells;
            let v: Vec<(Box<[u32]>, f64)> = (0..block.len())
                .map(|i| (block.key(i).to_vec().into_boxed_slice(), block.state(0, i).sum))
                .collect();
            v
        };
        let a = sums(&run(&o, &by_product, output_perturbed(0.5, 7)));
        let b = sums(&run(&o, &by_product, output_perturbed(0.5, 7)));
        assert_eq!(a, b, "same seed must give identical noise");
        let clean = sums(&run(&o, &by_product, PrivacyPolicy::none()));
        for ((key, noisy), (_, exact)) in a.iter().zip(&clean) {
            assert!((noisy - exact).abs() <= 0.5, "noise out of bounds for {key:?}");
            assert_ne!(noisy, exact, "noise missing for {key:?}");
        }
        let other = sums(&run(&o, &by_product, output_perturbed(0.5, 8)));
        assert_ne!(a, other, "seed must matter");
    }

    #[test]
    fn full_stack_composes() {
        let p = full(3, 1.0, 42);
        assert_eq!(p.suppress_k, Some(3));
        assert!(p.tracker_guard);
        assert!(p.perturb.is_some());
        assert!(!p.is_none());
        assert_ne!(p.fingerprint(), 0);
        assert_ne!(p.fingerprint(), cell_suppression(3).fingerprint());
    }
}
