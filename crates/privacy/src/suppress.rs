//! Cell suppression (§7, approach (iii); §3.1's census practice).
//!
//! "Pre-partition the dataset into cells, and give responses that involve
//! whole cells only … requires *cell suppression* (cells that contain too
//! few individuals cannot be reported)." Suppressing only the sensitive
//! cells is not enough when marginals are published: a row with exactly one
//! suppressed cell lets anyone subtract it back out. So after **primary**
//! suppression, **complementary** suppression removes additional cells
//! until no row or column can be inverted, iterating to a fixpoint.

use std::collections::HashSet;

/// The outcome of planning suppression for a 2-D count table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SuppressionPlan {
    /// Cells suppressed because their count is below the threshold.
    pub primary: HashSet<(usize, usize)>,
    /// Cells additionally suppressed to protect the primary ones.
    pub complementary: HashSet<(usize, usize)>,
}

impl SuppressionPlan {
    /// All suppressed cells.
    pub fn all(&self) -> HashSet<(usize, usize)> {
        self.primary.union(&self.complementary).copied().collect()
    }

    /// True if cell `(r, c)` is suppressed.
    pub fn is_suppressed(&self, r: usize, c: usize) -> bool {
        self.primary.contains(&(r, c)) || self.complementary.contains(&(r, c))
    }
}

/// Plans suppression for `table[r][c]` of counts: primary-suppress every
/// non-zero cell with count < `threshold`, then complementary-suppress (the
/// smallest eligible cell in the offending row/column) until every row and
/// column contains zero or at least two suppressed cells.
#[allow(clippy::needless_range_loop)] // row/column line scans by index
pub fn plan_suppression(table: &[Vec<u64>], threshold: u64) -> SuppressionPlan {
    let rows = table.len();
    let cols = table.first().map(Vec::len).unwrap_or(0);
    let mut primary = HashSet::new();
    for (r, row) in table.iter().enumerate() {
        for (c, &v) in row.iter().enumerate() {
            if v > 0 && v < threshold {
                primary.insert((r, c));
            }
        }
    }
    let mut all: HashSet<(usize, usize)> = primary.clone();
    // Iterate to fixpoint: any line (row or column) with exactly one
    // suppressed cell is invertible from its marginal.
    loop {
        let mut changed = false;
        for r in 0..rows {
            let in_row: Vec<usize> = (0..cols).filter(|&c| all.contains(&(r, c))).collect();
            if in_row.len() == 1 {
                // Suppress the smallest other non-zero cell in the row;
                // fall back to any other cell (zero cells reveal nothing,
                // but a row of zeros needs no protection anyway).
                let pick = (0..cols)
                    .filter(|&c| !all.contains(&(r, c)))
                    .min_by_key(|&c| (table[r][c] == 0, table[r][c]));
                if let Some(c) = pick {
                    all.insert((r, c));
                    changed = true;
                }
            }
        }
        for c in 0..cols {
            let in_col: Vec<usize> = (0..rows).filter(|&r| all.contains(&(r, c))).collect();
            if in_col.len() == 1 {
                let pick = (0..rows)
                    .filter(|&r| !all.contains(&(r, c)))
                    .min_by_key(|&r| (table[r][c] == 0, table[r][c]));
                if let Some(r) = pick {
                    all.insert((r, c));
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    let complementary = all.difference(&primary).copied().collect();
    SuppressionPlan { primary, complementary }
}

/// A published table: cells (`None` = suppressed), row totals, column
/// totals, grand total.
pub type PublishedTable = (Vec<Vec<Option<u64>>>, Vec<u64>, Vec<u64>, u64);

/// Applies a plan: suppressed cells become `None`, the rest keep their
/// counts. Marginals (row/column/grand totals) are computed over the
/// *original* data, as published tables do.
pub fn apply_suppression(table: &[Vec<u64>], plan: &SuppressionPlan) -> PublishedTable {
    let rows = table.len();
    let cols = table.first().map(Vec::len).unwrap_or(0);
    let mut out = vec![vec![None; cols]; rows];
    let mut row_totals = vec![0u64; rows];
    let mut col_totals = vec![0u64; cols];
    let mut grand = 0u64;
    for (r, row) in table.iter().enumerate() {
        for (c, &v) in row.iter().enumerate() {
            row_totals[r] += v;
            col_totals[c] += v;
            grand += v;
            if !plan.is_suppressed(r, c) {
                out[r][c] = Some(v);
            }
        }
    }
    (out, row_totals, col_totals, grand)
}

/// Checks that no suppressed cell is recoverable by simple line
/// subtraction: every row and column has zero or ≥ 2 suppressed cells.
pub fn line_safe(table: &[Vec<u64>], plan: &SuppressionPlan) -> bool {
    let rows = table.len();
    let cols = table.first().map(Vec::len).unwrap_or(0);
    for r in 0..rows {
        let n = (0..cols).filter(|&c| plan.is_suppressed(r, c)).count();
        if n == 1 {
            return false;
        }
    }
    for c in 0..cols {
        let n = (0..rows).filter(|&r| plan.is_suppressed(r, c)).count();
        if n == 1 {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_sensitive_cells_no_suppression() {
        let t = vec![vec![10, 20], vec![30, 40]];
        let plan = plan_suppression(&t, 5);
        assert!(plan.primary.is_empty());
        assert!(plan.complementary.is_empty());
        assert!(line_safe(&t, &plan));
    }

    #[test]
    fn primary_plus_complementary_protects_lines() {
        // One sensitive cell: its row and column each need a partner.
        let t = vec![vec![2, 20, 30], vec![15, 25, 35], vec![40, 45, 50]];
        let plan = plan_suppression(&t, 5);
        assert_eq!(plan.primary, HashSet::from([(0, 0)]));
        assert!(!plan.complementary.is_empty());
        assert!(line_safe(&t, &plan));
        // The sensitive cell itself is suppressed in the output.
        let (published, row_totals, _, grand) = apply_suppression(&t, &plan);
        assert_eq!(published[0][0], None);
        assert_eq!(row_totals[0], 52);
        assert_eq!(grand, 262);
        // Unsuppressed cells are published verbatim.
        assert_eq!(published[2][2], Some(50));
    }

    #[test]
    fn single_subtraction_attack_fails_after_planning() {
        let t = vec![vec![1, 9, 10], vec![8, 2, 10], vec![10, 10, 10]];
        let plan = plan_suppression(&t, 5);
        assert_eq!(plan.primary.len(), 2);
        assert!(line_safe(&t, &plan));
        // Attack simulation: for every suppressed cell, try to recover it
        // as row_total − (sum of published cells in the row). It must be
        // impossible (another suppressed cell blocks the subtraction).
        let (published, row_totals, _, _) = apply_suppression(&t, &plan);
        for &(r, c) in &plan.all() {
            let known: u64 = published[r].iter().flatten().sum();
            let residual = row_totals[r] - known;
            let unknown_cells = published[r].iter().filter(|v| v.is_none()).count();
            assert!(unknown_cells >= 2 || residual != t[r][c], "cell ({r},{c}) recoverable");
        }
    }

    #[test]
    fn zeros_are_not_sensitive() {
        let t = vec![vec![0, 10], vec![10, 10]];
        let plan = plan_suppression(&t, 5);
        assert!(plan.primary.is_empty());
    }

    #[test]
    fn heavily_sensitive_table() {
        // Everything below threshold: primary suppression already covers
        // whole lines, so no complementary cells are needed.
        let t = vec![vec![1, 2], vec![3, 4]];
        let plan = plan_suppression(&t, 5);
        assert_eq!(plan.primary.len(), 4);
        assert!(plan.complementary.is_empty());
        assert!(line_safe(&t, &plan));
    }

    #[test]
    fn empty_table() {
        let plan = plan_suppression(&[], 5);
        assert!(plan.all().is_empty());
        assert!(line_safe(&[], &plan));
    }
}
