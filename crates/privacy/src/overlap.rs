//! Query-set overlap control (§7, approach (i)).
//!
//! "Limiting the query set intersection … requires keeping track of all
//! query sets, and making sure that a new query set does not intersect
//! with previous ones" beyond a permitted size. This blocks the subtraction
//! step of a tracker (whose padded set overlaps the broad set almost
//! entirely), at the cost the paper names: for small databases the auditor
//! eventually refuses everything.

use std::collections::HashSet;

use crate::restrict::{Pred, PrivacyError, ProtectedDatabase};

/// A [`ProtectedDatabase`] wrapped with an overlap auditor: a query is
/// answered only if its set's intersection with every previously answered
/// set has at most `max_overlap` members (and the size restriction holds).
#[derive(Debug)]
pub struct OverlapAuditedDatabase {
    db: ProtectedDatabase,
    max_overlap: usize,
    answered: Vec<HashSet<usize>>,
}

impl OverlapAuditedDatabase {
    /// Wraps `db` with overlap limit `max_overlap`.
    pub fn new(db: ProtectedDatabase, max_overlap: usize) -> Self {
        Self { db, max_overlap, answered: Vec::new() }
    }

    /// Number of queries answered so far (the audit log's size — the
    /// paper's scalability complaint made visible).
    pub fn answered_count(&self) -> usize {
        self.answered.len()
    }

    fn admit(&mut self, preds: &[Pred]) -> Result<HashSet<usize>, PrivacyError> {
        let set: HashSet<usize> = self.db.query_set(preds)?.into_iter().collect();
        for prev in &self.answered {
            let overlap = prev.intersection(&set).count();
            if overlap > self.max_overlap {
                return Err(PrivacyError::OverlapDenied { overlap, max_overlap: self.max_overlap });
            }
        }
        Ok(set)
    }

    /// `COUNT` under restriction + overlap control.
    pub fn count(&mut self, preds: &[Pred]) -> Result<u64, PrivacyError> {
        let set = self.admit(preds)?;
        let n = self.db.count(preds)?;
        self.answered.push(set);
        Ok(n)
    }

    /// `SUM` under restriction + overlap control.
    pub fn sum(&mut self, preds: &[Pred], measure: &str) -> Result<f64, PrivacyError> {
        let set = self.admit(preds)?;
        let v = self.db.sum(preds, measure)?;
        self.answered.push(set);
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::restrict::demo_database;

    #[test]
    fn tracker_subtraction_is_blocked() {
        let db = ProtectedDatabase::new(demo_database(), 3).lower_bound_only();
        let mut audited = OverlapAuditedDatabase::new(db, 2);
        // Broad query answered.
        assert!(audited.sum(&[], "salary").is_ok());
        // The padded tracker query overlaps the broad set in 11 members —
        // refused, so the subtraction cannot complete.
        let err = audited.sum(&[Pred::ne("age_group", "65")], "salary").unwrap_err();
        assert!(matches!(err, PrivacyError::OverlapDenied { overlap: 11, .. }));
    }

    #[test]
    fn disjoint_queries_keep_flowing() {
        let db = ProtectedDatabase::new(demo_database(), 3).lower_bound_only();
        let mut audited = OverlapAuditedDatabase::new(db, 0);
        assert!(audited.count(&[Pred::eq("dept", "eng")]).is_ok());
        assert!(audited.count(&[Pred::eq("dept", "sales")]).is_ok());
        // hr has 3 members, disjoint from both: fine.
        assert!(audited.count(&[Pred::eq("dept", "hr")]).is_ok());
        assert_eq!(audited.answered_count(), 3);
        // Any overlapping query is now dead — the exhaustion the paper
        // warns about.
        assert!(audited.count(&[Pred::eq("age_group", "30-39")]).is_err());
    }

    #[test]
    fn denied_queries_do_not_pollute_the_log() {
        let db = ProtectedDatabase::new(demo_database(), 3).lower_bound_only();
        let mut audited = OverlapAuditedDatabase::new(db, 2);
        assert!(audited.sum(&[], "salary").is_ok());
        assert!(audited.sum(&[Pred::ne("age_group", "65")], "salary").is_err());
        assert_eq!(audited.answered_count(), 1);
        // Size restriction still applies underneath.
        assert!(audited.count(&[Pred::eq("age_group", "65")]).is_err());
        assert_eq!(audited.answered_count(), 1);
    }

    #[test]
    fn partial_overlap_within_limit_is_answered() {
        let db = ProtectedDatabase::new(demo_database(), 3).lower_bound_only();
        let mut audited = OverlapAuditedDatabase::new(db, 2);
        assert!(audited.count(&[Pred::eq("dept", "eng")]).is_ok()); // 5 members
                                                                    // age 30-39 ∩ eng = {alice, carol}: overlap 2 ≤ 2, answered.
        assert!(audited.count(&[Pred::eq("age_group", "30-39")]).is_ok());
    }
}
