//! Data perturbation (§7, approaches (iv) and (v)).
//!
//! * **Input perturbation** — store "statistically correct, but perturbed
//!   data for general consumption": each individual's value is noised once
//!   at load time, so no sequence of queries ever reaches the true value.
//! * **Output perturbation** — answer each query with bounded noise added
//!   to the true statistic.
//!
//! Both trade accuracy for privacy; [`accuracy_report`] quantifies the
//! trade the E19 harness tabulates. Noise is zero-mean uniform on
//! `[-magnitude, +magnitude]`, seeded for reproducibility.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use statcube_core::microdata::MicroTable;

use crate::restrict::{Pred, PrivacyError, ProtectedDatabase};

/// Builds an input-perturbed copy of `micro`: every value of `measure`
/// gets independent uniform noise in `[-magnitude, +magnitude]`.
pub fn input_perturb(
    micro: &MicroTable,
    measure: &str,
    magnitude: f64,
    seed: u64,
) -> Result<MicroTable, PrivacyError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let cat_names: Vec<&str> = micro.categorical_names().iter().map(String::as_str).collect();
    let num_names: Vec<&str> = micro.numeric_names().iter().map(String::as_str).collect();
    let mut out = MicroTable::new(&cat_names, &num_names);
    for row in 0..micro.len() {
        let cats: Vec<&str> =
            cat_names.iter().map(|c| micro.cat_value(c, row)).collect::<Result<_, _>>()?;
        let nums: Vec<f64> = num_names
            .iter()
            .map(|n| {
                let v = micro.num_value(n, row)?;
                Ok(if *n == measure { v + rng.random_range(-magnitude..=magnitude) } else { v })
            })
            .collect::<Result<_, PrivacyError>>()?;
        out.push(&cats, &nums)?;
    }
    Ok(out)
}

/// A [`ProtectedDatabase`] adding fresh uniform noise to every answer
/// (output perturbation).
#[derive(Debug)]
pub struct OutputPerturbedDatabase {
    db: ProtectedDatabase,
    magnitude: f64,
    rng: StdRng,
}

impl OutputPerturbedDatabase {
    /// Wraps `db` with noise magnitude `magnitude`.
    pub fn new(db: ProtectedDatabase, magnitude: f64, seed: u64) -> Self {
        Self { db, magnitude, rng: StdRng::seed_from_u64(seed) }
    }

    /// Noised `SUM`.
    pub fn sum(&mut self, preds: &[Pred], measure: &str) -> Result<f64, PrivacyError> {
        let v = self.db.sum(preds, measure)?;
        Ok(v + self.rng.random_range(-self.magnitude..=self.magnitude))
    }

    /// Noised `AVG`.
    pub fn avg(&mut self, preds: &[Pred], measure: &str) -> Result<f64, PrivacyError> {
        let v = self.db.avg(preds, measure)?;
        Ok(v + self.rng.random_range(-self.magnitude..=self.magnitude))
    }

    /// Noised `COUNT` (rounded, clamped at zero).
    pub fn count(&mut self, preds: &[Pred]) -> Result<u64, PrivacyError> {
        let v = self.db.count(preds)? as f64;
        let noised = v + self.rng.random_range(-self.magnitude..=self.magnitude);
        Ok(noised.round().max(0.0) as u64)
    }
}

/// Accuracy of a perturbed answer stream vs. the truth: mean error (bias)
/// and root-mean-square error.
pub fn accuracy_report(truth: &[f64], answers: &[f64]) -> (f64, f64) {
    assert_eq!(truth.len(), answers.len());
    if truth.is_empty() {
        return (0.0, 0.0);
    }
    let n = truth.len() as f64;
    let bias = truth.iter().zip(answers).map(|(t, a)| a - t).sum::<f64>() / n;
    let rmse = (truth.iter().zip(answers).map(|(t, a)| (a - t) * (a - t)).sum::<f64>() / n).sqrt();
    (bias, rmse)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::restrict::demo_database;

    #[test]
    fn input_perturbation_changes_values_but_not_structure() {
        let micro = demo_database();
        let noised = input_perturb(&micro, "salary", 5_000.0, 42).unwrap();
        assert_eq!(noised.len(), micro.len());
        let mut any_changed = false;
        for row in 0..micro.len() {
            assert_eq!(
                micro.cat_value("name", row).unwrap(),
                noised.cat_value("name", row).unwrap()
            );
            let t = micro.num_value("salary", row).unwrap();
            let p = noised.num_value("salary", row).unwrap();
            assert!((t - p).abs() <= 5_000.0);
            any_changed |= t != p;
        }
        assert!(any_changed);
    }

    #[test]
    fn input_perturbation_defeats_exact_trackers() {
        let micro = demo_database();
        let noised = input_perturb(&micro, "salary", 5_000.0, 7).unwrap();
        let db = ProtectedDatabase::new(noised, 3).lower_bound_only();
        let c = crate::tracker::difference_attack(&db, &[], &Pred::eq("age_group", "65"), "salary")
            .unwrap();
        // The attack still "works" mechanically, but the recovered value is
        // only an approximation of the true 180k.
        assert!(c.value != 180_000.0);
        assert!((c.value - 180_000.0).abs() <= 5_000.0);
    }

    #[test]
    fn output_perturbation_bounds_error() {
        let db = ProtectedDatabase::new(demo_database(), 3).lower_bound_only();
        let truth = db.avg(&[Pred::eq("dept", "sales")], "salary").unwrap();
        let mut noisy = OutputPerturbedDatabase::new(db, 1_000.0, 3);
        for _ in 0..20 {
            let a = noisy.avg(&[Pred::eq("dept", "sales")], "salary").unwrap();
            assert!((a - truth).abs() <= 1_000.0);
        }
    }

    #[test]
    fn output_perturbation_varies_per_query() {
        let db = ProtectedDatabase::new(demo_database(), 3).lower_bound_only();
        let mut noisy = OutputPerturbedDatabase::new(db, 1_000.0, 3);
        let a = noisy.sum(&[Pred::eq("dept", "eng")], "salary").unwrap();
        let b = noisy.sum(&[Pred::eq("dept", "eng")], "salary").unwrap();
        // Fresh noise per answer: averaging attacks need many queries,
        // which the auditor (overlap control) would flag.
        assert_ne!(a, b);
        let c = noisy.count(&[Pred::eq("dept", "eng")]).unwrap();
        assert!(c <= 5 + 1_000);
    }

    #[test]
    fn restriction_enforced_under_perturbation() {
        let db = ProtectedDatabase::new(demo_database(), 3).lower_bound_only();
        let mut noisy = OutputPerturbedDatabase::new(db, 100.0, 1);
        assert!(noisy.sum(&[Pred::eq("age_group", "65")], "salary").is_err());
    }

    #[test]
    fn accuracy_report_math() {
        let (bias, rmse) = accuracy_report(&[10.0, 20.0], &[11.0, 19.0]);
        assert_eq!(bias, 0.0);
        assert!((rmse - 1.0).abs() < 1e-12);
        let (bias, rmse) = accuracy_report(&[0.0], &[3.0]);
        assert_eq!(bias, 3.0);
        assert_eq!(rmse, 3.0);
        assert_eq!(accuracy_report(&[], &[]), (0.0, 0.0));
    }
}
