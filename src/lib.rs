//! # statcube
//!
//! A Statistical Object / OLAP engine reproducing Arie Shoshani,
//! *"OLAP and Statistical Databases: Similarities and Differences"*
//! (PODS 1997).
//!
//! The paper argues that Statistical Databases (SDBs) and OLAP systems share
//! one conceptual structure — the **Statistical Object**: a summary measure,
//! a summary function, a set of dimensions, and zero or more classification
//! hierarchies — and surveys the modeling, operator, physical-organization,
//! and privacy techniques of both areas. This workspace implements all of it:
//!
//! * [`core`] — the Statistical Object data type: STORM schema graphs,
//!   classification hierarchies, summarizability checking, the statistical
//!   operator algebra (S-select / S-project / S-aggregation / S-union) and
//!   its OLAP aliases (slice / dice / roll-up / drill-down), automatic
//!   aggregation, 2-D statistical tables with marginals, micro→macro
//!   summarization, and classification matching.
//! * [`storage`] — every physical organization the paper surveys: row
//!   stores, transposed (columnar) files, bit-transposed files, header
//!   compression, array linearization, chunked subcubes, extendible arrays,
//!   and star schemas — over a page-granular simulated I/O layer.
//! * [`cube`] — the CUBE operator with `ALL`, the cuboid lattice, greedy
//!   view materialization (HRU), and MOLAP/ROLAP cube-computation engines.
//! * [`privacy`] — statistical inference control: query-set-size
//!   restriction, tracker attacks, overlap auditing, cell suppression,
//!   random-sample queries, and perturbation.
//! * [`sql`] — a small SQL dialect with the `GROUP BY CUBE` / `ROLLUP`
//!   extensions of \[GB+96\], executed against statistical objects.
//! * [`workload`] — seeded synthetic census / retail / stock / HMO data.
//!
//! ## Quickstart
//!
//! ```
//! use statcube::core::prelude::*;
//!
//! // "Employment in California by sex by year by profession" (paper Fig. 1)
//! let profession = Hierarchy::builder("profession")
//!     .level("profession")
//!     .level("professional class")
//!     .edge("chemical engineer", "engineer")
//!     .edge("civil engineer", "engineer")
//!     .edge("junior secretary", "secretary")
//!     .edge("executive secretary", "secretary")
//!     .build()
//!     .unwrap();
//!
//! let schema = Schema::builder("Employment in California")
//!     .dimension(Dimension::categorical("sex", ["male", "female"]))
//!     .dimension(Dimension::temporal("year", ["1991", "1992"]))
//!     .dimension(Dimension::classified("profession", profession))
//!     .measure(SummaryAttribute::new("employment", MeasureKind::Stock))
//!     .function(SummaryFunction::Sum)
//!     .build()
//!     .unwrap();
//!
//! let mut obj = StatisticalObject::empty(schema);
//! obj.insert(&["male", "1991", "civil engineer"], 241_100.0).unwrap();
//! obj.insert(&["male", "1991", "chemical engineer"], 197_700.0).unwrap();
//!
//! // Roll up professions to the professional-class level (OLAP: roll-up,
//! // SDB: S-aggregation) and read the "engineer" total.
//! let by_class = obj.roll_up("profession", "professional class").unwrap();
//! let engineers = by_class.get(&["male", "1991", "engineer"]).unwrap();
//! assert_eq!(engineers, Some(438_800.0));
//! ```

pub use statcube_core as core;
pub use statcube_cube as cube;
pub use statcube_privacy as privacy;
pub use statcube_sql as sql;
pub use statcube_storage as storage;
pub use statcube_workload as workload;

/// Convenience prelude re-exporting the most common types from all crates.
pub mod prelude {
    pub use statcube_core::prelude::*;
    pub use statcube_cube::prelude::*;
    pub use statcube_privacy::prelude::*;
    pub use statcube_sql::prelude::*;
    pub use statcube_storage::prelude::*;
    pub use statcube_workload::prelude::*;
}
