//! Retail OLAP (§2.2, §3.2(i)): compute the CUBE over sales facts, pick
//! materialized views with the HRU greedy algorithm, and answer ad-hoc
//! group-bys from the cheapest view — the warehouse workflow of §6.3.
//!
//! ```text
//! cargo run --release --example retail_olap
//! ```

use statcube::core::prelude::*;
use statcube::cube::materialize;
use statcube::cube::prelude::*;
use statcube::workload::retail::{generate, RetailConfig};

fn main() -> Result<()> {
    let retail = generate(&RetailConfig {
        products: 100,
        categories: 10,
        cities: 5,
        stores_per_city: 4,
        days: 60,
        rows: 80_000,
        seed: 77,
    });
    let obj = &retail.object;
    println!(
        "sales cube: {:?} dims, {} populated cells, density {:.3}",
        obj.schema().cardinalities(),
        obj.cell_count(),
        obj.density()
    );

    // 1. Full CUBE with ALL (Fig 15): all 2^3 groupings at once.
    let facts = FactInput::from_object(obj)?;
    let cube = compute_shared(&facts);
    println!("CUBE produced {} cuboids, {} cells total", cube.masks().len(), cube.total_cells());
    let grand = cube.get_all(&[None, None, None]).expect("grand total");
    println!("grand total (ALL, ALL, ALL): ${:.0} over {} transactions", grand.sum, grand.count);

    // 2. View selection: which summaries to pre-compute (§6.3, [HUR96])?
    let lattice = Lattice::new(facts.cards(), facts.len() as u64)?;
    let greedy = materialize::greedy_select(&lattice, 3)?;
    let dim_names = ["product", "store", "day"];
    println!("\ngreedy view selection:");
    for (mask, benefit) in greedy.selected.iter().zip(&greedy.benefits) {
        let name: Vec<&str> =
            (0..3).filter(|d| mask & (1 << d) != 0).map(|d| dim_names[d]).collect();
        println!(
            "  materialize {{{}}} (est. {} cells, benefit {benefit})",
            if name.is_empty() { "apex".to_owned() } else { name.join(", ") },
            lattice.size(*mask)
        );
    }

    // 3. Answer queries from the cheapest materialized ancestor.
    let store = ViewStore::build(&facts, &greedy.selected)?;
    for (mask, label) in [(0b001u32, "by product"), (0b010, "by store"), (0b110, "by store, day")] {
        let ans = store.answer(mask)?;
        println!(
            "query {label}: answered from view {:03b}, scanning {} cells → {} groups",
            ans.source,
            ans.cells_scanned,
            ans.cuboid.len()
        );
    }

    // 4. The interactive drill-down story: start at category level, spot
    //    the big category, drill into its products.
    let by_cat = obj.roll_up("product", "category")?;
    let mut cats: Vec<(String, f64)> = by_cat
        .schema()
        .dimension("product")?
        .members()
        .values()
        .map(|c| {
            let total = statcube::core::ops::s_select(&by_cat, "product", &[c])
                .map(|o| o.grand_total(0).unwrap_or(0.0))
                .unwrap_or(0.0);
            (c.to_owned(), total)
        })
        .collect();
    cats.sort_by(|a, b| b.1.total_cmp(&a.1));
    let (top_cat, top_total) = &cats[0];
    println!("\ntop category: {top_cat} (${top_total:.0}) — drilling down:");
    let members: Vec<&str> = retail
        .products
        .iter()
        .enumerate()
        .filter(|(i, _)| format!("cat{:02}", i % 10) == *top_cat)
        .map(|(_, p)| p.as_str())
        .collect();
    let drill = statcube::core::ops::s_select(obj, "product", &members)?;
    let by_product = drill.project("store")?.project("day")?;
    let mut products: Vec<(&str, f64)> = members
        .iter()
        .filter_map(|p| by_product.get(&[p]).ok().flatten().map(|v| (*p, v)))
        .collect();
    products.sort_by(|a, b| b.1.total_cmp(&a.1));
    for (p, v) in products.iter().take(3) {
        println!("  {p}: ${v:.0}");
    }
    Ok(())
}
