//! Quickstart: build the paper's Fig 1 statistical object and walk the
//! whole vocabulary — slice, dice, roll up, drill down, marginals.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use statcube::core::prelude::*;
use statcube::core::table2d::Table2D;

fn main() -> Result<()> {
    // "Employment in California" by sex by year by profession (Fig 1),
    // with the professional-class classification hierarchy.
    let profession = Hierarchy::builder("profession")
        .level("profession")
        .level("professional class")
        .edge("chemical engineer", "engineer")
        .edge("civil engineer", "engineer")
        .edge("junior secretary", "secretary")
        .edge("executive secretary", "secretary")
        .edge("elementary teacher", "teacher")
        .edge("high school teacher", "teacher")
        .build()?;

    let schema = Schema::builder("Employment in California")
        .dimension(Dimension::categorical("sex", ["male", "female"]))
        .dimension(Dimension::temporal("year", ["91", "92"]))
        .dimension(Dimension::classified("profession", profession))
        .measure(SummaryAttribute::new("employment", MeasureKind::Stock))
        .function(SummaryFunction::Sum)
        .context("state", "California")
        .build()?;

    let mut employment = StatisticalObject::empty(schema);
    for (sex, year, profession, count) in [
        ("male", "91", "chemical engineer", 197_700.0),
        ("male", "91", "civil engineer", 241_100.0),
        ("male", "92", "chemical engineer", 209_900.0),
        ("male", "92", "civil engineer", 278_000.0),
        ("female", "91", "junior secretary", 667_300.0),
        ("female", "91", "executive secretary", 162_300.0),
        ("female", "92", "junior secretary", 692_500.0),
        ("female", "92", "executive secretary", 174_400.0),
        ("male", "91", "elementary teacher", 212_943.0),
        ("female", "92", "high school teacher", 299_344.0),
    ] {
        employment.insert(&[sex, year, profession], count)?;
    }

    // The traditional 2-D rendering with marginals (Fig 9).
    let table = Table2D::layout(&employment, &["sex", "year"], &["profession"])?;
    println!("{}", table.render());

    // OLAP roll-up ≡ SDB S-aggregation: professions → professional classes.
    let by_class = employment.roll_up("profession", "professional class")?;
    println!("male engineers in '91 (rolled up): {:?}", by_class.get(&["male", "91", "engineer"])?);

    // Slice: fix one member and drop the dimension (context is recorded).
    let males = employment.slice("sex", "male")?;
    println!(
        "slice sex=male: {} cells, context {:?}",
        males.cell_count(),
        males.schema().context()
    );

    // Dice: sub-ranges on several dimensions.
    let diced = employment.dice(&[("year", &["92"][..]), ("sex", &["female"][..])])?;
    println!("dice year=92 & sex=female: total {:?}", diced.grand_total(0));

    // Drill down via a navigator (the base data is retained).
    let mut nav = Navigator::new(employment.clone());
    nav.roll_up("profession")?;
    println!("rolled-up view: {} cells", nav.view()?.cell_count());
    nav.drill_down("profession")?;
    println!("drilled back down: {} cells", nav.view()?.cell_count());

    // Summarizability guard: summing a stock over time is refused.
    match employment.project("year") {
        Err(e) => println!("as expected, SUM(stock) over time is refused: {e}"),
        Ok(_) => unreachable!("the engine must refuse this"),
    }
    Ok(())
}
