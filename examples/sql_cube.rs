//! SQL over a statistical object (§5.4, \[GB+96\]): run `GROUP BY CUBE` /
//! `ROLLUP` queries against retail data, show the union-of-group-bys they
//! replace, and watch the engine refuse a statistically meaningless query.
//!
//! ```text
//! cargo run --release --example sql_cube
//! ```

use statcube::sql::{execute_str, expand_cube_to_unions, parse};
use statcube::workload::retail::{generate, RetailConfig};
use statcube::workload::stocks::{self, StocksConfig};

fn main() {
    let retail = generate(&RetailConfig {
        products: 12,
        categories: 4,
        cities: 2,
        stores_per_city: 2,
        days: 14,
        rows: 4_000,
        seed: 2,
    });

    // 1. A plain aggregate query.
    let sql = "SELECT SUM(\"quantity sold\"), COUNT(*) FROM sales \
               WHERE store = 'city00/s0' GROUP BY product";
    println!("> {sql}\n");
    let rs = execute_str(&retail.object, sql).expect("query runs");
    print!("{}", rs.render());

    // 2. The CUBE extension, with its ALL rows.
    let sql = "SELECT SUM(\"quantity sold\") FROM sales GROUP BY CUBE(store, day)";
    println!("\n> {sql}\n");
    let rs = execute_str(&retail.object, sql).expect("cube runs");
    // Print only the ALL-bearing rows to keep the output short.
    for row in rs.rows.iter().filter(|r| r.group.iter().any(Option::is_none)).take(8) {
        println!(
            "  {:>10}  {:>6}  {:>10.0}",
            row.group[0].as_deref().unwrap_or("ALL"),
            row.group[1].as_deref().unwrap_or("ALL"),
            row.values[0].unwrap_or(0.0)
        );
    }
    println!("  … {} rows total across all groupings", rs.rows.len());

    // 3. What that one query replaces (§5.4's "awkward and verbose").
    let parsed = parse(sql).expect("parse");
    let unions = expand_cube_to_unions(&parsed).expect("expand");
    println!("\nwithout CUBE, the same answer needs {} queries unioned:", unions.len());
    for u in &unions {
        println!("  {u}");
    }

    // 4. GROUP BY a *hierarchy level*: grouping by city rolls the store
    //    dimension up through its classification hierarchy first.
    let sql = "SELECT SUM(\"quantity sold\") FROM sales GROUP BY city";
    println!("\n> {sql}\n");
    let rs = execute_str(&retail.object, sql).expect("level grouping");
    for row in &rs.rows {
        println!(
            "  {:>8}  {:>10.0}",
            row.group[0].as_deref().unwrap_or("ALL"),
            row.values[0].unwrap_or(0.0)
        );
    }

    // 5. Semantics retained: a meaningless query is refused.
    let stocks = stocks::generate(&StocksConfig::default());
    let bad = "SELECT SUM(price) FROM stocks GROUP BY stock";
    println!("\n> {bad}");
    match execute_str(&stocks.object, bad) {
        Err(e) => println!("  refused: {e}"),
        Ok(_) => println!("  (unexpectedly answered)"),
    }
    let good = "SELECT AVG(price), MAX(price) FROM stocks GROUP BY stock";
    println!("> {good}");
    let rs = execute_str(&stocks.object, good).expect("avg runs");
    for row in rs.rows.iter().take(3) {
        println!(
            "  {:>6}  avg {:>7.2}  max {:>7.2}",
            row.group[0].as_deref().unwrap_or("ALL"),
            row.values[0].unwrap_or(0.0),
            row.values[1].unwrap_or(0.0)
        );
    }
}
