//! Privacy audit (§7): play both sides — run the \[DS80\] tracker against a
//! size-restricted database, then show each defense the paper surveys and
//! what it costs.
//!
//! ```text
//! cargo run --example privacy_audit
//! ```

use statcube::privacy::prelude::*;
use statcube::privacy::restrict::demo_database;

fn main() {
    let k = 3;
    println!("population: {} employees; query-set restriction k = {k}\n", demo_database().len());

    // The snooper wants dorothy's salary (the unique 65-year-old).
    let db = ProtectedDatabase::new(demo_database(), k).lower_bound_only();
    let direct = db.sum(&[Pred::eq("age_group", "65")], "salary");
    println!("direct query: {direct:?}");

    // Attack 1: the difference attack the paper narrates.
    let attack = difference_attack(&db, &[], &Pred::eq("age_group", "65"), "salary")
        .expect("attack succeeds against bare restriction");
    println!("\ntracker attack succeeded with {} legal queries:", attack.queries_used.len());
    for q in &attack.queries_used {
        println!("  {q}");
    }
    println!("inferred: exactly {} person earning ${}", attack.count, attack.value);

    // Defense 1: overlap auditing.
    let mut audited = OverlapAuditedDatabase::new(
        ProtectedDatabase::new(demo_database(), k).lower_bound_only(),
        2,
    );
    let broad = audited.sum(&[], "salary");
    let padded = audited.sum(&[Pred::ne("age_group", "65")], "salary");
    println!("\n[defense: overlap auditing] broad query: {:?}", broad.map(|v| v.round()));
    println!("[defense: overlap auditing] padded tracker query: {padded:?}");

    // Defense 2: random-sample answers.
    let mut sampled =
        SampledDatabase::new(ProtectedDatabase::new(demo_database(), k).lower_bound_only(), 6, 42);
    let est1 = sampled.sum(&[], "salary").expect("sampled answer");
    let est2 = sampled.sum(&[], "salary").expect("sampled answer");
    println!("\n[defense: sampling] the same query answers differently each time: {est1:.0} vs {est2:.0}");

    // Defense 3: perturbation.
    let noised = input_perturb(&demo_database(), "salary", 5_000.0, 7).expect("perturb");
    let pdb = ProtectedDatabase::new(noised, k).lower_bound_only();
    let attack2 = difference_attack(&pdb, &[], &Pred::eq("age_group", "65"), "salary")
        .expect("attack still runs");
    println!(
        "[defense: input perturbation ±$5k] tracker now recovers {:.0} (error {:.0})",
        attack2.value,
        (attack2.value - 180_000.0).abs()
    );
    let mut out = OutputPerturbedDatabase::new(
        ProtectedDatabase::new(demo_database(), k).lower_bound_only(),
        2_000.0,
        11,
    );
    println!(
        "[defense: output perturbation ±$2k] avg(sales salary) = {:.0} (truth {:.0})",
        out.avg(&[Pred::eq("dept", "sales")], "salary").expect("answer"),
        ProtectedDatabase::new(demo_database(), 0)
            .avg(&[Pred::eq("dept", "sales")], "salary")
            .expect("truth")
    );

    // Defense 4: cell suppression on the published dept × age table.
    let micro = demo_database();
    let depts = ["eng", "sales", "hr"];
    let ages = ["30-39", "40-49", "50-59", "65"];
    let mut table = vec![vec![0u64; ages.len()]; depts.len()];
    for row in 0..micro.len() {
        let d = depts
            .iter()
            .position(|x| *x == micro.cat_value("dept", row).expect("dept"))
            .expect("known dept");
        let a = ages
            .iter()
            .position(|x| *x == micro.cat_value("age_group", row).expect("age"))
            .expect("known age");
        table[d][a] += 1;
    }
    let plan = plan_suppression(&table, 2);
    let (published, row_totals, _, grand) = apply_suppression(&table, &plan);
    println!("\n[defense: cell suppression, threshold 2] published dept × age counts:");
    print!("{:>8}", "");
    for a in ages {
        print!("{a:>8}");
    }
    println!("{:>8}", "total");
    for (d, dept) in depts.iter().enumerate() {
        print!("{dept:>8}");
        for cell in &published[d] {
            match cell {
                Some(v) => print!("{v:>8}"),
                None => print!("{:>8}", "*"),
            }
        }
        println!("{:>8}", row_totals[d]);
    }
    println!(
        "grand total {grand}; {} primary + {} complementary suppressions",
        plan.primary.len(),
        plan.complementary.len()
    );
}
