//! Census analysis (§3.1(i)): summarize micro-data up a geographic
//! hierarchy, realign incompatible age groups from two "states", and
//! estimate county populations by proxy — the SDB workflows the paper
//! describes, end to end.
//!
//! ```text
//! cargo run --release --example census_analysis
//! ```

use std::collections::HashMap;

use statcube::core::matching::{realign, IntervalClassification};
use statcube::core::ops;
use statcube::core::prelude::*;
use statcube::workload::census::{generate, CensusConfig};

fn main() -> Result<()> {
    let census = generate(&CensusConfig { rows: 50_000, ..CensusConfig::default() });
    println!("generated {} census records", census.micro.len());

    // 1. Micro → macro: average income by county and sex.
    let by_county = census.micro.summarize(
        &["county", "sex"],
        Some("income"),
        SummaryFunction::Avg,
        MeasureKind::ValuePerUnit,
    )?;
    println!("macro-data: {} (county, sex) cells", by_county.cell_count());

    // 2. Count people by county, then roll up the geographic hierarchy to
    //    states — counts are flows of persons over space, so this is
    //    summarizable.
    let head_count =
        census.micro.summarize(&["county"], None, SummaryFunction::Count, MeasureKind::Flow)?;
    // Attach the geography hierarchy to the county dimension by rebuilding
    // the object over a classified dimension.
    let schema = Schema::builder("population by county")
        .dimension(Dimension::classified("county", census.geography.clone()))
        .measure(SummaryAttribute::new("population", MeasureKind::Flow))
        .function(SummaryFunction::Count)
        .build()?;
    let mut pop = StatisticalObject::empty(schema);
    for county in &census.counties {
        if let Some(n) = head_count.get(&[county])? {
            for _ in 0..n as u64 {
                // Count semantics: one merge per person would be slow; use
                // a pre-aggregated state instead.
            }
            pop.merge_states(
                &[pop.schema().dimension("county")?.member_id(county)?],
                &[AggState::from_sum_count(n, n as u64)],
            )?;
        }
    }
    let by_state = ops::s_aggregate(&pop, "county", "state")?;
    println!("\npopulation by state (top 3):");
    let mut rows: Vec<(String, f64)> = census
        .states
        .iter()
        .filter_map(|s| by_state.get(&[s]).ok().flatten().map(|v| (s.clone(), v)))
        .collect();
    rows.sort_by(|a, b| b.1.total_cmp(&a.1));
    for (state, n) in rows.iter().take(3) {
        println!("  {state}: {n:.0}");
    }

    // 3. Classification matching (Fig 17): two states reported age groups
    //    on different boundaries; realign one onto the other before union.
    let ours = IntervalClassification::from_boundaries("ours", &[0.0, 6.0, 11.0, 16.0, 21.0])?;
    let theirs = IntervalClassification::from_boundaries("theirs", &[0.0, 2.0, 11.0, 21.0])?;
    let schema = Schema::builder("child population by age group")
        .dimension(Dimension::categorical("age group", ours.labels()))
        .measure(SummaryAttribute::new("children", MeasureKind::Stock))
        .build()?;
    let mut obj = StatisticalObject::empty(schema);
    for (label, v) in ours.labels().iter().zip([900.0, 850.0, 800.0, 760.0]) {
        obj.insert(&[label], v)?;
    }
    let (aligned, report) = realign(&obj, "age group", &ours, &theirs)?;
    println!("\nrealigned age groups ({}):", report.method);
    for (label, sources) in &report.provenance {
        println!(
            "  {label}: {:?} ← {}",
            aligned.get(&[label])?.unwrap_or(0.0),
            sources.iter().map(|(s, w)| format!("{s}×{w:.2}")).collect::<Vec<_>>().join(" + ")
        );
    }

    // 4. Disaggregation by proxy (§5.3): state totals estimated down to
    //    counties using county record counts as the proxy.
    let mut proxy: HashMap<String, f64> = HashMap::new();
    for county in &census.counties {
        proxy.insert(county.clone(), head_count.get(&[county])?.unwrap_or(0.0) + 1.0);
    }
    let estimated = ops::disaggregate_by_proxy(&by_state, "county", &census.geography, &proxy)?;
    println!(
        "\ndisaggregated back to {} county estimates; state totals preserved: {}",
        estimated.cell_count(),
        (ops::s_aggregate(&estimated, "county", "state")?.grand_total(0).unwrap()
            - by_state.grand_total(0).unwrap())
        .abs()
            < 1e-6
    );

    // 5. File everything in a SUBJECT directory ([CS81]) so the next
    //    analyst can find it by category attribute.
    let mut catalog = Catalog::new();
    catalog.insert(&["socio-economic", "census"], "income by county and sex", by_county)?;
    catalog.insert(&["socio-economic", "census"], "population by state", by_state)?;
    catalog.insert(&["socio-economic", "estimates"], "population by county", estimated)?;
    println!("\nsubject directory:\n{}", catalog.render());
    let hits = catalog.find_by_category("sex");
    println!(
        "datasets broken down by `sex`: {:?}",
        hits.iter().map(|h| h.to_path_string()).collect::<Vec<_>>()
    );
    Ok(())
}
