//! Warehouse physical tuning (§6): pick a physical organization for a
//! sales cube by measuring what each layout actually costs in simulated
//! page I/O — transposition, compression, chunking, and incremental
//! appends, all on the same data.
//!
//! ```text
//! cargo run --release --example warehouse_tuning
//! ```

use statcube::core::prelude::*;
use statcube::storage::chunked::ChunkedArray;
use statcube::storage::prelude::*;
use statcube::workload::retail::{generate, RetailConfig};

fn main() -> Result<()> {
    let retail = generate(&RetailConfig {
        products: 64,
        categories: 8,
        cities: 4,
        stores_per_city: 4,
        days: 64,
        rows: 40_000,
        seed: 3,
    });
    let obj = &retail.object;
    println!(
        "tuning a {}-cell sales cube (density {:.3})\n",
        obj.schema().cross_product_size(),
        obj.density()
    );

    // Candidate 1: dense linearized array (MOLAP).
    let dense = LinearizedArray::from_object(obj, 0, SummaryFunction::Sum)?;
    println!("MOLAP dense array: {} bytes ({} cells)", dense.size_bytes(), dense.len());

    // Candidate 2: header compression over the linearization ([EOA81]).
    let compressed = HeaderCompressed::from_dense(dense.dense_values());
    println!(
        "header-compressed: {} bytes ({} runs, ratio x{:.2})",
        compressed.size_bytes(),
        compressed.run_count(),
        compressed.compression_ratio()
    );

    // Candidate 3: chunked subcubes for range queries ([SS94]).
    println!("\nrange query 'one product category × one city × all days':");
    for side in [64usize, 16, 8] {
        let chunked = ChunkedArray::from_linearized(&dense, &[side, side, side], 4096)?;
        // products 0..8 (one category's worth) × stores 0..4 × all days.
        let (sum, _) = chunked.range_sum(&[0, 0, 0], &[8, 4, 64])?;
        println!(
            "  chunk {side:>2}^3: {:>4} pages read (answer {:.0})",
            chunked.io().pages_read(),
            sum
        );
    }

    // Candidate 4: extendible array for the nightly append ([RZ86]).
    let mut warehouse = ExtendibleArray::new(&[64, 16, 64], 4096)?;
    for (coords, states) in obj.cells() {
        warehouse
            .set(&[coords[0] as usize, coords[1] as usize, coords[2] as usize], states[0].sum)?;
    }
    let before = warehouse.io().pages_written();
    warehouse.extend(2, 1)?; // tomorrow's slice
    for p in 0..64 {
        for s in 0..16 {
            warehouse.set(&[p, s, 64], 1.0)?;
        }
    }
    println!(
        "\nnightly append of one day-slice: {} pages written \
         (a restructure would write {})",
        warehouse.io().pages_written() - before,
        warehouse.io().pages_of(warehouse.restructure_bytes())
    );

    // Decision summary, the way §6.6 frames it.
    println!(
        "\nverdict for this workload: density {:.3} → {}",
        obj.density(),
        if obj.density() > 0.5 {
            "dense enough for plain MOLAP arrays"
        } else {
            "compress (header) or chunk; ROLAP competitive on the sparse end"
        }
    );
    Ok(())
}
