//! Stock-market time series (§3.2(ii)): weekday calendars, weekly
//! roll-ups of a value-per-unit measure, multiple classifications over the
//! stock dimension, and the higher statistics of §5.6 — plus the engine
//! refusing the one aggregation that would be financial nonsense.
//!
//! ```text
//! cargo run --release --example stock_timeseries
//! ```

use statcube::core::measure::SummaryFunction;
use statcube::core::ops;
use statcube::core::stats::{percentile, Welford};
use statcube::core::timeseries;
use statcube::workload::stocks::{generate, StocksConfig};

fn main() {
    let market = generate(&StocksConfig { stocks: 30, industries: 5, weeks: 26, seed: 1997 });
    let obj = &market.object;
    println!(
        "{} stocks × {} trading days (weekdays only); measures: price (avg), volume (sum)",
        market.tickers.len(),
        market.days.len()
    );

    // 1. Weekly consolidation: price averages, volume sums — each measure
    //    under its own function, both correct under one roll-up.
    let weekly = obj.roll_up("day", "week").expect("weekly roll-up");
    let t = &market.tickers[0];
    println!("\n{t} weekly series (first 5 weeks):");
    for w in 0..5 {
        let week = format!("w{w:02}");
        let price = weekly.get_measure(&[t, &week], 0).expect("cell").unwrap_or(f64::NAN);
        let volume = weekly.get_measure(&[t, &week], 1).expect("cell").unwrap_or(0.0);
        println!("  {week}: avg price {price:>7.2}  volume {volume:>9.0}");
    }

    // 2. Two classifications over the same stocks (§3.2(ii)).
    for (hier, level) in [("by industry", "industry"), ("by rating", "rating")] {
        let rolled =
            ops::s_aggregate_in(obj, "stock", Some(hier), level, true).expect("classification");
        let groups = rolled.schema().dimension("stock").expect("dim").cardinality();
        println!(
            "\nclassified {hier}: {groups} groups, total volume {:.0}",
            rolled.grand_total(1).unwrap_or(0.0)
        );
    }

    // 3. Higher statistics on one stock's daily prices (§5.6).
    let prices: Vec<f64> =
        market.days.iter().filter_map(|d| obj.get_measure(&[t, d], 0).ok().flatten()).collect();
    let mut w = Welford::new();
    for &p in &prices {
        w.push(p);
    }
    println!(
        "\n{t} daily price stats: mean {:.2}, stddev {:.2}, median {:.2}, p95 {:.2}",
        w.mean().unwrap(),
        w.stddev_sample().unwrap(),
        percentile(&prices, 50.0).unwrap(),
        percentile(&prices, 95.0).unwrap()
    );

    // 4. Moving windows along the temporal axis (§3.2(ii)).
    let s =
        timeseries::series(obj, "day", &[("stock", t)], 0, SummaryFunction::Avg).expect("series");
    let ma20 = timeseries::moving_average(&s, 20).expect("ma");
    let hi20 = timeseries::rolling_max(&s, 20).expect("high");
    let lo20 = timeseries::rolling_min(&s, 20).expect("low");
    let last = s.len() - 1;
    println!(
        "\n{t} 20-day window at day {last}: ma {:.2}, high {:.2}, low {:.2}",
        ma20[last].unwrap_or(f64::NAN),
        hi20[last].unwrap_or(f64::NAN),
        lo20[last].unwrap_or(f64::NAN)
    );
    let rets = timeseries::returns(&s);
    let best = rets.iter().flatten().copied().fold(f64::NEG_INFINITY, f64::max);
    println!("best single-day return: {:.2}%", best * 100.0);

    // 5. The guard: a price (value-per-unit) must never be summed.
    let schema = statcube::core::schema::Schema::builder("bad idea")
        .dimension(statcube::core::dimension::Dimension::temporal("day", ["d1", "d2"]))
        .measure(statcube::core::measure::SummaryAttribute::new(
            "price",
            statcube::core::measure::MeasureKind::ValuePerUnit,
        ))
        .build()
        .expect("schema");
    let mut bad = statcube::core::object::StatisticalObject::empty(schema);
    bad.insert(&["d1"], 100.0).expect("cell");
    match ops::s_project(&bad, "day") {
        Err(e) => println!("\nsumming prices over days is refused: {e}"),
        Ok(_) => unreachable!("must refuse"),
    }
}
